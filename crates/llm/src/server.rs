use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::prefix::PrefixTracker;
use crate::presets::Preset;
use crate::request::LlmRequest;
use crate::time::VirtualTime;

fn default_prefix_cache_entries() -> u32 {
    4096
}

/// Configuration of a [`SimServer`] deployment.
///
/// A deployment is `replicas` independent data-parallel engines, each
/// running the same model with the same [`CostModel`]. Tensor parallelism
/// is folded into the preset's cost model (a TP-4 replica occupies four
/// GPUs but appears here as one fast replica), matching the paper's L4
/// data-parallel and A100 hybrid (TP×DP) setups in §4.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Human-readable deployment name (for reports).
    pub name: String,
    /// Number of data-parallel replicas.
    pub replicas: u32,
    /// Per-replica iteration cost model.
    pub cost: CostModel,
    /// Maximum concurrently running sequences per replica.
    pub max_running: u32,
    /// KV-cache capacity per replica, in tokens (reserve-on-admit).
    pub kv_capacity_tokens: u64,
    /// Maximum prefill tokens processed per iteration (chunked prefill).
    pub prefill_chunk: u32,
    /// Admit pending requests lowest-step-first (§3.5) instead of FIFO.
    pub priority_enabled: bool,
    /// Serve [`crate::Lane::Interactive`] requests ahead of background
    /// work — the hybrid interactive/offline deployment of paper §6.
    pub lane_aware: bool,
    /// With [`ServerConfig::lane_aware`]: batch slots per replica held
    /// back from background admission so interactive requests never wait
    /// for a background decode to drain (0 = priority only, no reserve).
    pub interactive_reserve: u32,
    /// Model automatic common-prefix caching (the SGLang feature the paper
    /// turned *off* for stable benchmarks, noting "enabling the cache
    /// generally provides about a 20% throughput gain", §4.1). When on,
    /// each replica keeps a bounded LRU of recently served prompt prefixes
    /// (per agent, plus per persona template for tagged requests — see
    /// [`crate::PrefixTracker`]) and skips re-prefilling the matched
    /// prefix. A hit therefore discounts prefill cost proportionally to
    /// the matched prefix length.
    pub prefix_caching: bool,
    /// Capacity of each replica's prefix LRU, in cache keys (agents +
    /// templates). Bounded because real KV-cache memory is: at city scale
    /// an agent's entry is evicted between its visits unless routing keeps
    /// the agent on one replica — which is exactly what
    /// [`crate::PrefixAffinity`] is for. Values ≤ 1 behave as a
    /// single-entry cache.
    #[serde(default = "default_prefix_cache_entries")]
    pub prefix_cache_entries: u32,
}

impl ServerConfig {
    /// Builds a config from a hardware/model [`Preset`].
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn from_preset(preset: Preset, replicas: u32, priority_enabled: bool) -> Self {
        assert!(replicas > 0, "at least one replica is required");
        ServerConfig {
            name: format!("{}x{}", replicas, preset.name),
            replicas,
            cost: preset.cost,
            max_running: preset.max_running,
            kv_capacity_tokens: preset.kv_capacity_tokens,
            prefill_chunk: preset.prefill_chunk,
            priority_enabled,
            lane_aware: false,
            interactive_reserve: 0,
            prefix_caching: false,
            prefix_cache_entries: default_prefix_cache_entries(),
        }
    }

    /// Enables prefix caching (see [`ServerConfig::prefix_caching`]).
    pub fn with_prefix_caching(mut self) -> Self {
        self.prefix_caching = true;
        self
    }

    /// Sets the per-replica prefix LRU capacity (see
    /// [`ServerConfig::prefix_cache_entries`]).
    pub fn with_prefix_cache_entries(mut self, entries: u32) -> Self {
        self.prefix_cache_entries = entries;
        self
    }

    /// Enables the interactive lane with `reserve` batch slots per replica
    /// held back from background admission (see
    /// [`ServerConfig::lane_aware`]).
    ///
    /// # Panics
    ///
    /// Panics if `reserve >= max_running` — background work must keep at
    /// least one slot or the simulation starves.
    pub fn with_interactive_lane(mut self, reserve: u32) -> Self {
        assert!(
            reserve < self.max_running,
            "interactive reserve ({reserve}) must leave background slots (max_running {})",
            self.max_running
        );
        self.lane_aware = true;
        self.interactive_reserve = reserve;
        self
    }
}

/// A finished request reported by [`SimServer::advance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The original request.
    pub req: LlmRequest,
    /// Virtual time at which the request entered the server.
    pub submitted_at: VirtualTime,
    /// Virtual time at which the last token was produced.
    pub finished_at: VirtualTime,
    /// Replica that served the request.
    pub replica: usize,
}

impl Completion {
    /// End-to-end request latency (queueing + inference).
    pub fn latency(&self) -> VirtualTime {
        self.finished_at - self.submitted_at
    }
}

/// Cumulative per-replica counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ReplicaMetrics {
    /// Microseconds spent inside iterations.
    pub busy_us: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Prefill tokens processed.
    pub prefill_tokens: u64,
    /// Decode tokens produced.
    pub decode_tokens: u64,
    /// Requests completed.
    pub completed: u64,
    /// Maximum concurrently running sequences observed.
    pub peak_running: u32,
    /// Prefill tokens skipped thanks to prefix caching.
    pub cached_prefill_tokens: u64,
    /// Admitted requests whose issuing agent's prefix was still resident
    /// in this replica's LRU (see [`crate::PrefixStats::hits`]).
    #[serde(default)]
    pub prefix_hits: u64,
    /// Admitted requests whose agent prefix was absent or evicted.
    #[serde(default)]
    pub prefix_misses: u64,
}

/// Aggregated view over all replicas (see [`SimServer::metrics`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ServerMetrics {
    /// Per-replica counters, indexed by replica id.
    pub replicas: Vec<ReplicaMetrics>,
    /// Time-weighted integral of outstanding requests, µs·requests.
    /// Divide by the run's makespan (µs) to get the paper's "achieved
    /// parallelism" — the average number of outstanding LLM requests.
    pub outstanding_integral_us: f64,
    /// Requests submitted so far.
    pub submitted: u64,
    /// Requests completed so far.
    pub completed: u64,
}

impl ServerMetrics {
    /// Total busy time across replicas, µs.
    pub fn total_busy_us(&self) -> u64 {
        self.replicas.iter().map(|r| r.busy_us).sum()
    }

    /// Average GPU (replica) utilization over `makespan`.
    pub fn utilization(&self, makespan: VirtualTime) -> f64 {
        if makespan == VirtualTime::ZERO || self.replicas.is_empty() {
            return 0.0;
        }
        self.total_busy_us() as f64 / (makespan.as_micros() as f64 * self.replicas.len() as f64)
    }

    /// The paper's "achieved parallelism": average outstanding requests.
    pub fn achieved_parallelism(&self, makespan: VirtualTime) -> f64 {
        if makespan == VirtualTime::ZERO {
            return 0.0;
        }
        self.outstanding_integral_us / makespan.as_micros() as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PendKey {
    /// Lane rank (0 when the server is not lane-aware).
    lane: u8,
    priority: u64,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    key: PendKey,
    req: LlmRequest,
    submitted_at: VirtualTime,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[derive(Debug, Clone)]
struct Running {
    req: LlmRequest,
    submitted_at: VirtualTime,
    prefilled: u32,
    decoded: u32,
    /// Prefill tokens assigned to the in-flight iteration.
    iter_prefill: u32,
    /// Whether this sequence decodes one token in the in-flight iteration.
    iter_decode: bool,
}

impl Running {
    fn target_output(&self) -> u32 {
        self.req.output_tokens.max(1)
    }
    fn kv_need(&self) -> u64 {
        self.req.input_tokens as u64 + self.target_output() as u64
    }
}

#[derive(Debug)]
struct Replica {
    id: usize,
    running: Vec<Running>,
    pending: BinaryHeap<Reverse<Pending>>,
    kv_reserved: u64,
    iter_end: Option<VirtualTime>,
    metrics: ReplicaMetrics,
    /// Bounded LRU of recently served prompt prefixes (agent + template
    /// keyed) — the cache a prefix hit discounts prefill against.
    prefix: PrefixTracker,
}

impl Replica {
    fn new(id: usize, prefix_entries: usize) -> Self {
        Replica {
            id,
            running: Vec::new(),
            pending: BinaryHeap::new(),
            kv_reserved: 0,
            iter_end: None,
            metrics: ReplicaMetrics::default(),
            prefix: PrefixTracker::new(prefix_entries),
        }
    }

    fn load(&self) -> (usize, u64) {
        (self.running.len() + self.pending.len(), self.kv_reserved)
    }
}

/// A virtual-time, continuous-batching LLM serving engine.
///
/// `SimServer` is driven by a discrete-event executor through three calls:
///
/// 1. [`SimServer::submit`] — enqueue a request at the current time;
/// 2. [`SimServer::next_event`] — the earliest time an iteration finishes;
/// 3. [`SimServer::advance`] — move the clock forward, collecting
///    completions that occur exactly at that time.
///
/// Iterations are atomic: once started, a batch runs to its computed end
/// time (no preemption — §3.5 notes preemption during inference is
/// avoided). Admission happens between iterations, honoring priority order,
/// `max_running`, and KV capacity.
///
/// # Example
///
/// ```
/// use aim_llm::{CallKind, CostModel, LlmRequest, RequestId, ServerConfig, SimServer, VirtualTime};
///
/// let cfg = ServerConfig {
///     name: "toy".into(),
///     replicas: 1,
///     cost: CostModel::new(1_000.0, 10.0, 100.0, 0.0),
///     max_running: 8,
///     kv_capacity_tokens: 100_000,
///     prefill_chunk: 512,
///     priority_enabled: true,
///     lane_aware: false,
///     interactive_reserve: 0,
///     prefix_caching: false,
///     prefix_cache_entries: 4096,
/// };
/// let mut s = SimServer::new(cfg);
/// s.submit(VirtualTime::ZERO, LlmRequest::new(RequestId(0), 0, 0, 100, 4, CallKind::Plan));
/// let mut finished = None;
/// while let Some(t) = s.next_event() {
///     if let Some(c) = s.advance(t).pop() {
///         finished = Some(c.finished_at);
///     }
/// }
/// assert!(finished.is_some());
/// ```
#[derive(Debug)]
pub struct SimServer {
    cfg: ServerConfig,
    replicas: Vec<Replica>,
    arrival_seq: u64,
    now: VirtualTime,
    outstanding: u64,
    outstanding_integral_us: f64,
    submitted: u64,
    completed: u64,
}

impl SimServer {
    /// Creates an idle server from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero replicas, zero `max_running`, or a
    /// cost model that could produce zero-length iterations with pending
    /// work (all coefficients zero).
    pub fn new(cfg: ServerConfig) -> Self {
        assert!(cfg.replicas > 0, "replicas must be positive");
        assert!(cfg.max_running > 0, "max_running must be positive");
        assert!(cfg.prefill_chunk > 0, "prefill_chunk must be positive");
        let prefix_entries = cfg.prefix_cache_entries.max(1) as usize;
        let replicas = (0..cfg.replicas as usize)
            .map(|id| Replica::new(id, prefix_entries))
            .collect();
        SimServer {
            cfg,
            replicas,
            arrival_seq: 0,
            now: VirtualTime::ZERO,
            outstanding: 0,
            outstanding_integral_us: 0.0,
            submitted: 0,
            completed: 0,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Requests submitted but not yet completed.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// The server's current clock (last `submit`/`advance` time).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    fn accrue(&mut self, to: VirtualTime) {
        debug_assert!(to >= self.now, "time must not move backwards");
        let dt = (to - self.now).as_micros() as f64;
        self.outstanding_integral_us += dt * self.outstanding as f64;
        self.now = to;
    }

    /// Enqueues `req` at time `now`, routing it to the least-loaded replica.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` is earlier than a previously
    /// observed time (the DES driver must deliver events in order).
    pub fn submit(&mut self, now: VirtualTime, req: LlmRequest) {
        self.accrue(now);
        self.outstanding += 1;
        self.submitted += 1;
        let priority = if self.cfg.priority_enabled {
            req.step
        } else {
            0
        };
        let lane = if self.cfg.lane_aware {
            req.lane.rank()
        } else {
            0
        };
        let key = PendKey {
            lane,
            priority,
            seq: self.arrival_seq,
        };
        self.arrival_seq += 1;
        let target = self
            .replicas
            .iter()
            .min_by_key(|r| (r.load(), r.id))
            .map(|r| r.id)
            .expect("at least one replica");
        self.replicas[target].pending.push(Reverse(Pending {
            key,
            req,
            submitted_at: now,
        }));
        self.try_start(target, now);
    }

    /// Earliest pending iteration end, if any replica is busy.
    pub fn next_event(&self) -> Option<VirtualTime> {
        self.replicas.iter().filter_map(|r| r.iter_end).min()
    }

    /// Advances the clock to `now`, finishing any iterations that end at or
    /// before `now`, admitting new work, and returning completed requests
    /// in deterministic order (replica id, then completion order).
    pub fn advance(&mut self, now: VirtualTime) -> Vec<Completion> {
        let mut completions = Vec::new();
        // Iterations may chain (end exactly at `now` and restart), so loop
        // until no replica has an event at or before `now`.
        loop {
            let due: Vec<usize> = self
                .replicas
                .iter()
                .filter(|r| r.iter_end.is_some_and(|t| t <= now))
                .map(|r| r.id)
                .collect();
            if due.is_empty() {
                break;
            }
            for id in due {
                let end = self.replicas[id].iter_end.expect("due replica is busy");
                self.accrue(end);
                self.finish_iteration(id, end, &mut completions);
                self.try_start(id, end);
            }
        }
        self.accrue(now);
        completions
    }

    /// Runs the server to completion, returning all remaining completions.
    /// Convenience for tests and offline analysis.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = self.next_event() {
            out.extend(self.advance(t));
        }
        out
    }

    /// Cumulative metrics snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        ServerMetrics {
            replicas: self.replicas.iter().map(|r| r.metrics).collect(),
            outstanding_integral_us: self.outstanding_integral_us,
            submitted: self.submitted,
            completed: self.completed,
        }
    }

    fn finish_iteration(&mut self, id: usize, end: VirtualTime, out: &mut Vec<Completion>) {
        let replica = &mut self.replicas[id];
        replica.iter_end = None;
        let mut i = 0;
        let mut finished_here = 0u64;
        while i < replica.running.len() {
            let r = &mut replica.running[i];
            r.prefilled += r.iter_prefill;
            r.iter_prefill = 0;
            if r.iter_decode {
                r.decoded += 1;
                r.iter_decode = false;
            }
            if r.decoded >= r.target_output() {
                let done = replica.running.remove(i);
                replica.kv_reserved -= done.kv_need();
                finished_here += 1;
                replica.metrics.completed += 1;
                out.push(Completion {
                    req: done.req,
                    submitted_at: done.submitted_at,
                    finished_at: end,
                    replica: id,
                });
            } else {
                i += 1;
            }
        }
        self.completed += finished_here;
        self.outstanding -= finished_here;
    }

    fn try_start(&mut self, id: usize, now: VirtualTime) {
        let cfg_max_running = self.cfg.max_running as usize;
        // Background admission stops short of the interactive reserve so a
        // latency-critical arrival never waits for a background decode to
        // drain (§6's hybrid deployment).
        let background_limit = if self.cfg.lane_aware {
            cfg_max_running
                .saturating_sub(self.cfg.interactive_reserve as usize)
                .max(1)
        } else {
            cfg_max_running
        };
        let cfg_kv = self.cfg.kv_capacity_tokens;
        let chunk = self.cfg.prefill_chunk;
        let cost = self.cfg.cost;
        let prefix_caching = self.cfg.prefix_caching;
        let replica = &mut self.replicas[id];
        if replica.iter_end.is_some() {
            return; // already mid-iteration; admission happens when it ends
        }
        // Admission: lowest (lane, priority, seq) first, bounded by batch
        // and KV. Interactive requests sort first, so stopping at a
        // background head never strands an interactive request behind it.
        while replica.running.len() < cfg_max_running {
            let Some(Reverse(head)) = replica.pending.peek() else {
                break;
            };
            if head.req.lane == crate::Lane::Background
                && self.cfg.lane_aware
                && replica.running.len() >= background_limit
            {
                break; // slots beyond this point are reserved
            }
            let need = head.req.input_tokens as u64 + head.req.output_tokens.max(1) as u64;
            if replica.kv_reserved + need > cfg_kv && !replica.running.is_empty() {
                break; // wait for KV to free up
            }
            let Reverse(p) = replica.pending.pop().expect("peeked");
            replica.kv_reserved += need;
            // Prefix caching: the matched prefix (this agent's recent
            // prompt, or the preamble shared by its persona template) is
            // already resident, so the discount is proportional to the
            // matched length — those tokens skip prefill entirely. The
            // LRU is bounded, so a replica that has not seen this agent
            // recently re-prefills from scratch.
            let prefilled = if prefix_caching {
                let matched = replica.prefix.observe(
                    p.req.agent,
                    p.req.template,
                    p.req.input_tokens,
                    p.req.shared_prefix_tokens,
                );
                let s = replica.prefix.stats();
                replica.metrics.prefix_hits = s.hits;
                replica.metrics.prefix_misses = s.misses;
                replica.metrics.cached_prefill_tokens += matched as u64;
                matched
            } else {
                0
            };
            replica.running.push(Running {
                req: p.req,
                submitted_at: p.submitted_at,
                prefilled,
                decoded: 0,
                iter_prefill: 0,
                iter_decode: false,
            });
        }
        if replica.running.is_empty() {
            return;
        }
        replica.metrics.peak_running = replica
            .metrics
            .peak_running
            .max(replica.running.len() as u32);
        // Assign this iteration's work: decode every prefill-complete
        // sequence; spend up to `chunk` tokens of prefill FCFS.
        let mut prefill_budget = chunk;
        let mut prefill_tokens = 0u32;
        let mut decode_seqs = 0u32;
        for r in &mut replica.running {
            if r.prefilled < r.req.input_tokens {
                let take = (r.req.input_tokens - r.prefilled).min(prefill_budget);
                r.iter_prefill = take;
                prefill_budget -= take;
                prefill_tokens += take;
            } else if r.decoded < r.target_output() {
                r.iter_decode = true;
                decode_seqs += 1;
            }
        }
        if prefill_tokens == 0 && decode_seqs == 0 {
            return; // nothing runnable (should not happen; defensive)
        }
        let dt = cost
            .iter_time(prefill_tokens, decode_seqs)
            .max(VirtualTime::from_micros(1));
        replica.iter_end = Some(now + dt);
        replica.metrics.busy_us += dt.as_micros();
        replica.metrics.iterations += 1;
        replica.metrics.prefill_tokens += prefill_tokens as u64;
        replica.metrics.decode_tokens += decode_seqs as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CallKind, RequestId};

    fn toy_cfg(replicas: u32, priority: bool) -> ServerConfig {
        ServerConfig {
            name: "toy".into(),
            replicas,
            cost: CostModel::new(1_000.0, 10.0, 100.0, 0.0),
            max_running: 4,
            kv_capacity_tokens: 10_000,
            prefill_chunk: 512,
            priority_enabled: priority,
            lane_aware: false,
            interactive_reserve: 0,
            prefix_caching: false,
            prefix_cache_entries: 4096,
        }
    }

    fn req(id: u64, step: u64, input: u32, output: u32) -> LlmRequest {
        LlmRequest::new(
            RequestId(id),
            id as u32,
            step,
            input,
            output,
            CallKind::Plan,
        )
    }

    #[test]
    fn single_request_matches_isolated_latency() {
        let cfg = toy_cfg(1, true);
        let expected = cfg.cost.isolated_latency(100, 4, cfg.prefill_chunk);
        let mut s = SimServer::new(cfg);
        s.submit(VirtualTime::ZERO, req(0, 0, 100, 4));
        let done = s.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished_at, expected);
        assert_eq!(done[0].latency(), expected, "submitted at t=0");
    }

    #[test]
    fn interactive_lane_jumps_the_backlog() {
        // One slot; a long request occupies the engine, a pile of
        // background work queues behind it, then an interactive request
        // arrives late. Lane-aware admission must serve it next.
        let mut cfg = toy_cfg(1, true).with_interactive_lane(0);
        cfg.max_running = 1;
        let mut s = SimServer::new(cfg);
        s.submit(VirtualTime::ZERO, req(0, 0, 300, 3)); // running
        for i in 1..=4 {
            s.submit(VirtualTime::from_micros(1), req(i, 0, 100, 3));
        }
        s.submit(
            VirtualTime::from_micros(2),
            req(99, u64::MAX, 100, 3).interactive(), // worst step priority
        );
        let done = s.drain();
        let order: Vec<u64> = done.iter().map(|c| c.req.id.0).collect();
        assert_eq!(order[0], 0, "running request is never preempted");
        assert_eq!(
            order[1], 99,
            "interactive must jump all background work: {order:?}"
        );
    }

    #[test]
    fn lane_ignored_when_not_aware() {
        let mut cfg = toy_cfg(1, false);
        cfg.max_running = 1;
        let mut s = SimServer::new(cfg);
        s.submit(VirtualTime::ZERO, req(0, 0, 300, 3));
        s.submit(VirtualTime::from_micros(1), req(1, 0, 100, 3));
        s.submit(VirtualTime::from_micros(2), req(2, 0, 100, 3).interactive());
        let done = s.drain();
        let order: Vec<u64> = done.iter().map(|c| c.req.id.0).collect();
        assert_eq!(order, vec![0, 1, 2], "FIFO when lanes are off");
    }

    #[test]
    fn interactive_reserve_holds_batch_slots() {
        // 4 slots with 2 reserved: a background flood may only fill 2, so
        // an interactive arrival is admitted at the very next iteration
        // boundary instead of waiting for a background decode to finish.
        let cfg = toy_cfg(1, true).with_interactive_lane(2);
        let mut s = SimServer::new(cfg);
        for i in 0..8 {
            s.submit(VirtualTime::ZERO, req(i, 0, 50, 40)); // long decodes
        }
        // Let a few iterations pass, then the player speaks.
        let mid = s.next_event().expect("busy");
        s.advance(mid);
        assert!(
            s.replicas[0].running.len() <= 2,
            "background must not exceed max_running - reserve"
        );
        s.submit(mid, req(100, 0, 20, 2).interactive());
        let done = s.drain();
        let interactive = done.iter().find(|c| c.req.id.0 == 100).expect("completed");
        let first_bg_done = done
            .iter()
            .filter(|c| c.req.id.0 < 8)
            .map(|c| c.finished_at)
            .min()
            .expect("background completes");
        assert!(
            interactive.finished_at < first_bg_done,
            "reserved slots must let the interactive request overtake: {:?} vs {:?}",
            interactive.finished_at,
            first_bg_done
        );
    }

    #[test]
    fn reserve_never_starves_background() {
        let cfg = toy_cfg(1, true).with_interactive_lane(3); // 1 slot left
        let mut s = SimServer::new(cfg);
        for i in 0..5 {
            s.submit(VirtualTime::ZERO, req(i, 0, 50, 5));
        }
        assert_eq!(s.drain().len(), 5, "background still completes");
    }

    #[test]
    #[should_panic(expected = "must leave background slots")]
    fn full_reserve_rejected() {
        let _ = toy_cfg(1, true).with_interactive_lane(4);
    }

    #[test]
    fn completion_latency_includes_queueing() {
        let mut cfg = toy_cfg(1, true);
        cfg.max_running = 1;
        let mut s = SimServer::new(cfg);
        s.submit(VirtualTime::ZERO, req(0, 0, 200, 2));
        s.submit(VirtualTime::ZERO, req(1, 0, 200, 2));
        let done = s.drain();
        let second = done.iter().find(|c| c.req.id.0 == 1).unwrap();
        assert_eq!(second.submitted_at, VirtualTime::ZERO);
        assert!(
            second.latency() > done[0].latency(),
            "queued request's latency includes the wait"
        );
    }

    #[test]
    fn batching_beats_serial() {
        // 4 identical decode-heavy requests: batched completion must be much
        // faster than 4x the single-request latency.
        let cfg = toy_cfg(1, true);
        let single = cfg.cost.isolated_latency(10, 50, cfg.prefill_chunk);
        let mut s = SimServer::new(cfg);
        for i in 0..4 {
            s.submit(VirtualTime::ZERO, req(i, 0, 10, 50));
        }
        let done = s.drain();
        assert_eq!(done.len(), 4);
        let makespan = done.iter().map(|c| c.finished_at).max().unwrap();
        let serial = VirtualTime::from_micros(single.as_micros() * 4);
        assert!(
            makespan.as_micros() < serial.as_micros() / 2,
            "batched {makespan} vs serial {serial}"
        );
    }

    #[test]
    fn priority_admission_prefers_lower_steps() {
        // max_running=4; submit 8 requests while the replica is busy with a
        // long prefill, steps descending. With priority on, the four
        // lowest-step requests must finish before the four highest.
        let mut cfg = toy_cfg(1, true);
        cfg.max_running = 2;
        let mut s = SimServer::new(cfg);
        s.submit(VirtualTime::ZERO, req(99, 0, 512, 1)); // occupy the engine
        for i in 0..6u64 {
            s.submit(VirtualTime::from_micros(1), req(i, 100 - i, 50, 5));
        }
        let done = s.drain();
        let order: Vec<u64> = done.iter().map(|c| c.req.id.0).collect();
        let pos = |id: u64| order.iter().position(|x| *x == id).unwrap();
        // Request 5 has the lowest step (95), request 0 the highest (100).
        assert!(
            pos(5) < pos(0),
            "low-step request must complete first: {order:?}"
        );
        assert!(pos(4) < pos(1), "priority order violated: {order:?}");
    }

    #[test]
    fn fifo_when_priority_disabled() {
        let mut cfg = toy_cfg(1, false);
        cfg.max_running = 1;
        let mut s = SimServer::new(cfg);
        s.submit(VirtualTime::ZERO, req(0, 50, 50, 2));
        s.submit(VirtualTime::ZERO, req(1, 10, 50, 2)); // lower step, later arrival
        s.submit(VirtualTime::ZERO, req(2, 1, 50, 2));
        let done = s.drain();
        let order: Vec<u64> = done.iter().map(|c| c.req.id.0).collect();
        assert_eq!(order, vec![0, 1, 2], "FIFO must ignore steps");
    }

    #[test]
    fn kv_capacity_limits_admission() {
        let mut cfg = toy_cfg(1, true);
        cfg.kv_capacity_tokens = 250; // fits two of (100+5) but not three
        let mut s = SimServer::new(cfg);
        for i in 0..3 {
            s.submit(VirtualTime::ZERO, req(i, 0, 100, 5));
        }
        let done = s.drain();
        assert_eq!(done.len(), 3, "third request runs after KV frees");
        // KV allowed at most two of (100+5 reserved tokens) at once.
        assert_eq!(s.metrics().replicas[0].peak_running, 2);
    }

    #[test]
    fn oversized_request_still_admitted_alone() {
        let mut cfg = toy_cfg(1, true);
        cfg.kv_capacity_tokens = 50; // smaller than the request itself
        let mut s = SimServer::new(cfg);
        s.submit(VirtualTime::ZERO, req(0, 0, 100, 5));
        let done = s.drain();
        assert_eq!(done.len(), 1, "a lone oversized request must not deadlock");
    }

    #[test]
    fn routing_balances_across_replicas() {
        let cfg = toy_cfg(4, true);
        let mut s = SimServer::new(cfg);
        for i in 0..8 {
            s.submit(VirtualTime::ZERO, req(i, 0, 50, 5));
        }
        // Shortest-queue routing spreads the 8 requests 2 per replica
        // (running + pending, since the first admit starts an iteration).
        let loads: Vec<usize> = s
            .replicas
            .iter()
            .map(|r| r.running.len() + r.pending.len())
            .collect();
        assert_eq!(
            loads,
            vec![2, 2, 2, 2],
            "shortest-queue routing should balance"
        );
        let done = s.drain();
        assert_eq!(done.len(), 8);
        let m = s.metrics();
        assert!(m.replicas.iter().all(|r| r.completed == 2));
    }

    #[test]
    fn more_replicas_cut_makespan() {
        let mk = |replicas: u32| {
            let mut s = SimServer::new(toy_cfg(replicas, true));
            for i in 0..32 {
                s.submit(VirtualTime::ZERO, req(i, 0, 200, 20));
            }
            s.drain().iter().map(|c| c.finished_at).max().unwrap()
        };
        let t1 = mk(1);
        let t4 = mk(4);
        assert!(
            t4.as_micros() * 2 < t1.as_micros(),
            "4 replicas should be >2x faster: {t1} vs {t4}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = SimServer::new(toy_cfg(2, true));
            for i in 0..20 {
                s.submit(
                    VirtualTime::from_micros(i * 13),
                    req(
                        i,
                        (i * 7) % 5,
                        30 + (i as u32 * 17) % 200,
                        1 + (i as u32) % 9,
                    ),
                );
            }
            s.drain()
                .iter()
                .map(|c| (c.req.id.0, c.finished_at.as_micros(), c.replica))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_account_tokens_and_parallelism() {
        let mut s = SimServer::new(toy_cfg(1, true));
        s.submit(VirtualTime::ZERO, req(0, 0, 100, 10));
        s.submit(VirtualTime::ZERO, req(1, 0, 60, 4));
        let done = s.drain();
        let makespan = done.iter().map(|c| c.finished_at).max().unwrap();
        let m = s.metrics();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.replicas[0].prefill_tokens, 160);
        assert_eq!(m.replicas[0].decode_tokens, 14);
        let par = m.achieved_parallelism(makespan);
        assert!(par > 1.0 && par <= 2.0, "parallelism {par} out of range");
        let util = m.utilization(makespan);
        assert!(
            util > 0.9,
            "single busy replica should be ~fully utilized, got {util}"
        );
    }

    #[test]
    fn advance_between_events_is_safe() {
        let mut s = SimServer::new(toy_cfg(1, true));
        s.submit(VirtualTime::ZERO, req(0, 0, 100, 2));
        let mid = VirtualTime::from_micros(1);
        assert!(s.advance(mid).is_empty());
        assert_eq!(s.now(), mid);
        let done = s.drain();
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn prefix_caching_speeds_up_repeat_agents() {
        // The same agent issues 6 prompts sharing a persona prefix; with
        // caching on, later prefills shrink and the batch finishes sooner
        // (the paper reports ~20% throughput from SGLang's cache, §4.1).
        let run = |caching: bool| {
            let mut cfg = toy_cfg(1, true);
            cfg.prefix_caching = caching;
            let mut s = SimServer::new(cfg);
            let mut at = VirtualTime::ZERO;
            for i in 0..6 {
                s.submit(
                    at,
                    LlmRequest::new(RequestId(i), 7, 0, 400, 4, CallKind::Plan),
                );
                at = at + VirtualTime::from_micros(1);
            }
            let done = s.drain();
            let end = done.iter().map(|c| c.finished_at).max().unwrap();
            (end, s.metrics().replicas[0].cached_prefill_tokens)
        };
        let (cold, cached_off) = run(false);
        let (warm, cached_on) = run(true);
        assert_eq!(cached_off, 0);
        assert!(cached_on > 0, "cache must register hits");
        assert!(
            warm < cold,
            "caching must reduce completion time: {warm} vs {cold}"
        );
    }

    #[test]
    fn prefix_cache_is_per_agent() {
        let mut cfg = toy_cfg(1, true);
        cfg.prefix_caching = true;
        let mut s = SimServer::new(cfg);
        // Two different agents: neither benefits from the other's prefix.
        s.submit(
            VirtualTime::ZERO,
            LlmRequest::new(RequestId(0), 1, 0, 400, 2, CallKind::Plan),
        );
        let _ = s.drain();
        s.submit(
            s.now(),
            LlmRequest::new(RequestId(1), 2, 0, 400, 2, CallKind::Plan),
        );
        let _ = s.drain();
        assert_eq!(
            s.metrics().replicas[0].cached_prefill_tokens,
            0,
            "agent 2 must not reuse agent 1's prefix"
        );
    }

    #[test]
    fn prefix_cache_counts_hits_and_misses() {
        let mut cfg = toy_cfg(1, true);
        cfg.prefix_caching = true;
        let mut s = SimServer::new(cfg);
        for i in 0..4u64 {
            s.submit(
                s.now(),
                LlmRequest::new(RequestId(i), 9, 0, 300, 2, CallKind::Plan),
            );
            let _ = s.drain();
        }
        let m = s.metrics().replicas[0];
        assert_eq!(m.prefix_misses, 1, "only the cold call misses");
        assert_eq!(m.prefix_hits, 3);
        assert_eq!(m.cached_prefill_tokens, 3 * 300);
    }

    #[test]
    fn bounded_prefix_cache_evicts_between_agents() {
        // Capacity 1: two agents alternating always evict each other, so
        // the cache never helps — the bounded-LRU behavior affinity
        // routing exists to exploit.
        let mut cfg = toy_cfg(1, true);
        cfg.prefix_caching = true;
        cfg.prefix_cache_entries = 1;
        let mut s = SimServer::new(cfg);
        for i in 0..6u64 {
            let agent = (i % 2) as u32 + 1;
            s.submit(
                s.now(),
                LlmRequest::new(RequestId(i), agent, 0, 300, 2, CallKind::Plan),
            );
            let _ = s.drain();
        }
        let m = s.metrics().replicas[0];
        assert_eq!(m.prefix_hits, 0, "alternating agents thrash a 1-entry LRU");
        assert_eq!(m.cached_prefill_tokens, 0);
    }

    #[test]
    fn template_prefix_shared_across_agents() {
        // Different agents of one persona template share the preamble:
        // the second agent's prefill is discounted by the shared prefix
        // even though the agent itself is cold.
        let mut cfg = toy_cfg(1, true);
        cfg.prefix_caching = true;
        let mut s = SimServer::new(cfg);
        s.submit(
            VirtualTime::ZERO,
            LlmRequest::new(RequestId(0), 1, 0, 400, 2, CallKind::Plan).with_template(3, 250),
        );
        let _ = s.drain();
        s.submit(
            s.now(),
            LlmRequest::new(RequestId(1), 2, 0, 400, 2, CallKind::Plan).with_template(3, 250),
        );
        let _ = s.drain();
        let m = s.metrics().replicas[0];
        assert_eq!(m.prefix_hits, 0, "agent entries were both cold");
        assert_eq!(
            m.cached_prefill_tokens, 250,
            "the template preamble must be reused across agents"
        );
    }

    #[test]
    fn zero_output_treated_as_one_token() {
        let mut s = SimServer::new(toy_cfg(1, true));
        s.submit(VirtualTime::ZERO, req(0, 0, 10, 0));
        assert_eq!(s.drain().len(), 1);
    }
}
