use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::request::{LlmRequest, LlmResponse, RequestId};
use crate::server::{ServerConfig, SimServer};
use crate::time::VirtualTime;

/// A blocking LLM inference backend, as seen by the threaded runtime's
/// worker threads (paper §3.6: workers talk to the serving engine through a
/// thin shim layer).
///
/// Implementations must be shareable across worker threads. The engine
/// never preempts an in-flight call (§3.5), so `call` simply blocks until
/// the response is available. Implement this trait to connect a real
/// serving engine (e.g. an OpenAI-compatible HTTP endpoint); this crate
/// ships [`InstantBackend`] for tests, [`RealtimeSimBackend`] (the
/// virtual-time simulator paced against the wall clock),
/// [`crate::ReplayBackend`] (recorded latency distributions), and
/// [`crate::Fleet`] (N heterogeneous replicas behind a routing policy).
pub trait LlmBackend: Send + Sync {
    /// Executes one request to completion.
    fn call(&self, req: &LlmRequest) -> LlmResponse;

    /// Human-readable backend description (for logs and reports).
    ///
    /// Required, deliberately: every backend must identify itself
    /// distinctively — the threaded runtime records it in its report and
    /// fleets display it per replica, so a generic fallback string would
    /// make heterogeneous deployments unreadable.
    fn describe(&self) -> String;

    /// Fleet-level counters, when this backend is a [`crate::Fleet`]
    /// (or wraps one). Plain backends return `None` — the default.
    ///
    /// This is how the threaded runtime surfaces per-replica routing,
    /// prefix-cache, and fault counters in its report without downcasting
    /// through `Arc<dyn LlmBackend>`.
    fn fleet_metrics(&self) -> Option<crate::FleetMetrics> {
        None
    }

    /// Installs a [`crate::CallObserver`] that will see every per-replica
    /// call attempt, when this backend is a [`crate::Fleet`] (or wraps
    /// one). Plain backends have no attempt structure to observe and
    /// return `false` — the default. Installing again replaces the
    /// previous observer.
    fn install_observer(&self, observer: std::sync::Arc<dyn crate::CallObserver>) -> bool {
        let _ = observer;
        false
    }

    /// Virtual seconds this backend simulates per wall-clock second, when
    /// it paces a simulated/replayed deployment against the wall clock
    /// (`None` — the default — for backends that serve in real time or
    /// never sleep). The fleet reads this to compress its wall-clock
    /// retry backoff by the same factor, so a quick-mode run doesn't
    /// sleep 100 virtual seconds to let a transient fault window pass.
    fn time_scale(&self) -> Option<f64> {
        None
    }
}

/// A backend that completes every call immediately.
///
/// Useful for scheduler-logic tests where serving time is irrelevant.
///
/// # Example
///
/// ```
/// use aim_llm::{CallKind, InstantBackend, LlmBackend, LlmRequest, RequestId};
///
/// let b = InstantBackend::new();
/// let r = b.call(&LlmRequest::new(RequestId(0), 0, 0, 100, 7, CallKind::Plan));
/// assert_eq!(r.output_tokens, 7);
/// assert_eq!(b.calls(), 1);
/// ```
#[derive(Debug, Default)]
pub struct InstantBackend {
    calls: std::sync::atomic::AtomicU64,
}

impl InstantBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of calls served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl LlmBackend for InstantBackend {
    fn call(&self, req: &LlmRequest) -> LlmResponse {
        self.calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        LlmResponse {
            id: req.id,
            output_tokens: req.output_tokens,
        }
    }

    fn describe(&self) -> String {
        "instant".to_string()
    }
}

struct RtInner {
    server: SimServer,
    done: HashMap<RequestId, u32>,
}

/// An [`LlmBackend`] that answers calls from the virtual-time
/// [`SimServer`], pacing completions against the wall clock.
///
/// One wall-clock second corresponds to [`RealtimeSimBackend::time_scale`]
/// virtual seconds, so demos can run a "realistic" deployment sped up by,
/// say, 100×. Multiple worker threads may call concurrently; their requests
/// batch inside the shared simulated engine exactly as they would in a real
/// continuous-batching server — so the *threaded* runtime exhibits the same
/// batching economics as the discrete-event runtime.
pub struct RealtimeSimBackend {
    inner: Mutex<RtInner>,
    progressed: Condvar,
    epoch: Instant,
    time_scale: f64,
    name: String,
}

impl fmt::Debug for RealtimeSimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RealtimeSimBackend")
            .field("name", &self.name)
            .field("time_scale", &self.time_scale)
            .finish()
    }
}

impl RealtimeSimBackend {
    /// Creates a backend over `cfg`, running `time_scale` virtual seconds
    /// per wall-clock second.
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not finite and positive.
    pub fn new(cfg: ServerConfig, time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time_scale must be positive"
        );
        let name = format!("realtime-sim({}, {}x)", cfg.name, time_scale);
        RealtimeSimBackend {
            inner: Mutex::new(RtInner {
                server: SimServer::new(cfg),
                done: HashMap::new(),
            }),
            progressed: Condvar::new(),
            epoch: Instant::now(),
            time_scale,
            name,
        }
    }

    /// Virtual seconds simulated per wall-clock second.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    fn wall_to_virtual(&self, wall: Duration) -> VirtualTime {
        VirtualTime::from_secs_f64(wall.as_secs_f64() * self.time_scale)
    }

    fn virtual_to_wall(&self, vt: VirtualTime) -> Duration {
        Duration::from_secs_f64(vt.as_secs_f64() / self.time_scale)
    }

    fn pump(&self, inner: &mut RtInner) {
        // Advance the simulator to "wall now" (in virtual units), stashing
        // completions. Never move the clock backwards.
        let vt_now = self
            .wall_to_virtual(self.epoch.elapsed())
            .max(inner.server.now());
        for c in inner.server.advance(vt_now) {
            inner.done.insert(c.req.id, c.req.output_tokens);
        }
    }
}

impl LlmBackend for RealtimeSimBackend {
    fn call(&self, req: &LlmRequest) -> LlmResponse {
        let mut inner = self.inner.lock();
        self.pump(&mut inner);
        let now = inner.server.now();
        inner.server.submit(now, *req);
        self.progressed.notify_all();
        loop {
            if let Some(output_tokens) = inner.done.remove(&req.id) {
                self.progressed.notify_all();
                return LlmResponse {
                    id: req.id,
                    output_tokens,
                };
            }
            match inner.server.next_event() {
                Some(t) => {
                    let wall_deadline = self.epoch + self.virtual_to_wall(t);
                    let timed_out = self
                        .progressed
                        .wait_until(&mut inner, wall_deadline)
                        .timed_out();
                    if timed_out {
                        self.pump(&mut inner);
                        self.progressed.notify_all();
                    }
                }
                None => {
                    // Our request is outstanding but the engine is idle —
                    // another thread must pump; wait briefly and retry.
                    self.progressed
                        .wait_for(&mut inner, Duration::from_millis(1));
                    self.pump(&mut inner);
                }
            }
        }
    }

    fn describe(&self) -> String {
        self.name.clone()
    }

    fn time_scale(&self) -> Option<f64> {
        Some(self.time_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::request::CallKind;
    use std::sync::Arc;

    fn fast_cfg() -> ServerConfig {
        // tiny preset at 10_000x wall speed keeps the test fast.
        ServerConfig::from_preset(presets::tiny_test(), 2, true)
    }

    #[test]
    fn instant_backend_counts_calls() {
        let b = InstantBackend::new();
        for i in 0..5 {
            b.call(&LlmRequest::new(RequestId(i), 0, 0, 10, 3, CallKind::Other));
        }
        assert_eq!(b.calls(), 5);
        assert_eq!(b.describe(), "instant");
    }

    #[test]
    fn realtime_backend_serves_single_call() {
        let b = RealtimeSimBackend::new(fast_cfg(), 50_000.0);
        let r = b.call(&LlmRequest::new(RequestId(1), 0, 0, 100, 4, CallKind::Plan));
        assert_eq!(r.id, RequestId(1));
        assert_eq!(r.output_tokens, 4);
    }

    #[test]
    fn realtime_backend_serves_concurrent_calls() {
        let b = Arc::new(RealtimeSimBackend::new(fast_cfg(), 50_000.0));
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let r = b.call(&LlmRequest::new(
                        RequestId(i),
                        i as u32,
                        i % 3,
                        50 + (i as u32) * 10,
                        2 + (i as u32) % 5,
                        CallKind::Converse,
                    ));
                    assert_eq!(r.id, RequestId(i));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn backend_is_object_safe() {
        let b: Box<dyn LlmBackend> = Box::new(InstantBackend::new());
        let r = b.call(&LlmRequest::new(RequestId(0), 0, 0, 1, 1, CallKind::Other));
        assert_eq!(r.output_tokens, 1);
    }
}
