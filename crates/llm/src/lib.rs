//! # aim-llm
//!
//! LLM serving for AI Metropolis: request/response types, an analytical
//! cost model, a **virtual-time continuous-batching serving simulator**, and
//! the [`LlmBackend`] trait for plugging real engines into the threaded
//! runtime.
//!
//! The AI Metropolis paper (§4.1) evaluates against SGLang running Llama-3
//! 8B/70B and Mixtral 8×7B on NVIDIA L4 and A100 GPUs. Those GPUs are not
//! available here, so this crate substitutes a *simulated* serving engine
//! ([`SimServer`]) that reproduces the performance characteristics the
//! scheduler interacts with:
//!
//! * **iteration-level continuous batching** (Orca/vLLM/SGLang style): each
//!   engine iteration decodes every running sequence once and processes a
//!   bounded chunk of pending prefill;
//! * a **concave throughput-vs-batch curve**: iterations have a latency
//!   floor (weight streaming, [`CostModel::iter_floor_us`]) so small batches
//!   underutilize the GPU and throughput saturates around
//!   [`CostModel::saturation_batch`] — this is exactly why the paper's
//!   out-of-order scheduling wins by raising concurrency;
//! * **priority admission without preemption** (§3.5): pending requests are
//!   admitted lowest-simulation-step first when priorities are enabled,
//!   FIFO otherwise;
//! * **data parallelism** across replicas with shortest-queue routing, and
//!   tensor-parallel presets whose cost models fold in TP efficiency;
//! * **KV-cache capacity** limits with reserve-on-admit accounting.
//!
//! Calibrated hardware/model presets live in [`presets`]; each documents the
//! arithmetic tying it to public hardware numbers.
//!
//! # Serving fleets
//!
//! Beyond the single simulated engine, this crate models **heterogeneous
//! serving fleets** — the deployment shape massive-agent workloads
//! actually run on. The layering is:
//!
//! 1. **backend trait** — [`LlmBackend`] is the unit of serving capacity:
//!    [`InstantBackend`], [`RealtimeSimBackend`] (a [`SimServer`] paced
//!    against the wall clock), and [`ReplayBackend`] (latencies sampled
//!    from a recorded [`LatencyProfile`], e.g. exported by `trace_tool
//!    latency`);
//! 2. **replica** — a [`ReplicaSpec`] wraps one backend plus fleet-level
//!    tags (e.g. `interactive` for dedicated player-facing capacity) and
//!    an optional [`FaultPlan`] (fail-after-N, transient unavailability,
//!    latency spikes — injected at the fleet layer, gated *before* the
//!    backend runs so retries are always state-safe);
//! 3. **router** — a [`RoutePolicy`] ([`RoundRobin`], [`LeastOutstanding`],
//!    [`LaneAware`], [`PrefixAffinity`]) picks the replica for each
//!    request from live [`ReplicaView`]s (which carry availability, so
//!    degraded replicas shed load);
//! 4. **fleet** — [`Fleet`] owns the replicas and the policy, retries
//!    refused attempts with backoff, optionally hedges slow calls, keeps
//!    per-replica prefix-cache ([`PrefixTracker`]) and latency counters,
//!    and is itself an [`LlmBackend`], so the threaded runtime drives a
//!    mixed fleet exactly like a single engine.
//!
//! # Example: a mixed fleet of a simulated engine and a latency replay
//!
//! ```
//! use aim_llm::{
//!     presets, CallKind, FleetConfig, LatencyProfile, LlmBackend, LlmRequest, ReplicaSpec,
//!     RequestId, RoutePolicyKind, ServerConfig,
//! };
//!
//! let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
//! let fleet = FleetConfig::new("demo", RoutePolicyKind::RoundRobin)
//!     .with_replica(ReplicaSpec::sim(sim, 1_000_000.0))
//!     .with_replica(ReplicaSpec::replay(LatencyProfile::constant("prod", 50), 7, None))
//!     .build();
//! for i in 0..4 {
//!     fleet.call(&LlmRequest::new(RequestId(i), i as u32, 0, 64, 8, CallKind::Plan));
//! }
//! let metrics = fleet.metrics();
//! assert_eq!(metrics.total_served(), 4);
//! assert!(metrics.all_replicas_served(), "round-robin hits every replica");
//! ```
//!
//! # Example: simulate a burst of requests
//!
//! ```
//! use aim_llm::{presets, CallKind, LlmRequest, RequestId, ServerConfig, SimServer, VirtualTime};
//!
//! let cfg = ServerConfig::from_preset(presets::l4_llama3_8b(), 1, true);
//! let mut server = SimServer::new(cfg);
//! for i in 0..8 {
//!     server.submit(
//!         VirtualTime::ZERO,
//!         LlmRequest::new(RequestId(i), i as u32, 0, 640, 22, CallKind::Plan),
//!     );
//! }
//! let mut done = 0;
//! while let Some(t) = server.next_event() {
//!     done += server.advance(t).len();
//! }
//! assert_eq!(done, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod cost;
mod fleet;
mod observer;
mod prefix;
pub mod presets;
mod replay;
mod request;
mod router;
mod server;
mod time;

pub use backend::{InstantBackend, LlmBackend, RealtimeSimBackend};
pub use cost::CostModel;
pub use fleet::{
    BackendSpec, FaultOutcome, FaultPlan, Fleet, FleetConfig, FleetMetrics, FleetReplicaMetrics,
    ReplicaSpec,
};
pub use observer::{AttemptOutcome, CallObserver};
pub use prefix::{PrefixLru, PrefixStats, PrefixTracker};
pub use presets::Preset;
pub use replay::{LatencyProfile, ReplayBackend, ReplayMetrics};
pub use request::{CallKind, Lane, LlmRequest, LlmResponse, RequestId};
pub use router::{
    LaneAware, LeastOutstanding, PrefixAffinity, ReplicaView, RoundRobin, RoutePolicy,
    RoutePolicyKind, TokenWeighted,
};
pub use server::{Completion, ReplicaMetrics, ServerConfig, ServerMetrics, SimServer};
pub use time::VirtualTime;
