//! # aim-llm
//!
//! LLM serving for AI Metropolis: request/response types, an analytical
//! cost model, a **virtual-time continuous-batching serving simulator**, and
//! the [`LlmBackend`] trait for plugging real engines into the threaded
//! runtime.
//!
//! The AI Metropolis paper (§4.1) evaluates against SGLang running Llama-3
//! 8B/70B and Mixtral 8×7B on NVIDIA L4 and A100 GPUs. Those GPUs are not
//! available here, so this crate substitutes a *simulated* serving engine
//! ([`SimServer`]) that reproduces the performance characteristics the
//! scheduler interacts with:
//!
//! * **iteration-level continuous batching** (Orca/vLLM/SGLang style): each
//!   engine iteration decodes every running sequence once and processes a
//!   bounded chunk of pending prefill;
//! * a **concave throughput-vs-batch curve**: iterations have a latency
//!   floor (weight streaming, [`CostModel::iter_floor_us`]) so small batches
//!   underutilize the GPU and throughput saturates around
//!   [`CostModel::saturation_batch`] — this is exactly why the paper's
//!   out-of-order scheduling wins by raising concurrency;
//! * **priority admission without preemption** (§3.5): pending requests are
//!   admitted lowest-simulation-step first when priorities are enabled,
//!   FIFO otherwise;
//! * **data parallelism** across replicas with shortest-queue routing, and
//!   tensor-parallel presets whose cost models fold in TP efficiency;
//! * **KV-cache capacity** limits with reserve-on-admit accounting.
//!
//! Calibrated hardware/model presets live in [`presets`]; each documents the
//! arithmetic tying it to public hardware numbers.
//!
//! # Example: simulate a burst of requests
//!
//! ```
//! use aim_llm::{presets, CallKind, LlmRequest, RequestId, ServerConfig, SimServer, VirtualTime};
//!
//! let cfg = ServerConfig::from_preset(presets::l4_llama3_8b(), 1, true);
//! let mut server = SimServer::new(cfg);
//! for i in 0..8 {
//!     server.submit(
//!         VirtualTime::ZERO,
//!         LlmRequest::new(RequestId(i), i as u32, 0, 640, 22, CallKind::Plan),
//!     );
//! }
//! let mut done = 0;
//! while let Some(t) = server.next_event() {
//!     done += server.advance(t).len();
//! }
//! assert_eq!(done, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod cost;
pub mod presets;
mod request;
mod server;
mod time;

pub use backend::{InstantBackend, LlmBackend, RealtimeSimBackend};
pub use cost::CostModel;
pub use presets::Preset;
pub use request::{CallKind, Lane, LlmRequest, LlmResponse, RequestId};
pub use server::{Completion, ReplicaMetrics, ServerConfig, ServerMetrics, SimServer};
pub use time::VirtualTime;
