//! A heterogeneous **serving fleet**: N independently configured
//! [`LlmBackend`] replicas behind one pluggable [`RoutePolicy`].
//!
//! The paper's deployments are homogeneous — one [`crate::SimServer`]
//! models every GPU. Real massive-agent serving is not: a site mixes
//! hardware generations, dedicates latency-bounded replicas to
//! interactive traffic, and swaps routing policies per experiment. A
//! [`Fleet`] models exactly that: each replica is its own backend (a
//! virtual-time simulated engine, a latency-replay engine, an instant
//! test stub — anything implementing [`LlmBackend`]), and the fleet
//! itself implements [`LlmBackend`], so it plugs into the threaded
//! runtime anywhere a single backend does.
//!
//! The architecture is a strict layering:
//!
//! ```text
//! LlmBackend (trait)  ←  replica: SimServer / replay / instant / custom
//!        ↑
//!   Fleet::call  →  RoutePolicy::route(req, replica views)  →  replica.call
//! ```
//!
//! Deployments are described declaratively by [`FleetConfig`] (the
//! fleet-level generalization of [`crate::ServerConfig`]) and built with
//! [`FleetConfig::build`].

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::backend::{InstantBackend, LlmBackend, RealtimeSimBackend};
use crate::presets::Preset;
use crate::replay::{LatencyProfile, ReplayBackend};
use crate::request::{Lane, LlmRequest, LlmResponse};
use crate::router::{ReplicaView, RoutePolicy, RoutePolicyKind};
use crate::server::ServerConfig;

/// How one fleet replica is backed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BackendSpec {
    /// A virtual-time [`crate::SimServer`] paced against the wall clock
    /// ([`RealtimeSimBackend`]) at `time_scale` virtual seconds per
    /// wall-clock second.
    Sim {
        /// Engine deployment config (usually 1 replica — the fleet is
        /// the data-parallel layer now).
        cfg: ServerConfig,
        /// Virtual seconds per wall-clock second.
        time_scale: f64,
    },
    /// A [`ReplayBackend`] over a recorded latency distribution;
    /// `time_scale` of `None` means unpaced (no sleeping).
    Replay {
        /// The recorded distribution to replay.
        profile: LatencyProfile,
        /// Sampling seed (same seed → same per-request latencies).
        seed: u64,
        /// Virtual µs per wall-clock µs, or `None` to never sleep.
        time_scale: Option<f64>,
    },
    /// An [`InstantBackend`] (tests and routing-overhead benches).
    Instant,
}

impl BackendSpec {
    fn build(&self) -> Arc<dyn LlmBackend> {
        match self {
            BackendSpec::Sim { cfg, time_scale } => {
                Arc::new(RealtimeSimBackend::new(cfg.clone(), *time_scale))
            }
            BackendSpec::Replay {
                profile,
                seed,
                time_scale,
            } => Arc::new(match time_scale {
                Some(scale) => ReplayBackend::new(profile.clone(), *seed, *scale),
                None => ReplayBackend::unpaced(profile.clone(), *seed),
            }),
            BackendSpec::Instant => Arc::new(InstantBackend::new()),
        }
    }
}

/// One replica slot of a [`FleetConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSpec {
    /// The backend behind this replica.
    pub backend: BackendSpec,
    /// Tag the replica for interactive traffic (consumed by the
    /// [`crate::LaneAware`] policy; other policies ignore it).
    pub interactive: bool,
}

impl ReplicaSpec {
    /// A simulated-engine replica (see [`BackendSpec::Sim`]).
    pub fn sim(cfg: ServerConfig, time_scale: f64) -> Self {
        ReplicaSpec {
            backend: BackendSpec::Sim { cfg, time_scale },
            interactive: false,
        }
    }

    /// A latency-replay replica (see [`BackendSpec::Replay`]).
    pub fn replay(profile: LatencyProfile, seed: u64, time_scale: Option<f64>) -> Self {
        ReplicaSpec {
            backend: BackendSpec::Replay {
                profile,
                seed,
                time_scale,
            },
            interactive: false,
        }
    }

    /// An instant replica (see [`BackendSpec::Instant`]).
    pub fn instant() -> Self {
        ReplicaSpec {
            backend: BackendSpec::Instant,
            interactive: false,
        }
    }

    /// Tags the replica for interactive traffic.
    pub fn interactive(mut self) -> Self {
        self.interactive = true;
        self
    }
}

/// Declarative description of a heterogeneous serving fleet — the
/// fleet-level counterpart of [`ServerConfig`].
///
/// # Example
///
/// ```
/// use aim_llm::{presets, FleetConfig, LatencyProfile, ReplicaSpec, RoutePolicyKind, ServerConfig};
///
/// let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
/// let fleet = FleetConfig::new("mixed", RoutePolicyKind::RoundRobin)
///     .with_replica(ReplicaSpec::sim(sim, 1_000_000.0))
///     .with_replica(ReplicaSpec::replay(LatencyProfile::constant("prod", 150_000), 7, None))
///     .build();
/// assert_eq!(fleet.replica_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Human-readable fleet name (for reports).
    pub name: String,
    /// Routing policy to instantiate at build time.
    pub policy: RoutePolicyKind,
    /// Replica slots, in id order.
    pub replicas: Vec<ReplicaSpec>,
}

impl FleetConfig {
    /// Creates an empty fleet description.
    pub fn new(name: impl Into<String>, policy: RoutePolicyKind) -> Self {
        FleetConfig {
            name: name.into(),
            policy,
            replicas: Vec::new(),
        }
    }

    /// Appends a replica slot.
    pub fn with_replica(mut self, replica: ReplicaSpec) -> Self {
        self.replicas.push(replica);
        self
    }

    /// A homogeneous fleet: `replicas` simulated single-engine replicas
    /// of `preset`, paced at `time_scale` — the [`ServerConfig`] +
    /// [`Preset`] story lifted to the fleet layer.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn homogeneous(
        preset: Preset,
        replicas: u32,
        policy: RoutePolicyKind,
        time_scale: f64,
    ) -> Self {
        assert!(replicas > 0, "at least one replica is required");
        let name = format!("{}x{}", replicas, preset.name);
        let mut cfg = FleetConfig::new(name, policy);
        for _ in 0..replicas {
            cfg = cfg.with_replica(ReplicaSpec::sim(
                ServerConfig::from_preset(preset.clone(), 1, true),
                time_scale,
            ));
        }
        cfg
    }

    /// Instantiates the fleet.
    ///
    /// # Panics
    ///
    /// Panics if the config has no replicas.
    pub fn build(self) -> Fleet {
        assert!(
            !self.replicas.is_empty(),
            "fleet needs at least one replica"
        );
        let backends = self
            .replicas
            .iter()
            .map(|r| (r.backend.build(), r.interactive))
            .collect();
        Fleet::from_backends(self.name, self.policy.build(), backends)
    }
}

struct FleetReplica {
    backend: Arc<dyn LlmBackend>,
    interactive: bool,
    description: String,
    outstanding: AtomicUsize,
    /// Prompt + decode tokens of the calls currently in flight — the
    /// load estimate behind [`crate::TokenWeighted`] routing.
    outstanding_tokens: AtomicU64,
    peak_outstanding: AtomicUsize,
    served: AtomicU64,
    interactive_served: AtomicU64,
}

/// Snapshot of one replica's fleet-level counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct FleetReplicaMetrics {
    /// Replica id within the fleet.
    pub replica: usize,
    /// The replica backend's [`LlmBackend::describe`] string.
    pub description: String,
    /// Whether the replica is tagged interactive.
    pub interactive: bool,
    /// Calls completed by this replica.
    pub served: u64,
    /// Of those, calls on [`Lane::Interactive`].
    pub interactive_served: u64,
    /// Maximum concurrently in-flight calls observed.
    pub peak_outstanding: usize,
}

/// Snapshot of a whole fleet (see [`Fleet::metrics`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct FleetMetrics {
    /// Fleet name.
    pub name: String,
    /// Active routing policy name.
    pub policy: String,
    /// Per-replica counters, in replica-id order.
    pub replicas: Vec<FleetReplicaMetrics>,
}

impl FleetMetrics {
    /// Total calls served across replicas.
    pub fn total_served(&self) -> u64 {
        self.replicas.iter().map(|r| r.served).sum()
    }

    /// Whether every replica served at least one call.
    pub fn all_replicas_served(&self) -> bool {
        self.replicas.iter().all(|r| r.served > 0)
    }
}

/// The serving fleet: replicas + routing policy, itself an
/// [`LlmBackend`].
///
/// Worker threads call [`LlmBackend::call`]; the fleet snapshots per-
/// replica load into [`ReplicaView`]s, asks the [`RoutePolicy`] for a
/// replica, and forwards the (blocking) call. Counters are lock-free, so
/// routing adds only a few atomic operations per call.
pub struct Fleet {
    name: String,
    policy: Box<dyn RoutePolicy>,
    replicas: Vec<FleetReplica>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("name", &self.name)
            .field("policy", &self.policy.name())
            .field("replicas", &self.replicas.len())
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet from already-constructed backends — the escape
    /// hatch for replica types [`BackendSpec`] does not describe (custom
    /// [`LlmBackend`] impls, shared backends). Each entry is
    /// `(backend, interactive tag)`.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn from_backends(
        name: impl Into<String>,
        policy: Box<dyn RoutePolicy>,
        backends: Vec<(Arc<dyn LlmBackend>, bool)>,
    ) -> Self {
        assert!(!backends.is_empty(), "fleet needs at least one replica");
        Fleet {
            name: name.into(),
            policy,
            replicas: backends
                .into_iter()
                .map(|(backend, interactive)| FleetReplica {
                    description: backend.describe(),
                    backend,
                    interactive,
                    outstanding: AtomicUsize::new(0),
                    outstanding_tokens: AtomicU64::new(0),
                    peak_outstanding: AtomicUsize::new(0),
                    served: AtomicU64::new(0),
                    interactive_served: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Fleet name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Active routing policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Per-replica counters so far.
    pub fn metrics(&self) -> FleetMetrics {
        FleetMetrics {
            name: self.name.clone(),
            policy: self.policy.name().to_string(),
            replicas: self
                .replicas
                .iter()
                .enumerate()
                .map(|(id, r)| FleetReplicaMetrics {
                    replica: id,
                    description: r.description.clone(),
                    interactive: r.interactive,
                    served: r.served.load(Ordering::Relaxed),
                    interactive_served: r.interactive_served.load(Ordering::Relaxed),
                    peak_outstanding: r.peak_outstanding.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    fn views(&self) -> Vec<ReplicaView> {
        self.replicas
            .iter()
            .enumerate()
            .map(|(id, r)| ReplicaView {
                id,
                outstanding: r.outstanding.load(Ordering::Relaxed),
                outstanding_tokens: r.outstanding_tokens.load(Ordering::Relaxed),
                served: r.served.load(Ordering::Relaxed),
                interactive: r.interactive,
            })
            .collect()
    }
}

impl LlmBackend for Fleet {
    fn call(&self, req: &LlmRequest) -> LlmResponse {
        let views = self.views();
        let id = self.policy.route(req, &views);
        assert!(
            id < self.replicas.len(),
            "route policy {} returned replica {id} of {}",
            self.policy.name(),
            self.replicas.len()
        );
        let replica = &self.replicas[id];
        let now = replica.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        replica
            .outstanding_tokens
            .fetch_add(req.total_tokens(), Ordering::Relaxed);
        replica.peak_outstanding.fetch_max(now, Ordering::Relaxed);
        let resp = replica.backend.call(req);
        replica.outstanding.fetch_sub(1, Ordering::Relaxed);
        replica
            .outstanding_tokens
            .fetch_sub(req.total_tokens(), Ordering::Relaxed);
        replica.served.fetch_add(1, Ordering::Relaxed);
        if req.lane == Lane::Interactive {
            replica.interactive_served.fetch_add(1, Ordering::Relaxed);
        }
        resp
    }

    fn describe(&self) -> String {
        let mut out = format!(
            "fleet({}, {}, {} replicas: ",
            self.name,
            self.policy.name(),
            self.replicas.len()
        );
        for (i, r) in self.replicas.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            let _ = write!(out, "{}", r.description);
            if r.interactive {
                out.push_str(" [interactive]");
            }
        }
        out.push(')');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::request::{CallKind, RequestId};

    fn req(id: u64) -> LlmRequest {
        LlmRequest::new(RequestId(id), id as u32, 0, 20, 2, CallKind::Plan)
    }

    fn instant_fleet(n: usize, policy: RoutePolicyKind) -> Fleet {
        let mut cfg = FleetConfig::new("test", policy);
        for _ in 0..n {
            cfg = cfg.with_replica(ReplicaSpec::instant());
        }
        cfg.build()
    }

    #[test]
    fn round_robin_spreads_exactly() {
        let fleet = instant_fleet(3, RoutePolicyKind::RoundRobin);
        for i in 0..9 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 9);
        assert!(m.replicas.iter().all(|r| r.served == 3), "{m:?}");
        assert!(m.all_replicas_served());
    }

    #[test]
    fn least_outstanding_balances_sequential_calls() {
        // Sequential calls always see zero outstanding, so the tie-break
        // sends everything to replica 0 — the documented behavior.
        let fleet = instant_fleet(2, RoutePolicyKind::LeastOutstanding);
        for i in 0..4 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert_eq!(m.replicas[0].served, 4);
        assert_eq!(m.replicas[1].served, 0);
    }

    #[test]
    fn lane_aware_splits_traffic_by_tag() {
        let fleet = FleetConfig::new("split", RoutePolicyKind::LaneAware)
            .with_replica(ReplicaSpec::instant())
            .with_replica(ReplicaSpec::instant().interactive())
            .build();
        for i in 0..6 {
            fleet.call(&req(i));
            fleet.call(&req(100 + i).interactive());
        }
        let m = fleet.metrics();
        assert_eq!(m.replicas[0].served, 6);
        assert_eq!(m.replicas[0].interactive_served, 0);
        assert_eq!(m.replicas[1].served, 6);
        assert_eq!(m.replicas[1].interactive_served, 6);
    }

    #[test]
    fn heterogeneous_fleet_mixes_backend_types() {
        let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
        let fleet = FleetConfig::new("mixed", RoutePolicyKind::RoundRobin)
            .with_replica(ReplicaSpec::sim(sim, 100_000.0))
            .with_replica(ReplicaSpec::replay(
                LatencyProfile::constant("prod", 10),
                3,
                None,
            ))
            .build();
        for i in 0..4 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert!(m.all_replicas_served(), "{m:?}");
        assert!(m.replicas[0].description.contains("realtime-sim"));
        assert!(m.replicas[1].description.contains("replay"));
    }

    #[test]
    fn describe_lists_policy_and_replicas() {
        let fleet = FleetConfig::new("demo", RoutePolicyKind::LaneAware)
            .with_replica(ReplicaSpec::instant())
            .with_replica(ReplicaSpec::instant().interactive())
            .build();
        let d = fleet.describe();
        assert!(d.contains("fleet(demo, lane-aware, 2 replicas"), "{d}");
        assert!(d.contains("instant"), "{d}");
        assert!(d.contains("[interactive]"), "{d}");
    }

    #[test]
    fn homogeneous_constructor_builds_n_sim_replicas() {
        let fleet =
            FleetConfig::homogeneous(presets::tiny_test(), 3, RoutePolicyKind::RoundRobin, 1e6)
                .build();
        assert_eq!(fleet.replica_count(), 3);
        assert_eq!(fleet.policy_name(), "round-robin");
        assert!(fleet.describe().contains("test/tiny"));
    }

    #[test]
    fn concurrent_calls_track_outstanding_peaks() {
        let fleet = Arc::new(
            FleetConfig::new("conc", RoutePolicyKind::LeastOutstanding)
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("ms", 1_000),
                    0,
                    Some(1.0), // 1 ms wall per call
                ))
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("ms", 1_000),
                    0,
                    Some(1.0),
                ))
                .build(),
        );
        // All callers release together, so the 1 ms-wall calls overlap
        // and least-outstanding must spill past replica 0.
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let fleet = Arc::clone(&fleet);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    fleet.call(&req(i));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 8);
        assert!(
            m.all_replicas_served(),
            "least-outstanding must overflow to replica 1 under concurrency: {m:?}"
        );
        assert!(m.replicas.iter().all(|r| r.peak_outstanding >= 1));
    }

    #[test]
    fn token_weighted_steers_around_heavy_inflight_work() {
        use crate::request::Lane;

        // Replica latencies are paced, so a heavy call parks its tokens
        // on a replica long enough for a second caller to observe them.
        let fleet = Arc::new(
            FleetConfig::new("tok", RoutePolicyKind::TokenWeighted)
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("slow", 20_000),
                    0,
                    Some(1.0), // 20 ms wall
                ))
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("slow", 20_000),
                    0,
                    Some(1.0),
                ))
                .build(),
        );
        // A 5000-token monster goes first (lands on replica 0 by the
        // id tie-break)…
        let heavy = {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || {
                fleet.call(&LlmRequest::new(
                    RequestId(1),
                    0,
                    0,
                    4_900,
                    100,
                    CallKind::Converse,
                ));
            })
        };
        // Wait (bounded) until the heavy call's tokens are actually
        // registered on a replica — no sleep-based race with the spawned
        // thread's scheduling.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while fleet.views().iter().all(|v| v.outstanding_tokens == 0) {
            assert!(
                std::time::Instant::now() < deadline,
                "heavy call never registered its tokens"
            );
            std::thread::yield_now();
        }
        // …so a light call issued while it is in flight must route to
        // replica 1 even though both have one call outstanding — count
        // alone cannot distinguish them, tokens can.
        fleet.call(&LlmRequest::new(
            RequestId(2),
            1,
            0,
            40,
            8,
            CallKind::Perceive,
        ));
        heavy.join().unwrap();
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 2);
        assert_eq!(
            m.replicas[1].served, 1,
            "light call must avoid the token-heavy replica: {m:?}"
        );
        // Once drained, the outstanding-token estimate returns to zero.
        let views: Vec<_> = fleet.views();
        assert!(views.iter().all(|v| v.outstanding_tokens == 0), "{views:?}");
        let _ = Lane::Background;
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_fleet_rejected() {
        let _ = FleetConfig::new("empty", RoutePolicyKind::RoundRobin).build();
    }
}
