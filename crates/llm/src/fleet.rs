//! A heterogeneous **serving fleet**: N independently configured
//! [`LlmBackend`] replicas behind one pluggable [`RoutePolicy`].
//!
//! The paper's deployments are homogeneous — one [`crate::SimServer`]
//! models every GPU. Real massive-agent serving is not: a site mixes
//! hardware generations, dedicates latency-bounded replicas to
//! interactive traffic, and swaps routing policies per experiment. A
//! [`Fleet`] models exactly that: each replica is its own backend (a
//! virtual-time simulated engine, a latency-replay engine, an instant
//! test stub — anything implementing [`LlmBackend`]), and the fleet
//! itself implements [`LlmBackend`], so it plugs into the threaded
//! runtime anywhere a single backend does.
//!
//! The architecture is a strict layering:
//!
//! ```text
//! LlmBackend (trait)  ←  replica: SimServer / replay / instant / custom
//!        ↑
//!   Fleet::call  →  fault gate → RoutePolicy::route(req, views) → replica.call
//! ```
//!
//! Deployments are described declaratively by [`FleetConfig`] (the
//! fleet-level generalization of [`crate::ServerConfig`]) and built with
//! [`FleetConfig::build`].
//!
//! # Fault tolerance and the retry-safety invariant
//!
//! Replicas may carry a [`FaultPlan`] (fail-after-N, transient
//! unavailability, latency spikes). The fleet's call path then becomes a
//! retry loop: a refused attempt marks the replica unavailable in the
//! next routing round, so a degraded replica **sheds load** to its peers
//! instead of stalling the out-of-order cluster that issued the call.
//!
//! The invariant that makes retrying safe: **the fault gate runs before
//! the replica backend is invoked**. Attempt indices are claimed
//! atomically, the plan is consulted, and only a `Serve` outcome ever
//! reaches `backend.call` — so a failed attempt provably produced no
//! backend state and can be re-routed without duplicating work. Hedged
//! requests (see [`FleetConfig::with_hedging`]) rest on the companion
//! property that every shipped backend computes its response as a pure
//! function of the request: a duplicate only moves latency and metrics
//! counters, never simulation state — world commits happen in the worker
//! that issued the call, under the world lock, exactly once.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::backend::{InstantBackend, LlmBackend, RealtimeSimBackend};
use crate::observer::{AttemptOutcome, CallObserver};
use crate::prefix::{PrefixStats, PrefixTracker};
use crate::presets::Preset;
use crate::replay::{LatencyProfile, ReplayBackend};
use crate::request::{Lane, LlmRequest, LlmResponse};
use crate::router::{ReplicaView, RoutePolicy, RoutePolicyKind};
use crate::server::ServerConfig;

/// First retry backoff after a full sweep of refusals; doubles up to
/// [`BACKOFF_CAP`]. Small because refusals are cheap (no backend work was
/// done) and OOO clusters are latency-sensitive.
const BACKOFF_START: Duration = Duration::from_micros(50);
/// Upper bound on the retry backoff.
const BACKOFF_CAP: Duration = Duration::from_millis(5);

/// How one fleet replica is backed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BackendSpec {
    /// A virtual-time [`crate::SimServer`] paced against the wall clock
    /// ([`RealtimeSimBackend`]) at `time_scale` virtual seconds per
    /// wall-clock second.
    Sim {
        /// Engine deployment config (usually 1 replica — the fleet is
        /// the data-parallel layer now).
        cfg: ServerConfig,
        /// Virtual seconds per wall-clock second.
        time_scale: f64,
    },
    /// A [`ReplayBackend`] over a recorded latency distribution;
    /// `time_scale` of `None` means unpaced (no sleeping).
    Replay {
        /// The recorded distribution to replay.
        profile: LatencyProfile,
        /// Sampling seed (same seed → same per-request latencies).
        seed: u64,
        /// Virtual µs per wall-clock µs, or `None` to never sleep.
        time_scale: Option<f64>,
    },
    /// An [`InstantBackend`] (tests and routing-overhead benches).
    Instant,
}

impl BackendSpec {
    fn build(&self) -> Arc<dyn LlmBackend> {
        match self {
            BackendSpec::Sim { cfg, time_scale } => {
                Arc::new(RealtimeSimBackend::new(cfg.clone(), *time_scale))
            }
            BackendSpec::Replay {
                profile,
                seed,
                time_scale,
            } => Arc::new(match time_scale {
                Some(scale) => ReplayBackend::new(profile.clone(), *seed, *scale),
                None => ReplayBackend::unpaced(profile.clone(), *seed),
            }),
            BackendSpec::Instant => Arc::new(InstantBackend::new()),
        }
    }
}

/// What a [`FaultPlan`] decides for one claimed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultOutcome {
    /// The attempt proceeds to the backend, with `extra_latency_us`
    /// wall-clock microseconds of injected delay (0 when healthy).
    Serve {
        /// Injected wall-clock delay, µs.
        extra_latency_us: u64,
    },
    /// The replica fails this attempt permanently (it is marked down and
    /// routed around for the rest of the run).
    Fail,
    /// The replica refuses this attempt but may recover (transient
    /// window).
    Unavailable,
}

/// Declarative per-replica fault schedule, evaluated **before** the
/// backend is invoked (see the module docs for the retry-safety
/// invariant this ordering guarantees).
///
/// Two kinds of clock index the schedule, both deterministic:
///
/// * `fail_after` counts **this replica's claimed attempts** — the
///   replica serves exactly N attempts, then the N+1-th fails and the
///   replica is down for the rest of the run (a crashed engine).
/// * `unavailable` / `spike` windows are half-open ranges over the
///   **fleet-wide attempt tick** (every attempt on any replica advances
///   it), so a window opens and closes as overall traffic flows — a
///   rolling restart or a noisy-neighbor episode, not a permanent loss.
///
/// All three compose; `Fail` takes precedence, then `Unavailable`, then
/// a spiked or clean `Serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Fail permanently on the attempt with this index (0-based): the
    /// replica serves exactly this many attempts first.
    pub fail_after: Option<u64>,
    /// Refuse attempts while the fleet tick is in `[start, end)`.
    pub unavailable: Option<(u64, u64)>,
    /// Add wall-clock latency while the fleet tick is in `[start, end)`:
    /// `(start, end, extra_latency_us)`.
    pub spike: Option<(u64, u64, u64)>,
}

impl FaultPlan {
    /// A healthy replica (no faults). Equivalent to `FaultPlan::default()`.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fail permanently after serving `attempts` attempts.
    pub fn fail_after(mut self, attempts: u64) -> Self {
        self.fail_after = Some(attempts);
        self
    }

    /// Refuse (but survive) attempts while the fleet tick is in
    /// `[start, end)`.
    pub fn unavailable_between(mut self, start: u64, end: u64) -> Self {
        self.unavailable = Some((start, end));
        self
    }

    /// Inject `extra_latency_us` of wall-clock delay while the fleet
    /// tick is in `[start, end)`.
    pub fn spike_between(mut self, start: u64, end: u64, extra_latency_us: u64) -> Self {
        self.spike = Some((start, end, extra_latency_us));
        self
    }

    /// Whether any fault is configured.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Decides the outcome of one claimed attempt (`attempt` is this
    /// replica's attempt index, `tick` the fleet-wide one).
    pub fn outcome(&self, attempt: u64, tick: u64) -> FaultOutcome {
        if self.fail_after.is_some_and(|n| attempt >= n) {
            return FaultOutcome::Fail;
        }
        if self.unavailable_at(tick) {
            return FaultOutcome::Unavailable;
        }
        let extra_latency_us = match self.spike {
            Some((start, end, extra)) if (start..end).contains(&tick) => extra,
            _ => 0,
        };
        FaultOutcome::Serve { extra_latency_us }
    }

    /// Whether the transient-unavailability window covers `tick` (used
    /// for proactive shedding: the replica is advertised unavailable to
    /// the router, so most traffic never even attempts it).
    pub fn unavailable_at(&self, tick: u64) -> bool {
        self.unavailable
            .is_some_and(|(start, end)| (start..end).contains(&tick))
    }
}

/// One replica slot of a [`FleetConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSpec {
    /// The backend behind this replica.
    pub backend: BackendSpec,
    /// Tag the replica for interactive traffic (consumed by the
    /// [`crate::LaneAware`] policy; other policies ignore it).
    pub interactive: bool,
    /// Fault schedule injected at the fleet layer (healthy by default).
    pub fault: FaultPlan,
}

impl ReplicaSpec {
    /// A simulated-engine replica (see [`BackendSpec::Sim`]).
    pub fn sim(cfg: ServerConfig, time_scale: f64) -> Self {
        ReplicaSpec {
            backend: BackendSpec::Sim { cfg, time_scale },
            interactive: false,
            fault: FaultPlan::none(),
        }
    }

    /// A latency-replay replica (see [`BackendSpec::Replay`]).
    pub fn replay(profile: LatencyProfile, seed: u64, time_scale: Option<f64>) -> Self {
        ReplicaSpec {
            backend: BackendSpec::Replay {
                profile,
                seed,
                time_scale,
            },
            interactive: false,
            fault: FaultPlan::none(),
        }
    }

    /// An instant replica (see [`BackendSpec::Instant`]).
    pub fn instant() -> Self {
        ReplicaSpec {
            backend: BackendSpec::Instant,
            interactive: false,
            fault: FaultPlan::none(),
        }
    }

    /// Tags the replica for interactive traffic.
    pub fn interactive(mut self) -> Self {
        self.interactive = true;
        self
    }

    /// Attaches a fault schedule to the replica.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

fn default_prefix_lru_entries() -> u32 {
    4096
}

/// Declarative description of a heterogeneous serving fleet — the
/// fleet-level counterpart of [`ServerConfig`].
///
/// # Example
///
/// ```
/// use aim_llm::{presets, FleetConfig, LatencyProfile, ReplicaSpec, RoutePolicyKind, ServerConfig};
///
/// let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
/// let fleet = FleetConfig::new("mixed", RoutePolicyKind::RoundRobin)
///     .with_replica(ReplicaSpec::sim(sim, 1_000_000.0))
///     .with_replica(ReplicaSpec::replay(LatencyProfile::constant("prod", 150_000), 7, None))
///     .build();
/// assert_eq!(fleet.replica_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Human-readable fleet name (for reports).
    pub name: String,
    /// Routing policy to instantiate at build time.
    pub policy: RoutePolicyKind,
    /// Replica slots, in id order.
    pub replicas: Vec<ReplicaSpec>,
    /// Hedge threshold: when set, a call whose primary attempt has not
    /// completed within this wall-clock duration fires one backup
    /// attempt on a different replica; the first response wins (see
    /// [`FleetConfig::with_hedging`]).
    pub hedge_after: Option<Duration>,
    /// Capacity of each replica's fleet-level prefix LRU, in cache keys
    /// (agents + templates) — the residency model behind the per-replica
    /// hit-rate counters.
    pub prefix_lru_entries: u32,
}

impl FleetConfig {
    /// Creates an empty fleet description.
    pub fn new(name: impl Into<String>, policy: RoutePolicyKind) -> Self {
        FleetConfig {
            name: name.into(),
            policy,
            replicas: Vec::new(),
            hedge_after: None,
            prefix_lru_entries: default_prefix_lru_entries(),
        }
    }

    /// Appends a replica slot.
    pub fn with_replica(mut self, replica: ReplicaSpec) -> Self {
        self.replicas.push(replica);
        self
    }

    /// Enables hedged requests: a call whose primary attempt is still in
    /// flight after `after` fires one backup attempt on a different
    /// replica and takes whichever response arrives first. Safe because
    /// shipped backends are pure functions of the request (module docs);
    /// the duplicate costs capacity, which is the standard tail-latency
    /// trade.
    pub fn with_hedging(mut self, after: Duration) -> Self {
        self.hedge_after = Some(after);
        self
    }

    /// Sets the per-replica prefix LRU capacity (see
    /// [`FleetConfig::prefix_lru_entries`]).
    pub fn with_prefix_lru_entries(mut self, entries: u32) -> Self {
        self.prefix_lru_entries = entries;
        self
    }

    /// A homogeneous fleet: `replicas` simulated single-engine replicas
    /// of `preset`, paced at `time_scale` — the [`ServerConfig`] +
    /// [`Preset`] story lifted to the fleet layer.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn homogeneous(
        preset: Preset,
        replicas: u32,
        policy: RoutePolicyKind,
        time_scale: f64,
    ) -> Self {
        assert!(replicas > 0, "at least one replica is required");
        let name = format!("{}x{}", replicas, preset.name);
        let mut cfg = FleetConfig::new(name, policy);
        for _ in 0..replicas {
            cfg = cfg.with_replica(ReplicaSpec::sim(
                ServerConfig::from_preset(preset.clone(), 1, true),
                time_scale,
            ));
        }
        cfg
    }

    /// Instantiates the fleet.
    ///
    /// # Panics
    ///
    /// Panics if the config has no replicas.
    pub fn build(self) -> Fleet {
        assert!(
            !self.replicas.is_empty(),
            "fleet needs at least one replica"
        );
        let parts = self
            .replicas
            .iter()
            .map(|r| (r.backend.build(), r.interactive, r.fault))
            .collect();
        Fleet::from_parts(
            self.name,
            self.policy.build(),
            parts,
            self.hedge_after,
            self.prefix_lru_entries,
        )
    }
}

/// Number of log2 latency buckets (covers sub-µs through ~2^39 µs).
const LATENCY_BUCKETS: usize = 40;

/// Lock-free log2-bucketed wall-latency histogram.
struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, us: u64) {
        let b = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound (µs) of the bucket where the 99th percentile falls;
    /// 0 before any sample.
    fn p99_us(&self) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let mut cum = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            cum += c;
            if cum * 100 >= total * 99 {
                return 1u64 << b;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }
}

struct FleetReplica {
    backend: Arc<dyn LlmBackend>,
    interactive: bool,
    description: String,
    fault: FaultPlan,
    outstanding: AtomicUsize,
    /// Prompt + decode tokens of the calls currently in flight — the
    /// load estimate behind [`crate::TokenWeighted`] routing.
    outstanding_tokens: AtomicU64,
    peak_outstanding: AtomicUsize,
    served: AtomicU64,
    interactive_served: AtomicU64,
    /// Attempts claimed against this replica (served + refused).
    attempts: AtomicU64,
    /// Attempts the fault gate refused (Fail or Unavailable).
    failed: AtomicU64,
    /// Backup (hedge) attempts that landed on this replica.
    hedged: AtomicU64,
    /// Set once an attempt returns [`FaultOutcome::Fail`]; from then on
    /// the replica is advertised unavailable and routed around.
    down: AtomicBool,
    /// Fleet-level prefix-cache residency model for this replica.
    prefix: Mutex<PrefixTracker>,
    latency: LatencyHistogram,
}

/// Snapshot of one replica's fleet-level counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct FleetReplicaMetrics {
    /// Replica id within the fleet.
    pub replica: usize,
    /// The replica backend's [`LlmBackend::describe`] string.
    pub description: String,
    /// Whether the replica is tagged interactive.
    pub interactive: bool,
    /// Calls completed by this replica.
    pub served: u64,
    /// Of those, calls on [`Lane::Interactive`].
    pub interactive_served: u64,
    /// Maximum concurrently in-flight calls observed.
    pub peak_outstanding: usize,
    /// Attempts claimed (served + refused).
    pub attempts: u64,
    /// Attempts refused by the fault gate.
    pub failed: u64,
    /// Hedge backups that landed here.
    pub hedged: u64,
    /// Whether the replica has failed permanently.
    pub down: bool,
    /// Prefix-cache counters (hits are agent-keyed residency — see
    /// [`crate::PrefixTracker`]).
    pub prefix: PrefixStats,
    /// Upper bound (µs) of the log2 bucket holding the 99th-percentile
    /// wall latency of served calls; 0 before any call.
    pub p99_us: u64,
}

impl FleetReplicaMetrics {
    /// Prefix-cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        self.prefix.hit_rate()
    }
}

/// Snapshot of a whole fleet (see [`Fleet::metrics`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct FleetMetrics {
    /// Fleet name.
    pub name: String,
    /// Active routing policy name.
    pub policy: String,
    /// Per-replica counters, in replica-id order.
    pub replicas: Vec<FleetReplicaMetrics>,
}

impl FleetMetrics {
    /// Total calls served across replicas.
    pub fn total_served(&self) -> u64 {
        self.replicas.iter().map(|r| r.served).sum()
    }

    /// Whether every replica served at least one call.
    pub fn all_replicas_served(&self) -> bool {
        self.replicas.iter().all(|r| r.served > 0)
    }

    /// Fleet-wide prefix-cache hit rate in `[0, 1]` (hits and misses
    /// summed over replicas).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.replicas.iter().fold((0u64, 0u64), |(h, m), r| {
            (h + r.prefix.hits, m + r.prefix.misses)
        });
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Worst per-replica p99 wall latency, µs.
    pub fn max_p99_us(&self) -> u64 {
        self.replicas.iter().map(|r| r.p99_us).max().unwrap_or(0)
    }

    /// Total attempts the fault gate refused across replicas.
    pub fn total_failed(&self) -> u64 {
        self.replicas.iter().map(|r| r.failed).sum()
    }
}

struct FleetInner {
    name: String,
    policy: Box<dyn RoutePolicy>,
    replicas: Vec<FleetReplica>,
    hedge_after: Option<Duration>,
    /// Fleet-wide attempt tick (indexes transient fault windows).
    ticks: AtomicU64,
    /// Wall-clock divisor for the retry backoff: the largest replica
    /// [`LlmBackend::time_scale`], or 1 when every replica serves in real
    /// time. Fault windows are *tick*-indexed (ticks advance per attempt,
    /// never with the clock), so the sweep sleep is pure CPU-courtesy
    /// pacing and can safely be compressed by the simulation speed-up.
    backoff_div: f64,
    /// Telemetry hook: sees every claimed attempt (begin/end). Read-locked
    /// on the call path — uncontended once installed, and never held
    /// across a backend call.
    observer: RwLock<Option<Arc<dyn CallObserver>>>,
    /// Fast-path gate for `observer`: an unobserved fleet pays one atomic
    /// load per attempt instead of a read-lock acquire.
    observed: AtomicBool,
}

/// The serving fleet: replicas + routing policy, itself an
/// [`LlmBackend`].
///
/// Worker threads call [`LlmBackend::call`]; the fleet snapshots per-
/// replica load and availability into [`ReplicaView`]s, asks the
/// [`RoutePolicy`] for a replica, runs the replica's [`FaultPlan`] gate,
/// and forwards the (blocking) call. Refused attempts are retried on the
/// remaining replicas with exponential backoff — see the module docs for
/// why retrying is always state-safe. Counters are lock-free; the only
/// lock on the call path is each replica's prefix tracker.
pub struct Fleet {
    inner: Arc<FleetInner>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("name", &self.inner.name)
            .field("policy", &self.inner.policy.name())
            .field("replicas", &self.inner.replicas.len())
            .field("hedge_after", &self.inner.hedge_after)
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet from already-constructed backends — the escape
    /// hatch for replica types [`BackendSpec`] does not describe (custom
    /// [`LlmBackend`] impls, shared backends). Each entry is
    /// `(backend, interactive tag)`; replicas are healthy and hedging is
    /// off (use [`FleetConfig`] for faults and hedging).
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn from_backends(
        name: impl Into<String>,
        policy: Box<dyn RoutePolicy>,
        backends: Vec<(Arc<dyn LlmBackend>, bool)>,
    ) -> Self {
        let parts = backends
            .into_iter()
            .map(|(backend, interactive)| (backend, interactive, FaultPlan::none()))
            .collect();
        Fleet::from_parts(name, policy, parts, None, default_prefix_lru_entries())
    }

    fn from_parts(
        name: impl Into<String>,
        policy: Box<dyn RoutePolicy>,
        backends: Vec<(Arc<dyn LlmBackend>, bool, FaultPlan)>,
        hedge_after: Option<Duration>,
        prefix_lru_entries: u32,
    ) -> Self {
        assert!(!backends.is_empty(), "fleet needs at least one replica");
        let prefix_entries = prefix_lru_entries.max(1) as usize;
        let backoff_div = backends
            .iter()
            .filter_map(|(b, _, _)| b.time_scale())
            .filter(|s| s.is_finite() && *s > 1.0)
            .fold(1.0, f64::max);
        Fleet {
            inner: Arc::new(FleetInner {
                name: name.into(),
                policy,
                replicas: backends
                    .into_iter()
                    .map(|(backend, interactive, fault)| FleetReplica {
                        description: backend.describe(),
                        backend,
                        interactive,
                        fault,
                        outstanding: AtomicUsize::new(0),
                        outstanding_tokens: AtomicU64::new(0),
                        peak_outstanding: AtomicUsize::new(0),
                        served: AtomicU64::new(0),
                        interactive_served: AtomicU64::new(0),
                        attempts: AtomicU64::new(0),
                        failed: AtomicU64::new(0),
                        hedged: AtomicU64::new(0),
                        down: AtomicBool::new(false),
                        prefix: Mutex::new(PrefixTracker::new(prefix_entries)),
                        latency: LatencyHistogram::new(),
                    })
                    .collect(),
                hedge_after,
                ticks: AtomicU64::new(0),
                backoff_div,
                observer: RwLock::new(None),
                observed: AtomicBool::new(false),
            }),
        }
    }

    /// Fleet name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.inner.replicas.len()
    }

    /// Active routing policy name.
    pub fn policy_name(&self) -> &'static str {
        self.inner.policy.name()
    }

    /// Divisor applied to the wall-clock retry backoff: the largest
    /// replica [`LlmBackend::time_scale`] (clamped to at least 1). Fault
    /// windows are indexed by attempt *ticks*, so compressing the sleep
    /// never changes which attempts a transient window refuses — it only
    /// stops a sped-up simulation from sleeping at real-deployment pace.
    pub fn backoff_divisor(&self) -> f64 {
        self.inner.backoff_div
    }

    /// Per-replica counters so far.
    pub fn metrics(&self) -> FleetMetrics {
        let inner = &self.inner;
        FleetMetrics {
            name: inner.name.clone(),
            policy: inner.policy.name().to_string(),
            replicas: inner
                .replicas
                .iter()
                .enumerate()
                .map(|(id, r)| FleetReplicaMetrics {
                    replica: id,
                    description: r.description.clone(),
                    interactive: r.interactive,
                    served: r.served.load(Ordering::Relaxed),
                    interactive_served: r.interactive_served.load(Ordering::Relaxed),
                    peak_outstanding: r.peak_outstanding.load(Ordering::Relaxed),
                    attempts: r.attempts.load(Ordering::Relaxed),
                    failed: r.failed.load(Ordering::Relaxed),
                    hedged: r.hedged.load(Ordering::Relaxed),
                    down: r.down.load(Ordering::Relaxed),
                    prefix: r.prefix.lock().stats(),
                    p99_us: r.latency.p99_us(),
                })
                .collect(),
        }
    }

    #[cfg(test)]
    fn views(&self) -> Vec<ReplicaView> {
        let n = self.inner.replicas.len();
        self.inner.views_marking(&vec![false; n])
    }
}

impl FleetInner {
    /// Routing snapshot; `tried[i]` marks replicas already refused within
    /// the current retry round (advertised unavailable so the policy
    /// routes around them).
    fn views_marking(&self, tried: &[bool]) -> Vec<ReplicaView> {
        let tick = self.ticks.load(Ordering::Relaxed);
        self.replicas
            .iter()
            .enumerate()
            .map(|(id, r)| ReplicaView {
                id,
                outstanding: r.outstanding.load(Ordering::Relaxed),
                outstanding_tokens: r.outstanding_tokens.load(Ordering::Relaxed),
                served: r.served.load(Ordering::Relaxed),
                interactive: r.interactive,
                available: !tried[id]
                    && !r.down.load(Ordering::Relaxed)
                    && !r.fault.unavailable_at(tick),
            })
            .collect()
    }

    /// One gated attempt on replica `id`. Claims the attempt indices,
    /// consults the fault plan, and only on `Serve` invokes the backend —
    /// the retry-safety invariant: a `None` return means the backend was
    /// never called, so no state exists to duplicate.
    fn attempt(&self, id: usize, req: &LlmRequest, hedge: bool) -> Option<LlmResponse> {
        let replica = &self.replicas[id];
        let observer = if self.observed.load(Ordering::Acquire) {
            self.observer.read().clone()
        } else {
            None
        };
        let token = observer
            .as_ref()
            .map(|o| o.begin_attempt(req, id as u32, hedge));
        let finish = |outcome: AttemptOutcome| {
            if let (Some(o), Some(t)) = (&observer, token) {
                o.end_attempt(t, req, id as u32, hedge, outcome);
            }
        };
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        let attempt = replica.attempts.fetch_add(1, Ordering::Relaxed);
        let extra_latency_us = match replica.fault.outcome(attempt, tick) {
            FaultOutcome::Fail => {
                replica.down.store(true, Ordering::Relaxed);
                replica.failed.fetch_add(1, Ordering::Relaxed);
                finish(AttemptOutcome::Failed);
                return None;
            }
            FaultOutcome::Unavailable => {
                replica.failed.fetch_add(1, Ordering::Relaxed);
                finish(AttemptOutcome::Refused);
                return None;
            }
            FaultOutcome::Serve { extra_latency_us } => extra_latency_us,
        };
        let now = replica.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        replica
            .outstanding_tokens
            .fetch_add(req.total_tokens(), Ordering::Relaxed);
        replica.peak_outstanding.fetch_max(now, Ordering::Relaxed);
        replica.prefix.lock().observe(
            req.agent,
            req.template,
            req.input_tokens,
            req.shared_prefix_tokens,
        );
        let started = Instant::now();
        let resp = replica.backend.call(req);
        if extra_latency_us > 0 {
            std::thread::sleep(Duration::from_micros(extra_latency_us));
        }
        replica.latency.record(started.elapsed().as_micros() as u64);
        replica.outstanding.fetch_sub(1, Ordering::Relaxed);
        replica
            .outstanding_tokens
            .fetch_sub(req.total_tokens(), Ordering::Relaxed);
        replica.served.fetch_add(1, Ordering::Relaxed);
        if req.lane == Lane::Interactive {
            replica.interactive_served.fetch_add(1, Ordering::Relaxed);
        }
        finish(AttemptOutcome::Served);
        Some(resp)
    }

    /// The retry loop: route → gate → call, re-routing refused attempts
    /// with the refusing replica marked unavailable, backing off
    /// exponentially once a full sweep of the fleet has refused.
    ///
    /// `exclude` pre-marks one replica (hedging diversity), dropped after
    /// the first full sweep. `first_pick` reports the first routed
    /// replica to the hedging caller; `is_hedge` counts the attempt as a
    /// backup on the replica that actually *serves* it — a first pick
    /// whose fault gate refuses never touched the request, so the hedge
    /// is attributed to wherever the retry loop lands it.
    ///
    /// # Panics
    ///
    /// Panics when every replica has permanently failed — there is no
    /// replica left that could ever serve, so blocking forever would
    /// stall the simulation silently.
    fn retry_call(
        &self,
        req: &LlmRequest,
        exclude: Option<usize>,
        first_pick: Option<&AtomicUsize>,
        is_hedge: bool,
    ) -> LlmResponse {
        let n = self.replicas.len();
        let mut tried = vec![false; n];
        if let Some(e) = exclude {
            if n > 1 && e < n {
                tried[e] = true;
            }
        }
        let mut backoff = BACKOFF_START;
        let mut first = true;
        loop {
            let views = self.views_marking(&tried);
            let id = self.policy.route(req, &views);
            assert!(
                id < n,
                "route policy {} returned replica {id} of {n}",
                self.policy.name()
            );
            if first {
                first = false;
                if let Some(p) = first_pick {
                    p.store(id, Ordering::Relaxed);
                }
            }
            if let Some(resp) = self.attempt(id, req, is_hedge) {
                if is_hedge {
                    self.replicas[id].hedged.fetch_add(1, Ordering::Relaxed);
                }
                return resp;
            }
            tried[id] = true;
            if tried.iter().all(|&t| t) {
                assert!(
                    !self.replicas.iter().all(|r| r.down.load(Ordering::Relaxed)),
                    "fleet {}: every replica has permanently failed",
                    self.name
                );
                // Transient windows may pass as ticks advance — clear the
                // per-round marks and back off before sweeping again. The
                // sleep is wall-clock pacing only (windows are indexed by
                // attempt ticks, not time), so divide it by the fleet's
                // simulation speed-up: a replayed deployment running 100
                // virtual seconds per wall second should not make callers
                // wait 100x longer than the deployment it models would.
                tried = vec![false; n];
                std::thread::sleep(backoff.div_f64(self.backoff_div));
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
        }
    }

    /// Hedged call path: the primary attempt runs in its own thread; if
    /// no response lands within `hedge`, one backup fires on a different
    /// replica and the first response wins. The losing attempt completes
    /// in the background — it only touches counters (module docs).
    fn hedged_call(self: &Arc<Self>, req: &LlmRequest, hedge: Duration) -> LlmResponse {
        let (tx, rx) = mpsc::channel::<LlmResponse>();
        let primary_pick = Arc::new(AtomicUsize::new(usize::MAX));
        {
            let inner = Arc::clone(self);
            let tx = tx.clone();
            let pick = Arc::clone(&primary_pick);
            let req = *req;
            std::thread::spawn(move || {
                let _ = tx.send(inner.retry_call(&req, None, Some(&pick), false));
            });
        }
        match rx.recv_timeout(hedge) {
            Ok(resp) => resp,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let exclude = match primary_pick.load(Ordering::Relaxed) {
                    usize::MAX => None,
                    id => Some(id),
                };
                {
                    let inner = Arc::clone(self);
                    let req = *req;
                    std::thread::spawn(move || {
                        let _ = tx.send(inner.retry_call(&req, exclude, None, true));
                    });
                }
                rx.recv()
                    .expect("a hedged attempt must eventually complete")
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("primary sender cannot disconnect before sending")
            }
        }
    }
}

impl LlmBackend for Fleet {
    fn call(&self, req: &LlmRequest) -> LlmResponse {
        match self.inner.hedge_after {
            Some(hedge) if self.inner.replicas.len() > 1 => self.inner.hedged_call(req, hedge),
            _ => self.inner.retry_call(req, None, None, false),
        }
    }

    fn describe(&self) -> String {
        let inner = &self.inner;
        let mut out = format!(
            "fleet({}, {}, {} replicas: ",
            inner.name,
            inner.policy.name(),
            inner.replicas.len()
        );
        for (i, r) in inner.replicas.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            let _ = write!(out, "{}", r.description);
            if r.interactive {
                out.push_str(" [interactive]");
            }
            if !r.fault.is_none() {
                out.push_str(" [faulted]");
            }
        }
        out.push(')');
        out
    }

    fn fleet_metrics(&self) -> Option<FleetMetrics> {
        Some(self.metrics())
    }

    fn install_observer(&self, observer: Arc<dyn CallObserver>) -> bool {
        *self.inner.observer.write() = Some(observer);
        self.inner.observed.store(true, Ordering::Release);
        true
    }

    fn time_scale(&self) -> Option<f64> {
        if self.inner.backoff_div > 1.0 {
            Some(self.inner.backoff_div)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::request::{CallKind, RequestId};

    fn req(id: u64) -> LlmRequest {
        LlmRequest::new(RequestId(id), id as u32, 0, 20, 2, CallKind::Plan)
    }

    fn instant_fleet(n: usize, policy: RoutePolicyKind) -> Fleet {
        let mut cfg = FleetConfig::new("test", policy);
        for _ in 0..n {
            cfg = cfg.with_replica(ReplicaSpec::instant());
        }
        cfg.build()
    }

    #[test]
    fn round_robin_spreads_exactly() {
        let fleet = instant_fleet(3, RoutePolicyKind::RoundRobin);
        for i in 0..9 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 9);
        assert!(m.replicas.iter().all(|r| r.served == 3), "{m:?}");
        assert!(m.all_replicas_served());
    }

    #[test]
    fn least_outstanding_balances_sequential_calls() {
        // Sequential calls always see zero outstanding, so the tie-break
        // sends everything to replica 0 — the documented behavior.
        let fleet = instant_fleet(2, RoutePolicyKind::LeastOutstanding);
        for i in 0..4 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert_eq!(m.replicas[0].served, 4);
        assert_eq!(m.replicas[1].served, 0);
    }

    #[test]
    fn lane_aware_splits_traffic_by_tag() {
        let fleet = FleetConfig::new("split", RoutePolicyKind::LaneAware)
            .with_replica(ReplicaSpec::instant())
            .with_replica(ReplicaSpec::instant().interactive())
            .build();
        for i in 0..6 {
            fleet.call(&req(i));
            fleet.call(&req(100 + i).interactive());
        }
        let m = fleet.metrics();
        assert_eq!(m.replicas[0].served, 6);
        assert_eq!(m.replicas[0].interactive_served, 0);
        assert_eq!(m.replicas[1].served, 6);
        assert_eq!(m.replicas[1].interactive_served, 6);
    }

    #[test]
    fn heterogeneous_fleet_mixes_backend_types() {
        let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
        let fleet = FleetConfig::new("mixed", RoutePolicyKind::RoundRobin)
            .with_replica(ReplicaSpec::sim(sim, 100_000.0))
            .with_replica(ReplicaSpec::replay(
                LatencyProfile::constant("prod", 10),
                3,
                None,
            ))
            .build();
        for i in 0..4 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert!(m.all_replicas_served(), "{m:?}");
        assert!(m.replicas[0].description.contains("realtime-sim"));
        assert!(m.replicas[1].description.contains("replay"));
    }

    #[test]
    fn describe_lists_policy_and_replicas() {
        let fleet = FleetConfig::new("demo", RoutePolicyKind::LaneAware)
            .with_replica(ReplicaSpec::instant())
            .with_replica(ReplicaSpec::instant().interactive())
            .build();
        let d = fleet.describe();
        assert!(d.contains("fleet(demo, lane-aware, 2 replicas"), "{d}");
        assert!(d.contains("instant"), "{d}");
        assert!(d.contains("[interactive]"), "{d}");
        assert!(!d.contains("[faulted]"), "{d}");
    }

    #[test]
    fn describe_marks_faulted_replicas() {
        let fleet = FleetConfig::new("faulty", RoutePolicyKind::RoundRobin)
            .with_replica(ReplicaSpec::instant())
            .with_replica(ReplicaSpec::instant().with_fault(FaultPlan::none().fail_after(5)))
            .build();
        assert!(fleet.describe().contains("[faulted]"));
    }

    #[test]
    fn homogeneous_constructor_builds_n_sim_replicas() {
        let fleet =
            FleetConfig::homogeneous(presets::tiny_test(), 3, RoutePolicyKind::RoundRobin, 1e6)
                .build();
        assert_eq!(fleet.replica_count(), 3);
        assert_eq!(fleet.policy_name(), "round-robin");
        assert!(fleet.describe().contains("test/tiny"));
    }

    #[test]
    fn concurrent_calls_track_outstanding_peaks() {
        let fleet = Arc::new(
            FleetConfig::new("conc", RoutePolicyKind::LeastOutstanding)
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("ms", 1_000),
                    0,
                    Some(1.0), // 1 ms wall per call
                ))
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("ms", 1_000),
                    0,
                    Some(1.0),
                ))
                .build(),
        );
        // All callers release together, so the 1 ms-wall calls overlap
        // and least-outstanding must spill past replica 0.
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let fleet = Arc::clone(&fleet);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    fleet.call(&req(i));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 8);
        assert!(
            m.all_replicas_served(),
            "least-outstanding must overflow to replica 1 under concurrency: {m:?}"
        );
        assert!(m.replicas.iter().all(|r| r.peak_outstanding >= 1));
    }

    #[test]
    fn token_weighted_steers_around_heavy_inflight_work() {
        use crate::request::Lane;

        // Replica latencies are paced, so a heavy call parks its tokens
        // on a replica long enough for a second caller to observe them.
        let fleet = Arc::new(
            FleetConfig::new("tok", RoutePolicyKind::TokenWeighted)
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("slow", 20_000),
                    0,
                    Some(1.0), // 20 ms wall
                ))
                .with_replica(ReplicaSpec::replay(
                    LatencyProfile::constant("slow", 20_000),
                    0,
                    Some(1.0),
                ))
                .build(),
        );
        // A 5000-token monster goes first (lands on replica 0 by the
        // id tie-break)…
        let heavy = {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || {
                fleet.call(&LlmRequest::new(
                    RequestId(1),
                    0,
                    0,
                    4_900,
                    100,
                    CallKind::Converse,
                ));
            })
        };
        // Wait (bounded) until the heavy call's tokens are actually
        // registered on a replica — no sleep-based race with the spawned
        // thread's scheduling.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while fleet.views().iter().all(|v| v.outstanding_tokens == 0) {
            assert!(
                std::time::Instant::now() < deadline,
                "heavy call never registered its tokens"
            );
            std::thread::yield_now();
        }
        // …so a light call issued while it is in flight must route to
        // replica 1 even though both have one call outstanding — count
        // alone cannot distinguish them, tokens can.
        fleet.call(&LlmRequest::new(
            RequestId(2),
            1,
            0,
            40,
            8,
            CallKind::Perceive,
        ));
        heavy.join().unwrap();
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 2);
        assert_eq!(
            m.replicas[1].served, 1,
            "light call must avoid the token-heavy replica: {m:?}"
        );
        // Once drained, the outstanding-token estimate returns to zero.
        let views: Vec<_> = fleet.views();
        assert!(views.iter().all(|v| v.outstanding_tokens == 0), "{views:?}");
        let _ = Lane::Background;
    }

    #[test]
    fn fail_after_sheds_load_and_serves_everything() {
        // Replica 0 dies after 3 attempts; every call must still be
        // answered, with the failure absorbed by one retry and all later
        // traffic shed to replica 1.
        let fleet = FleetConfig::new("shed", RoutePolicyKind::RoundRobin)
            .with_replica(ReplicaSpec::instant().with_fault(FaultPlan::none().fail_after(3)))
            .with_replica(ReplicaSpec::instant())
            .build();
        for i in 0..12 {
            let r = fleet.call(&req(i));
            assert_eq!(r.output_tokens, 2);
        }
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 12, "{m:?}");
        assert_eq!(m.replicas[0].served, 3, "exactly 3 attempts succeed");
        assert_eq!(m.replicas[0].failed, 1, "one attempt hit the failure");
        assert!(m.replicas[0].down);
        assert_eq!(m.replicas[1].served, 9, "the healthy replica absorbs");
        assert!(!m.replicas[1].down);
        assert_eq!(m.total_failed(), 1);
    }

    #[test]
    fn transient_unavailability_recovers() {
        // Replica 0 refuses during the first 4 fleet ticks, then comes
        // back; no attempt on it fails because routing sheds proactively
        // (its window is advertised via the availability view).
        let fleet = FleetConfig::new("transient", RoutePolicyKind::RoundRobin)
            .with_replica(
                ReplicaSpec::instant().with_fault(FaultPlan::none().unavailable_between(0, 4)),
            )
            .with_replica(ReplicaSpec::instant())
            .build();
        for i in 0..12 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 12);
        assert_eq!(m.replicas[0].failed, 0, "shedding is proactive: {m:?}");
        assert!(
            m.replicas[0].served > 0,
            "the replica must recover after the window: {m:?}"
        );
        assert!(m.replicas[1].served >= 4, "{m:?}");
        assert!(!m.replicas[0].down);
    }

    #[test]
    fn latency_spike_shows_up_in_p99() {
        let fleet = FleetConfig::new("spiky", RoutePolicyKind::RoundRobin)
            .with_replica(
                ReplicaSpec::instant().with_fault(FaultPlan::none().spike_between(0, 5, 3_000)),
            )
            .build();
        for i in 0..20 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert_eq!(m.total_served(), 20);
        assert!(
            m.replicas[0].p99_us >= 3_000,
            "p99 must surface the spiked calls: {}",
            m.replicas[0].p99_us
        );
        assert_eq!(m.max_p99_us(), m.replicas[0].p99_us);
    }

    #[test]
    fn hedging_escapes_a_slow_primary() {
        // Primary (replica 0 by least-outstanding tie-break) takes 200 ms
        // wall; with a 5 ms hedge threshold the backup on the instant
        // replica must answer far sooner.
        let fleet = FleetConfig::new("hedge", RoutePolicyKind::LeastOutstanding)
            .with_replica(ReplicaSpec::replay(
                LatencyProfile::constant("slow", 200_000),
                0,
                Some(1.0),
            ))
            .with_replica(ReplicaSpec::instant())
            .with_hedging(Duration::from_millis(5))
            .build();
        let started = Instant::now();
        let r = fleet.call(&req(1));
        let elapsed = started.elapsed();
        assert_eq!(r.output_tokens, 2);
        assert!(
            elapsed < Duration::from_millis(150),
            "hedged call took {elapsed:?}, expected well under the 200 ms primary"
        );
        let m = fleet.metrics();
        assert_eq!(
            m.replicas[1].hedged, 1,
            "the backup must land on the other replica: {m:?}"
        );
        assert!(m.replicas[1].served >= 1);
    }

    #[test]
    fn hedge_refused_by_first_pick_lands_on_the_serving_replica() {
        // Regression: the hedge counter used to be bumped on the backup's
        // *first-picked* replica even when that replica's fault gate
        // refused the attempt and the retry loop served it elsewhere.
        //
        // Primary = replica 0 (slow, least-outstanding tie-break). The
        // backup excludes it, first-picks replica 1 — which fails on its
        // very first attempt — and must be attributed to replica 2, the
        // one that actually serves it.
        let fleet = FleetConfig::new("hedge-attr", RoutePolicyKind::LeastOutstanding)
            .with_replica(ReplicaSpec::replay(
                LatencyProfile::constant("slow", 200_000),
                0,
                Some(1.0),
            ))
            .with_replica(ReplicaSpec::instant().with_fault(FaultPlan::none().fail_after(0)))
            .with_replica(ReplicaSpec::instant())
            .with_hedging(Duration::from_millis(5))
            .build();
        let r = fleet.call(&req(1));
        assert_eq!(r.output_tokens, 2);
        let m = fleet.metrics();
        assert!(m.replicas[1].down, "first pick must have failed: {m:?}");
        assert_eq!(m.replicas[1].served, 0);
        assert_eq!(
            m.replicas[1].hedged, 0,
            "a refused first pick never served the hedge: {m:?}"
        );
        assert_eq!(
            m.replicas[2].hedged, 1,
            "the hedge belongs to the replica that served it: {m:?}"
        );
        assert_eq!(m.replicas[2].served, 1);
    }

    #[test]
    fn scaled_backoff_compresses_sweep_sleeps_for_paced_fleets() {
        // Regression: the all-refused sweep used to sleep the raw
        // BACKOFF_START..BACKOFF_CAP schedule even when every replica is
        // a sped-up simulation. Fault windows are tick-indexed, so the
        // compressed sleep refuses exactly the same attempts — only the
        // wall clock differs.
        let fleet = FleetConfig::new("paced", RoutePolicyKind::RoundRobin)
            .with_replica(
                ReplicaSpec::replay(LatencyProfile::constant("fast", 1_000), 0, Some(1_000.0))
                    .with_fault(FaultPlan::none().unavailable_between(0, 40)),
            )
            .build();
        assert_eq!(fleet.backoff_divisor(), 1_000.0);
        assert_eq!(LlmBackend::time_scale(&fleet), Some(1_000.0));
        let started = Instant::now();
        let r = fleet.call(&req(1));
        let elapsed = started.elapsed();
        assert_eq!(r.output_tokens, 2);
        // Unscaled, 40 refused sweeps sleep ~170 ms (the schedule caps at
        // 5 ms); at 1000x the total pacing is well under a millisecond.
        assert!(
            elapsed < Duration::from_millis(60),
            "scaled backoff must not sleep at real-deployment pace: {elapsed:?}"
        );
        let m = fleet.metrics();
        assert_eq!(
            m.replicas[0].failed, 40,
            "window length is tick-exact: {m:?}"
        );
        assert!(!m.replicas[0].down);
    }

    #[test]
    fn realtime_fleets_keep_the_unscaled_backoff() {
        let fleet = instant_fleet(2, RoutePolicyKind::RoundRobin);
        assert_eq!(fleet.backoff_divisor(), 1.0);
        assert_eq!(LlmBackend::time_scale(&fleet), None);
    }

    #[test]
    fn hedging_with_failed_replica_sheds_to_survivor() {
        // One replica permanently down + hedging enabled: calls still
        // complete on the survivor (regression guard for the hedge path
        // interacting with the retry loop).
        let fleet = FleetConfig::new("hedge-fault", RoutePolicyKind::LeastOutstanding)
            .with_replica(ReplicaSpec::instant().with_fault(FaultPlan::none().fail_after(0)))
            .with_replica(ReplicaSpec::instant())
            .with_hedging(Duration::from_millis(1))
            .build();
        for i in 0..6 {
            fleet.call(&req(i));
        }
        let m = fleet.metrics();
        assert!(m.replicas[1].served >= 6, "{m:?}");
        assert_eq!(m.replicas[0].served, 0);
        assert!(m.replicas[0].down);
    }

    #[test]
    #[should_panic(expected = "every replica has permanently failed")]
    fn fully_failed_fleet_panics_instead_of_hanging() {
        let fleet = FleetConfig::new("dead", RoutePolicyKind::RoundRobin)
            .with_replica(ReplicaSpec::instant().with_fault(FaultPlan::none().fail_after(0)))
            .build();
        fleet.call(&req(1));
    }

    #[test]
    fn prefix_counters_reward_affinity() {
        // Same agent, repeated calls: prefix-affinity pins the agent's
        // group to one replica, so every call after the first is a hit
        // there — the signal the city-fleet experiment sweeps.
        let fleet = instant_fleet(2, RoutePolicyKind::PrefixAffinity);
        let r = LlmRequest::new(RequestId(1), 42, 0, 200, 4, CallKind::Plan).with_template(1, 100);
        for _ in 0..8 {
            fleet.call(&r);
        }
        let m = fleet.metrics();
        let (active, idle): (Vec<_>, Vec<_>) = m.replicas.iter().partition(|rm| rm.served > 0);
        assert_eq!(active.len(), 1, "affinity must pin the group: {m:?}");
        assert_eq!(active[0].prefix.hits, 7);
        assert_eq!(active[0].prefix.misses, 1);
        assert!(active[0].hit_rate() > 0.8);
        assert_eq!(idle[0].prefix.hits + idle[0].prefix.misses, 0);
        assert!(m.hit_rate() > 0.8);
    }

    #[test]
    fn fleet_metrics_surface_through_backend_trait() {
        let fleet = instant_fleet(2, RoutePolicyKind::RoundRobin);
        fleet.call(&req(1));
        let b: &dyn LlmBackend = &fleet;
        let m = b.fleet_metrics().expect("fleets expose metrics");
        assert_eq!(m.total_served(), 1);
        assert_eq!(
            InstantBackend::new().fleet_metrics(),
            None,
            "plain backends expose no fleet metrics"
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_fleet_rejected() {
        let _ = FleetConfig::new("empty", RoutePolicyKind::RoundRobin).build();
    }
}
