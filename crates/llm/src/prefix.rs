//! Prefix-cache accounting: a bounded LRU of recently served prompt
//! prefixes plus the per-replica hit/miss bookkeeping built on it.
//!
//! The paper benchmarks with SGLang's automatic prefix cache *disabled*
//! for stability, while noting that "enabling the cache generally
//! provides about a 20% throughput gain" (§4.1). Massive-agent cities
//! make that gain *structural*: personas are instantiated from a small
//! template pool, so same-template agents share a long prompt preamble,
//! and an agent's own calls share its persona + accumulated-memory
//! prefix. Modeling the cache explicitly (instead of a flat discount)
//! makes routing experiments honest — a policy only earns a hit rate if
//! it actually lands a request on a replica that still holds the prefix.
//!
//! Two layers:
//!
//! * [`PrefixLru`] — the mechanism: a bounded least-recently-*observed*
//!   map from cache key to the longest prefix (in tokens) resident for
//!   that key. Small enough to sit inside a simulated replica; exact
//!   enough to property-test against a brute-force oracle.
//! * [`PrefixTracker`] — the policy: composes an **agent-keyed** entry
//!   (full prompt prefix: persona + memories) with an optional
//!   **template-keyed** entry (the preamble shared by every instance of
//!   a persona template, capped at the request's declared
//!   `shared_prefix_tokens`), and keeps hit/miss/matched-token counters.
//!
//! A *hit* is counted only when the agent-keyed entry matches — i.e. the
//! replica recently served this very agent, the signal affinity routing
//! tries to maximize. A template match alone still discounts prefill
//! (it contributes matched tokens) but is deliberately not a hit:
//! with a handful of templates the template entries are hot on every
//! replica under any policy, so counting them would saturate the metric
//! and hide what routing actually changed.

use std::collections::{HashMap, VecDeque};

/// Namespace bit distinguishing template-keyed entries from agent-keyed
/// ones inside one [`PrefixLru`] (agent ids are `u32`, so the bit never
/// collides).
const TEMPLATE_NS: u64 = 1 << 63;

/// A bounded least-recently-observed map `key → cached prefix tokens`.
///
/// Semantics of one [`PrefixLru::observe`] call, in order:
///
/// 1. the *matched* prefix is `min(cached, prompt_tokens)` for a
///    resident key, `0` for an absent one;
/// 2. the key's cached length becomes `max(cached, prompt_tokens)` and
///    the key becomes most-recently observed;
/// 3. if the map now exceeds its capacity, the least-recently observed
///    key is evicted. An evicted key can never match again until it is
///    re-observed (step 1 of a later call) — the invariant the
///    `prop_fleet` suite checks against a brute-force oracle.
///
/// Recency is tracked with a lazy-deletion queue (each observation
/// pushes a stamped entry; stale stamps are skipped at eviction time),
/// so `observe` is amortized O(1).
#[derive(Debug, Clone)]
pub struct PrefixLru {
    capacity: usize,
    entries: HashMap<u64, (u32, u64)>,
    recency: VecDeque<(u64, u64)>,
    stamp: u64,
}

impl PrefixLru {
    /// Creates an empty cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefix cache capacity must be positive");
        PrefixLru {
            capacity,
            entries: HashMap::new(),
            recency: VecDeque::new(),
            stamp: 0,
        }
    }

    /// Maximum number of resident keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached prefix length for `key` without touching recency.
    pub fn peek(&self, key: u64) -> Option<u32> {
        self.entries.get(&key).map(|&(tokens, _)| tokens)
    }

    /// Observes a prompt of `prompt_tokens` under `key`; returns the
    /// matched (reusable) prefix length. See the type docs for the
    /// exact match/update/evict order.
    pub fn observe(&mut self, key: u64, prompt_tokens: u32) -> u32 {
        self.stamp += 1;
        let stamp = self.stamp;
        let matched = match self.entries.get_mut(&key) {
            Some(entry) => {
                let matched = entry.0.min(prompt_tokens);
                entry.0 = entry.0.max(prompt_tokens);
                entry.1 = stamp;
                matched
            }
            None => {
                self.entries.insert(key, (prompt_tokens, stamp));
                0
            }
        };
        self.recency.push_back((key, stamp));
        while self.entries.len() > self.capacity {
            let (old_key, old_stamp) = self
                .recency
                .pop_front()
                .expect("over capacity implies queued observations");
            if self
                .entries
                .get(&old_key)
                .is_some_and(|&(_, s)| s == old_stamp)
            {
                self.entries.remove(&old_key);
            }
        }
        // Bound the lazy queue: compact once it is much larger than the
        // live set, so long runs do not accumulate stale stamps.
        if self.recency.len() > self.capacity.saturating_mul(4) + 16 {
            let entries = &self.entries;
            self.recency
                .retain(|&(k, s)| entries.get(&k).is_some_and(|&(_, live)| live == s));
        }
        matched
    }
}

/// Cumulative prefix-cache counters of one replica (engine- or
/// fleet-level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PrefixStats {
    /// Requests whose **agent-keyed** prefix was resident.
    pub hits: u64,
    /// Requests whose agent-keyed prefix was absent (or evicted).
    pub misses: u64,
    /// Total matched prefix tokens (agent or template entries) — the
    /// prefill tokens the replica did not recompute.
    pub matched_tokens: u64,
}

impl PrefixStats {
    /// Hit rate in `[0, 1]` (`0` before any request).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-replica prefix-cache model: a [`PrefixLru`] shared by agent- and
/// template-keyed entries, plus [`PrefixStats`] counters.
#[derive(Debug, Clone)]
pub struct PrefixTracker {
    lru: PrefixLru,
    stats: PrefixStats,
}

impl PrefixTracker {
    /// Creates a tracker over a cache of `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        PrefixTracker {
            lru: PrefixLru::new(capacity),
            stats: PrefixStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> PrefixStats {
        self.stats
    }

    /// Observes one request landing on this replica and returns the
    /// matched prefix length in tokens (how much prefill the replica may
    /// skip).
    ///
    /// `template` and `shared_prefix` come from
    /// [`crate::LlmRequest::template`] /
    /// [`crate::LlmRequest::shared_prefix_tokens`]: every instance of a
    /// persona template shares a preamble of `shared_prefix` tokens, so
    /// a template entry may match even when this agent has never hit
    /// this replica. The returned match never exceeds `input_tokens`.
    pub fn observe(
        &mut self,
        agent: u32,
        template: Option<u32>,
        input_tokens: u32,
        shared_prefix: u32,
    ) -> u32 {
        let agent_matched = self.lru.observe(agent as u64, input_tokens);
        let template_matched = match template {
            Some(t) if shared_prefix > 0 => self
                .lru
                .observe(TEMPLATE_NS | t as u64, shared_prefix.min(input_tokens)),
            _ => 0,
        };
        if agent_matched > 0 {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        let matched = agent_matched.max(template_matched).min(input_tokens);
        self.stats.matched_tokens += matched as u64;
        matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_misses_then_hits() {
        let mut lru = PrefixLru::new(4);
        assert_eq!(lru.observe(7, 100), 0, "cold key cannot match");
        assert_eq!(lru.observe(7, 100), 100);
        assert_eq!(lru.observe(7, 40), 40, "shorter prompt matches fully");
        assert_eq!(lru.observe(7, 200), 100, "cached prefix bounds the match");
        assert_eq!(lru.observe(7, 150), 150, "cache grew to 200");
    }

    #[test]
    fn eviction_is_least_recently_observed() {
        let mut lru = PrefixLru::new(2);
        lru.observe(1, 10);
        lru.observe(2, 20);
        lru.observe(1, 10); // refresh 1: now 2 is the LRU key
        lru.observe(3, 30); // evicts 2
        assert_eq!(lru.peek(2), None, "key 2 must be evicted");
        assert_eq!(lru.observe(1, 10), 10);
        assert_eq!(lru.observe(2, 20), 0, "evicted prefix never matches");
    }

    #[test]
    fn lazy_queue_stays_bounded() {
        let mut lru = PrefixLru::new(8);
        for i in 0..100_000u64 {
            lru.observe(i % 3, 10);
        }
        assert!(lru.recency.len() <= 8 * 4 + 16 + 1, "{}", lru.recency.len());
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn tracker_counts_agent_hits_only() {
        let mut t = PrefixTracker::new(16);
        // Agent 1, template 9: cold — miss, but the template entry seeds.
        assert_eq!(t.observe(1, Some(9), 100, 60), 0);
        // Agent 2, same template: still an agent miss, but the shared
        // preamble matches (and is capped at shared_prefix).
        assert_eq!(t.observe(2, Some(9), 100, 60), 60);
        // Agent 1 again: agent hit, full prompt matched.
        assert_eq!(t.observe(1, Some(9), 100, 60), 100);
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert_eq!(s.matched_tokens, 160);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn untemplated_requests_use_agent_entries_only() {
        let mut t = PrefixTracker::new(16);
        assert_eq!(t.observe(5, None, 80, 0), 0);
        assert_eq!(t.observe(6, None, 80, 0), 0, "no cross-agent sharing");
        assert_eq!(t.observe(5, None, 80, 0), 80);
    }

    #[test]
    fn match_never_exceeds_prompt() {
        let mut t = PrefixTracker::new(16);
        t.observe(1, Some(2), 500, 400);
        assert_eq!(t.observe(3, Some(2), 100, 400), 100, "capped at prompt");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = PrefixLru::new(0);
    }
}
