use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point on the simulator's virtual clock, in integer microseconds.
///
/// All event times in the discrete-event executor and the serving simulator
/// are integer microseconds so that runs are bit-for-bit deterministic;
/// analytical cost models compute in `f64` and round **up** when converting
/// (see [`VirtualTime::from_micros_f64_ceil`]) so durations never collapse
/// to zero.
///
/// # Example
///
/// ```
/// use aim_llm::VirtualTime;
///
/// let t = VirtualTime::from_secs_f64(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!((t + VirtualTime::from_micros(500_000)).as_secs_f64(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The origin of virtual time.
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// The maximum representable virtual time (used as an "infinite" bound).
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Creates a time from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us)
    }

    /// Creates a time from fractional seconds (rounds to nearest µs).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "virtual time must be finite and non-negative"
        );
        VirtualTime((secs * 1e6).round() as u64)
    }

    /// Creates a duration from fractional microseconds, rounding **up** so
    /// that positive costs never become zero-length events.
    pub fn from_micros_f64_ceil(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "virtual duration must be finite and non-negative"
        );
        VirtualTime(us.ceil() as u64)
    }

    /// This time as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two times.
    pub fn max(self, rhs: VirtualTime) -> VirtualTime {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the earlier of two times.
    pub fn min(self, rhs: VirtualTime) -> VirtualTime {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        *self = *self + rhs;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.checked_sub(rhs.0).expect("virtual time underflow"))
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = VirtualTime::from_secs_f64(2.5);
        assert_eq!(t.as_micros(), 2_500_000);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert_eq!(VirtualTime::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn ceil_conversion_never_zero_for_positive() {
        assert_eq!(VirtualTime::from_micros_f64_ceil(0.0001).as_micros(), 1);
        assert_eq!(VirtualTime::from_micros_f64_ceil(0.0).as_micros(), 0);
        assert_eq!(VirtualTime::from_micros_f64_ceil(2.0).as_micros(), 2);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = VirtualTime::from_micros(10);
        let b = VirtualTime::from_micros(3);
        assert_eq!((a + b).as_micros(), 13);
        assert_eq!((a - b).as_micros(), 7);
        assert_eq!(b.saturating_sub(a), VirtualTime::ZERO);
        assert!(b < a);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = VirtualTime::from_micros(1) - VirtualTime::from_micros(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = VirtualTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(VirtualTime::from_micros(1_234_000).to_string(), "1.234s");
    }
}
