//! Calibrated hardware/model presets for the serving simulator.
//!
//! Each preset models **one data-parallel replica** of a deployment from the
//! paper's evaluation (§4.1); tensor parallelism is folded into the cost
//! model, so e.g. a TP-4 Llama-3-70B replica occupies
//! [`Preset::gpus_per_replica`]` = 4` physical GPUs. The numbers are derived
//! from public hardware specs (memory bandwidth for the decode floor, FLOPs
//! at a realistic MFU for prefill) and are intended to reproduce the *shape*
//! of the paper's results — who wins and by what factor — not absolute
//! seconds on the authors' testbed.

use crate::cost::CostModel;

/// A named, calibrated replica configuration.
///
/// Use [`crate::ServerConfig::from_preset`] to instantiate a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Preset {
    /// Identifier such as `"L4/llama3-8b"`.
    pub name: &'static str,
    /// Iteration cost model of one replica.
    pub cost: CostModel,
    /// Maximum concurrently running sequences per replica.
    pub max_running: u32,
    /// Per-replica KV cache capacity in tokens.
    pub kv_capacity_tokens: u64,
    /// Chunked-prefill budget per iteration, tokens.
    pub prefill_chunk: u32,
    /// Physical GPUs consumed by one replica (TP degree).
    pub gpus_per_replica: u32,
}

impl Preset {
    /// Number of replicas a deployment of `gpus` GPUs provides.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is not a positive multiple of
    /// [`Preset::gpus_per_replica`].
    pub fn replicas_for_gpus(&self, gpus: u32) -> u32 {
        assert!(
            gpus > 0 && gpus % self.gpus_per_replica == 0,
            "{} requires a multiple of {} GPUs, got {gpus}",
            self.name,
            self.gpus_per_replica
        );
        gpus / self.gpus_per_replica
    }
}

/// Llama-3-8B-Instruct on one NVIDIA L4 (paper Figs. 4a and 5).
///
/// Calibration: an L4 has ≈300 GB/s of memory bandwidth and ≈121 TFLOPS
/// dense FP16. Streaming 16 GB of FP16 weights gives a ≈53 ms decode floor
/// (≈19 tok/s single-stream). Prefill at ≈50% MFU (60 TFLOPS over
/// 16 GFLOP/token) is ≈3.7k tok/s → 270 µs/token. The decode slope of
/// 1.3 ms/seq saturates the engine near batch 40 (peak ≈770 decode tok/s).
/// 8 GB left for KV at ≈128 KB/token (GQA, 32 layers) ≈ 64k tokens.
pub fn l4_llama3_8b() -> Preset {
    Preset {
        name: "L4/llama3-8b",
        cost: CostModel::new(52_000.0, 270.0, 1_300.0, 500.0),
        max_running: 64,
        kv_capacity_tokens: 64_000,
        prefill_chunk: 2_048,
        gpus_per_replica: 1,
    }
}

/// Llama-3-70B-Instruct, tensor-parallel over four NVIDIA A100-80GB
/// (paper Figs. 4b and 6; 8-GPU points run two of these replicas).
///
/// Calibration: 4×2039 GB/s at ~70% TP efficiency streams the 140 GB of
/// weights in ≈24.5 ms (floor). Prefill: 140 GFLOP/token against
/// 4×312 TFLOPS at ~45% MFU ≈ 4k tok/s → 250 µs/token. Decode slope
/// 390 µs/seq → saturation near batch 63, peak ≈2.6k decode tok/s. KV:
/// 4×80−140 = 180 GB at ≈327 KB/token ≈ 550k tokens. The extra 200 µs of
/// per-iteration overhead models NCCL all-reduce latency.
pub fn a100_tp4_llama3_70b() -> Preset {
    Preset {
        name: "A100-TP4/llama3-70b",
        cost: CostModel::new(24_500.0, 250.0, 390.0, 700.0),
        max_running: 128,
        kv_capacity_tokens: 550_000,
        prefill_chunk: 4_096,
        gpus_per_replica: 4,
    }
}

/// Mixtral-8×7B-Instruct, tensor-parallel over two NVIDIA A100-80GB
/// (paper Fig. 7 runs four such replicas on 8 GPUs — the paper notes the
/// MoE "can leverage higher data parallelism").
///
/// Calibration: 94 GB of weights but only ~13B active parameters per
/// token. Small batches touch a subset of experts, large batches touch
/// most, so we use a 15 ms effective floor over 2×2039 GB/s at ~75%
/// efficiency. Prefill: 26 GFLOP/token at ~45% MFU of 2×312 TFLOPS ≈
/// 10.5k tok/s → 95 µs/token. Decode slope 290 µs/seq → saturation ≈52,
/// peak ≈3.4k tok/s. KV (GQA, 32 layers ≈128 KB/token) from the ≈66 GB
/// headroom ≈ 400k tokens.
pub fn a100_tp2_mixtral_8x7b() -> Preset {
    Preset {
        name: "A100-TP2/mixtral-8x7b",
        cost: CostModel::new(15_000.0, 95.0, 290.0, 600.0),
        max_running: 128,
        kv_capacity_tokens: 400_000,
        prefill_chunk: 4_096,
        gpus_per_replica: 2,
    }
}

/// One L4 configured as a *game server* for hybrid interactive
/// deployments (paper §6): identical silicon to [`l4_llama3_8b`], but the
/// running batch is capped at 12 sequences so a decode iteration never
/// exceeds ≈68 ms — bounding per-token latency for player-facing traffic
/// at the price of background throughput. (Production serving engines
/// expose exactly this knob, e.g. `max_num_seqs`.) KV is sized to match
/// the smaller batch.
pub fn l4_game_server() -> Preset {
    Preset {
        name: "L4/llama3-8b-game",
        cost: CostModel::new(52_000.0, 270.0, 1_300.0, 500.0),
        max_running: 12,
        kv_capacity_tokens: 24_000,
        prefill_chunk: 2_048,
        gpus_per_replica: 1,
    }
}

/// A deliberately fast, tiny preset for unit tests and examples: floor
/// 1 ms, saturation batch 10. Not calibrated to any hardware.
pub fn tiny_test() -> Preset {
    Preset {
        name: "test/tiny",
        cost: CostModel::new(1_000.0, 10.0, 100.0, 0.0),
        max_running: 16,
        kv_capacity_tokens: 1_000_000,
        prefill_chunk: 512,
        gpus_per_replica: 1,
    }
}

/// All calibrated presets (excludes [`tiny_test`]).
pub fn all() -> Vec<Preset> {
    vec![
        l4_llama3_8b(),
        a100_tp4_llama3_70b(),
        a100_tp2_mixtral_8x7b(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_math() {
        assert_eq!(l4_llama3_8b().replicas_for_gpus(8), 8);
        assert_eq!(a100_tp4_llama3_70b().replicas_for_gpus(8), 2);
        assert_eq!(a100_tp2_mixtral_8x7b().replicas_for_gpus(8), 4);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn invalid_gpu_count_rejected() {
        a100_tp4_llama3_70b().replicas_for_gpus(6);
    }

    #[test]
    fn presets_have_sane_saturation() {
        for p in all() {
            let sat = p.cost.saturation_batch();
            assert!(
                (8..=256).contains(&sat),
                "{}: saturation batch {sat} outside plausible serving range",
                p.name
            );
            assert!(
                p.max_running >= sat / 2,
                "{}: max_running below saturation",
                p.name
            );
        }
    }

    #[test]
    fn mixtral_outpaces_dense_70b() {
        // The paper attributes Mixtral's higher speedups to its lighter
        // compute; per-replica peak decode throughput must reflect that.
        let mixtral = a100_tp2_mixtral_8x7b().cost.peak_decode_tok_per_s();
        let dense = a100_tp4_llama3_70b().cost.peak_decode_tok_per_s();
        assert!(mixtral > dense);
    }

    #[test]
    fn workload_request_cost_sanity() {
        // The paper's mean request is 642.6 input / 21.9 output tokens.
        // On the L4 preset that should cost a few hundred ms of GPU time —
        // the regime where one full day (~56.7k calls) takes hours on one
        // GPU, as in Fig. 4a.
        let p = l4_llama3_8b();
        let t = p.cost.isolated_latency(643, 22, p.prefill_chunk);
        let secs = t.as_secs_f64();
        assert!(
            (0.1..3.0).contains(&secs),
            "per-request latency {secs}s implausible"
        );
    }
}
