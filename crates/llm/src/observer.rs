//! Call-attempt observation: the hook a telemetry layer uses to watch
//! fleet traffic without this crate depending on it.
//!
//! `aim-llm` sits *below* the engine crates in the dependency order, so
//! the fleet cannot record into `aim-core`'s telemetry buffers directly.
//! Instead it exposes [`CallObserver`]: the engine installs an observer
//! via [`crate::LlmBackend::install_observer`], and the fleet reports
//! every *claimed attempt* — primaries, retries after a refusal, and
//! hedge backups alike — as a begin/end pair. The observer sees attempts
//! at the same granularity the fault gate does, so refused attempts
//! (which never reach a backend) are visible too.

use crate::request::LlmRequest;

/// How one claimed fleet attempt resolved (the observer-facing mirror of
/// [`crate::FaultOutcome`], after the backend ran).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AttemptOutcome {
    /// The backend ran and returned a response.
    Served,
    /// The fault gate failed the attempt permanently (replica down).
    Failed,
    /// The fault gate refused the attempt transiently (retry elsewhere).
    Refused,
}

impl AttemptOutcome {
    /// Stable lowercase name (used by telemetry exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            AttemptOutcome::Served => "served",
            AttemptOutcome::Failed => "failed",
            AttemptOutcome::Refused => "refused",
        }
    }
}

/// Observes every attempt a [`crate::Fleet`] claims against a replica.
///
/// `begin_attempt` runs *before* the fault gate and returns an opaque
/// token (typically a timestamp on the observer's own clock); the same
/// token comes back in `end_attempt` once the attempt resolves. Both
/// hooks run on the calling worker thread — or on a detached hedge
/// thread, possibly *after* the run that issued the call has finished —
/// so implementations must be lock-free or nearly so, and must tolerate
/// late calls.
pub trait CallObserver: Send + Sync {
    /// An attempt on `replica` was claimed for `req`; `hedge` marks
    /// attempts made on behalf of a hedge backup. Returns a token passed
    /// back to [`CallObserver::end_attempt`].
    fn begin_attempt(&self, req: &LlmRequest, replica: u32, hedge: bool) -> u64;

    /// The attempt begun with `token` resolved with `outcome`.
    fn end_attempt(
        &self,
        token: u64,
        req: &LlmRequest,
        replica: u32,
        hedge: bool,
        outcome: AttemptOutcome,
    );
}
