use serde::{Deserialize, Serialize};

use crate::time::VirtualTime;

/// Analytical per-iteration cost model of one serving replica.
///
/// The model captures the two regimes that matter for batching studies:
///
/// * **memory-bound decode** — every iteration must stream the model
///   weights, so there is a latency *floor* ([`CostModel::iter_floor_us`])
///   that is paid regardless of batch size. Small batches therefore get
///   nearly "free" extra sequences, which is precisely the headroom the AI
///   Metropolis scheduler exploits by raising concurrency.
/// * **compute-bound work** — prefill tokens and (at large batch) decode
///   sequences scale linearly
///   ([`CostModel::prefill_us_per_token`], [`CostModel::decode_us_per_seq`]).
///
/// One iteration that prefills `p` tokens and decodes `d` sequences takes
///
/// ```text
/// t = iter_overhead_us + max(iter_floor_us,
///                            p · prefill_us_per_token + d · decode_us_per_seq)
/// ```
///
/// # Example
///
/// ```
/// use aim_llm::CostModel;
///
/// let m = CostModel::new(50_000.0, 270.0, 1_200.0, 500.0);
/// // Below the floor: 8 decode sequences still cost one floor iteration.
/// assert_eq!(m.iter_time(0, 8).as_micros(), 50_500);
/// // Saturation: beyond ~41 sequences the batch is compute-bound.
/// assert_eq!(m.saturation_batch(), 41);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Iteration latency floor in µs (weight streaming / kernel launch).
    pub iter_floor_us: f64,
    /// Marginal cost of one prefill token, µs.
    pub prefill_us_per_token: f64,
    /// Marginal cost of one decoding sequence per iteration, µs.
    pub decode_us_per_seq: f64,
    /// Fixed scheduling overhead per iteration, µs.
    pub iter_overhead_us: f64,
}

impl CostModel {
    /// Creates a cost model; all parameters in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or not finite, or if
    /// `decode_us_per_seq` is zero (the saturation batch would diverge).
    pub fn new(
        iter_floor_us: f64,
        prefill_us_per_token: f64,
        decode_us_per_seq: f64,
        iter_overhead_us: f64,
    ) -> Self {
        for (name, v) in [
            ("iter_floor_us", iter_floor_us),
            ("prefill_us_per_token", prefill_us_per_token),
            ("decode_us_per_seq", decode_us_per_seq),
            ("iter_overhead_us", iter_overhead_us),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and non-negative, got {v}"
            );
        }
        assert!(
            decode_us_per_seq > 0.0,
            "decode_us_per_seq must be positive"
        );
        CostModel {
            iter_floor_us,
            prefill_us_per_token,
            decode_us_per_seq,
            iter_overhead_us,
        }
    }

    /// Duration of one iteration prefilling `prefill_tokens` and decoding
    /// `decode_seqs` sequences.
    pub fn iter_time(&self, prefill_tokens: u32, decode_seqs: u32) -> VirtualTime {
        let work = prefill_tokens as f64 * self.prefill_us_per_token
            + decode_seqs as f64 * self.decode_us_per_seq;
        VirtualTime::from_micros_f64_ceil(self.iter_overhead_us + work.max(self.iter_floor_us))
    }

    /// Batch size at which decode transitions from memory- to compute-bound
    /// (`floor / decode_us_per_seq`, at least 1).
    pub fn saturation_batch(&self) -> u32 {
        ((self.iter_floor_us / self.decode_us_per_seq).floor() as u32).max(1)
    }

    /// Peak decode throughput in tokens/second, reached at or beyond the
    /// saturation batch.
    pub fn peak_decode_tok_per_s(&self) -> f64 {
        1e6 / self.decode_us_per_seq
    }

    /// Peak prefill throughput in tokens/second.
    pub fn peak_prefill_tok_per_s(&self) -> f64 {
        1e6 / self.prefill_us_per_token
    }

    /// Latency of a request run **alone** on an idle replica: chunked
    /// prefill followed by one iteration per output token. This is the
    /// building block of the paper's `critical` lower bound (§4.2), which
    /// charges each call its unloaded latency.
    pub fn isolated_latency(
        &self,
        input_tokens: u32,
        output_tokens: u32,
        chunk: u32,
    ) -> VirtualTime {
        let chunk = chunk.max(1);
        let mut t = VirtualTime::ZERO;
        let mut remaining = input_tokens;
        while remaining > 0 {
            let now = remaining.min(chunk);
            t += self.iter_time(now, 0);
            remaining -= now;
        }
        for _ in 0..output_tokens.max(1) {
            t += self.iter_time(0, 1);
        }
        t
    }

    /// Aggregate decode throughput (tokens/s) at a given running batch size
    /// — useful for plotting the concavity the scheduler exploits.
    pub fn decode_throughput_at(&self, batch: u32) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let t = self.iter_time(0, batch);
        batch as f64 / (t.as_micros() as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(50_000.0, 270.0, 1_200.0, 500.0)
    }

    #[test]
    fn floor_dominates_small_batches() {
        let m = model();
        assert_eq!(m.iter_time(0, 1), m.iter_time(0, 10));
        assert!(m.iter_time(0, 100) > m.iter_time(0, 10));
    }

    #[test]
    fn prefill_scales_linearly_above_floor() {
        let m = model();
        let t1 = m.iter_time(1000, 0).as_micros() as f64;
        let t2 = m.iter_time(2000, 0).as_micros() as f64;
        // 1000 * 270 = 270k > floor, so doubling tokens roughly doubles work.
        assert!((t2 - 500.0) / (t1 - 500.0) > 1.9);
    }

    #[test]
    fn throughput_is_concave_and_saturates() {
        let m = model();
        let t1 = m.decode_throughput_at(1);
        let t8 = m.decode_throughput_at(8);
        let sat = m.saturation_batch();
        let tsat = m.decode_throughput_at(sat);
        let t4x = m.decode_throughput_at(sat * 4);
        assert!(
            t8 > 7.0 * t1,
            "below saturation extra sequences are nearly free"
        );
        assert!(tsat > t8);
        // Beyond saturation throughput stops growing meaningfully (within 10%).
        assert!(t4x < tsat * 1.10);
        assert!((m.peak_decode_tok_per_s() - 1e6 / 1200.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_latency_components() {
        let m = model();
        // 600 input tokens in one 512 + one 88 chunk, 2 output tokens.
        let t = m.isolated_latency(600, 2, 512);
        let prefill1 = m.iter_time(512, 0);
        let prefill2 = m.iter_time(88, 0);
        let decode = m.iter_time(0, 1);
        assert_eq!(t, prefill1 + prefill2 + decode + decode);
    }

    #[test]
    fn isolated_latency_zero_output_counts_one_iteration() {
        let m = model();
        assert_eq!(m.isolated_latency(0, 0, 512), m.iter_time(0, 1));
    }

    #[test]
    #[should_panic(expected = "decode_us_per_seq must be positive")]
    fn zero_decode_cost_rejected() {
        let _ = CostModel::new(1.0, 1.0, 0.0, 0.0);
    }

    #[test]
    fn saturation_batch_at_least_one() {
        let m = CostModel::new(1.0, 1.0, 100.0, 0.0);
        assert_eq!(m.saturation_batch(), 1);
    }
}
