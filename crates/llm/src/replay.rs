//! Latency-replay serving: a backend that answers calls with latencies
//! drawn from a **recorded distribution** instead of a simulated engine.
//!
//! The paper closes by releasing its collected traces as a serving
//! benchmark (§1); this module is the consuming side of that loop. A
//! [`LatencyProfile`] holds per-[`CallKind`] service-latency samples —
//! mined from a real deployment's logs or exported by `trace_tool
//! latency` from a [`crate::SimServer`] replay — and [`ReplayBackend`]
//! serves every call by sampling that empirical distribution. Unlike
//! [`crate::SimServer`] it carries no queueing model: it replays what a
//! deployment *measured*, which makes it the right replica type for
//! calibrating a fleet against production numbers, and a deterministic,
//! dependency-free stand-in for a real engine.
//!
//! Sampling is keyed on the request identity, not on call order, so a
//! profile + seed fully determine every request's latency no matter how
//! worker threads interleave — the property the equivalence tests rely on.

use std::fmt;
use std::io::{BufRead, Error, ErrorKind, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::backend::LlmBackend;
use crate::request::{CallKind, LlmRequest, LlmResponse};

const MAGIC: &str = "AIMLAT v1";

/// An empirical service-latency distribution, bucketed per [`CallKind`].
///
/// Kinds with no samples of their own fall back to the pooled
/// distribution across all kinds; a completely empty profile samples 0 µs
/// (instant) — useful as a neutral element but usually a sign the export
/// step was skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyProfile {
    name: String,
    /// Samples in µs, indexed by [`CallKind::index`], insertion-ordered.
    samples: Vec<Vec<u64>>,
}

impl LatencyProfile {
    /// Creates an empty profile.
    pub fn new(name: impl Into<String>) -> Self {
        LatencyProfile {
            name: name.into(),
            samples: vec![Vec::new(); CallKind::ALL.len()],
        }
    }

    /// Creates a profile where every kind shares one latency — handy for
    /// tests and doctests.
    pub fn constant(name: impl Into<String>, latency_us: u64) -> Self {
        let mut p = LatencyProfile::new(name);
        for kind in CallKind::ALL {
            p.push(kind, latency_us);
        }
        p
    }

    /// Profile name (for logs and [`LlmBackend::describe`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one observed latency for `kind`, in µs.
    pub fn push(&mut self, kind: CallKind, latency_us: u64) {
        self.samples[kind.index()].push(latency_us);
    }

    /// Total recorded samples across all kinds.
    pub fn len(&self) -> usize {
        self.samples.iter().map(Vec::len).sum()
    }

    /// Whether the profile holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw samples recorded for `kind` (no pooled fallback).
    pub fn samples_for(&self, kind: CallKind) -> &[u64] {
        &self.samples[kind.index()]
    }

    /// Mean latency over every sample, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.samples.iter().flatten().sum();
        sum as f64 / self.len() as f64
    }

    /// Draws one latency for `kind` using `draw` as the randomness source
    /// (same `draw` → same latency, always).
    pub fn sample(&self, kind: CallKind, draw: u64) -> u64 {
        let own = &self.samples[kind.index()];
        if !own.is_empty() {
            return own[(draw % own.len() as u64) as usize];
        }
        let total = self.len() as u64;
        if total == 0 {
            return 0;
        }
        let mut idx = draw % total;
        for bucket in &self.samples {
            if (idx as usize) < bucket.len() {
                return bucket[idx as usize];
            }
            idx -= bucket.len() as u64;
        }
        unreachable!("index within total sample count")
    }

    /// Serializes the profile as `AIMLAT v1` text (one `L <kind> <µs>`
    /// line per sample — the same pager-friendly style as the trace
    /// format).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), Error> {
        writeln!(w, "{MAGIC}")?;
        // The name is the rest of the line, verbatim; only line breaks
        // (which would corrupt the record framing) are replaced.
        writeln!(w, "N {}", self.name.replace(['\n', '\r'], " "))?;
        for kind in CallKind::ALL {
            for us in &self.samples[kind.index()] {
                writeln!(w, "L {kind} {us}")?;
            }
        }
        Ok(())
    }

    /// Deserializes a profile written by [`LatencyProfile::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::InvalidData`] on malformed input and
    /// propagates read failures.
    pub fn read_from(r: &mut impl BufRead) -> Result<Self, Error> {
        let bad = |line_no: usize, msg: &str| {
            Error::new(ErrorKind::InvalidData, format!("line {line_no}: {msg}"))
        };
        let mut lines = r.lines().enumerate();
        let (_, first) = lines.next().ok_or_else(|| bad(1, "empty file"))?;
        if first?.trim() != MAGIC {
            return Err(bad(1, "bad magic (expected AIMLAT v1)"));
        }
        let mut profile = LatencyProfile::new("");
        for (no, line) in lines {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('N') {
                if rest.is_empty() || rest.starts_with(' ') {
                    profile.name = rest.trim().to_string();
                    continue;
                }
            }
            let mut f = line.split_ascii_whitespace();
            match f.next().expect("nonempty line has a tag") {
                "L" => {
                    let kind = f
                        .next()
                        .and_then(CallKind::from_str_opt)
                        .ok_or_else(|| bad(no + 1, "missing or unknown kind"))?;
                    let us: u64 = f
                        .next()
                        .ok_or_else(|| bad(no + 1, "missing latency"))?
                        .parse()
                        .map_err(|_| bad(no + 1, "bad latency"))?;
                    profile.push(kind, us);
                }
                _ => return Err(bad(no + 1, "unknown record tag")),
            }
        }
        Ok(profile)
    }

    /// Writes the profile to a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), Error> {
        let file = std::fs::File::create(path)?;
        self.write_to(&mut std::io::BufWriter::new(file))
    }

    /// Reads a profile from a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, Error> {
        let file = std::fs::File::open(path)?;
        Self::read_from(&mut std::io::BufReader::new(file))
    }
}

/// SplitMix64 — tiny, seedable, and good enough to decorrelate draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An [`LlmBackend`] that serves calls with latencies replayed from a
/// [`LatencyProfile`].
///
/// Each call's latency is drawn deterministically from
/// `(seed, request id, agent, step)`, then — when the backend is *paced* —
/// slept out at `time_scale` virtual µs per wall-clock µs, exactly like
/// [`crate::RealtimeSimBackend`] paces the simulated engine. An *unpaced*
/// backend returns immediately (latency accounting still runs), which is
/// what scheduler tests want.
///
/// # Example
///
/// ```
/// use aim_llm::{CallKind, LatencyProfile, LlmBackend, LlmRequest, ReplayBackend, RequestId};
///
/// let mut profile = LatencyProfile::new("prod-l4");
/// profile.push(CallKind::Plan, 180_000);
/// profile.push(CallKind::Plan, 210_000);
/// let backend = ReplayBackend::unpaced(profile, 7);
/// let req = LlmRequest::new(RequestId(0), 3, 5, 640, 22, CallKind::Plan);
/// let lat = backend.planned_latency_us(&req);
/// assert!(lat == 180_000 || lat == 210_000);
/// assert_eq!(lat, backend.planned_latency_us(&req), "same request, same draw");
/// backend.call(&req);
/// assert_eq!(backend.metrics().calls, 1);
/// ```
pub struct ReplayBackend {
    profile: LatencyProfile,
    seed: u64,
    /// Virtual µs replayed per wall-clock µs; `None` = never sleep.
    time_scale: Option<f64>,
    calls: AtomicU64,
    replayed_us: AtomicU64,
}

impl fmt::Debug for ReplayBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayBackend")
            .field("profile", &self.profile.name)
            .field("samples", &self.profile.len())
            .field("seed", &self.seed)
            .field("time_scale", &self.time_scale)
            .finish()
    }
}

/// Cumulative counters of a [`ReplayBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ReplayMetrics {
    /// Calls served.
    pub calls: u64,
    /// Sum of replayed (virtual) latencies, µs.
    pub replayed_us: u64,
}

impl ReplayBackend {
    /// Creates a paced backend replaying `time_scale` virtual µs per
    /// wall-clock µs (e.g. `1000.0` replays a 200 ms latency as a 200 µs
    /// sleep).
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not finite and positive.
    pub fn new(profile: LatencyProfile, seed: u64, time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time_scale must be positive"
        );
        ReplayBackend {
            profile,
            seed,
            time_scale: Some(time_scale),
            calls: AtomicU64::new(0),
            replayed_us: AtomicU64::new(0),
        }
    }

    /// Creates a backend that accounts latencies but never sleeps.
    pub fn unpaced(profile: LatencyProfile, seed: u64) -> Self {
        ReplayBackend {
            profile,
            seed,
            time_scale: None,
            calls: AtomicU64::new(0),
            replayed_us: AtomicU64::new(0),
        }
    }

    /// The profile this backend replays.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    /// The latency (µs) this backend will replay for `req` — a pure
    /// function of the profile, the seed, and the request identity.
    pub fn planned_latency_us(&self, req: &LlmRequest) -> u64 {
        // Chained (not XORed) mixes: XOR of two symmetric splitmix
        // outputs would collide for id/step-swapped requests.
        let key = splitmix64(
            splitmix64(self.seed ^ req.id.0) ^ ((req.agent as u64) << 32 | req.step & 0xffff_ffff),
        );
        self.profile.sample(req.kind, key)
    }

    /// Counters so far.
    pub fn metrics(&self) -> ReplayMetrics {
        ReplayMetrics {
            calls: self.calls.load(Ordering::Relaxed),
            replayed_us: self.replayed_us.load(Ordering::Relaxed),
        }
    }
}

impl LlmBackend for ReplayBackend {
    fn call(&self, req: &LlmRequest) -> LlmResponse {
        let latency_us = self.planned_latency_us(req);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.replayed_us.fetch_add(latency_us, Ordering::Relaxed);
        if let Some(scale) = self.time_scale {
            let wall = Duration::from_secs_f64(latency_us as f64 / 1e6 / scale);
            if !wall.is_zero() {
                std::thread::sleep(wall);
            }
        }
        LlmResponse {
            id: req.id,
            output_tokens: req.output_tokens,
        }
    }

    fn describe(&self) -> String {
        match self.time_scale {
            Some(scale) => format!(
                "replay({}, {} samples, seed {}, {scale}x)",
                self.profile.name,
                self.profile.len(),
                self.seed
            ),
            None => format!(
                "replay({}, {} samples, seed {}, unpaced)",
                self.profile.name,
                self.profile.len(),
                self.seed
            ),
        }
    }

    fn time_scale(&self) -> Option<f64> {
        self.time_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;

    fn profile() -> LatencyProfile {
        let mut p = LatencyProfile::new("unit test");
        p.push(CallKind::Plan, 100);
        p.push(CallKind::Plan, 200);
        p.push(CallKind::Converse, 50);
        p
    }

    fn req(id: u64, kind: CallKind) -> LlmRequest {
        LlmRequest::new(RequestId(id), id as u32, id, 10, 3, kind)
    }

    #[test]
    fn profile_roundtrips_through_codec() {
        let p = profile();
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("AIMLAT v1\nN unit test\n"));
        assert!(text.contains("L plan 100"));
        let back = LatencyProfile::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(p, back, "name and samples survive the roundtrip");
    }

    #[test]
    fn awkward_names_roundtrip_verbatim() {
        // Underscores, spaces, and '@' must survive; line breaks are the
        // one thing sanitized (they would corrupt the record framing).
        for name in ["prod_l4", "day @ 2xtest/tiny", "", "  padded  "] {
            let p = LatencyProfile::constant(name, 7);
            let mut buf = Vec::new();
            p.write_to(&mut buf).unwrap();
            let back = LatencyProfile::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
            assert_eq!(back.name(), name.trim(), "name {name:?} mangled");
        }
        let p = LatencyProfile::constant("two\nlines", 7);
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        let back = LatencyProfile::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.name(), "two lines");
    }

    #[test]
    fn profile_file_roundtrip() {
        let p = profile();
        let dir = std::env::temp_dir().join("aim-llm-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.lat");
        p.save(&path).unwrap();
        assert_eq!(LatencyProfile::load(&path).unwrap(), p);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_profiles_are_rejected_with_location() {
        for (text, needle) in [
            ("nope\n", "bad magic"),
            ("AIMLAT v1\nL plan ten\n", "line 2"),
            ("AIMLAT v1\nL warp 10\n", "unknown kind"),
            ("AIMLAT v1\nX 1\n", "unknown record"),
        ] {
            let err = LatencyProfile::read_from(&mut std::io::Cursor::new(text)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::InvalidData);
            assert!(
                err.to_string().contains(needle),
                "{text:?} should mention {needle}, got: {err}"
            );
        }
    }

    #[test]
    fn sampling_uses_kind_bucket_with_pooled_fallback() {
        let p = profile();
        for draw in 0..16 {
            assert!([100, 200].contains(&p.sample(CallKind::Plan, draw)));
            // No Reflect samples: falls back to the pooled distribution.
            assert!([50, 100, 200].contains(&p.sample(CallKind::Reflect, draw)));
        }
        assert_eq!(LatencyProfile::new("empty").sample(CallKind::Plan, 9), 0);
    }

    #[test]
    fn constant_profile_covers_every_kind() {
        let p = LatencyProfile::constant("c", 42);
        for kind in CallKind::ALL {
            assert_eq!(p.sample(kind, 1234), 42);
        }
        assert_eq!(p.mean_us(), 42.0);
    }

    #[test]
    fn latency_is_deterministic_and_request_keyed() {
        let a = ReplayBackend::unpaced(profile(), 99);
        let b = ReplayBackend::unpaced(profile(), 99);
        for i in 0..64 {
            let r = req(i, CallKind::Plan);
            assert_eq!(a.planned_latency_us(&r), b.planned_latency_us(&r));
        }
        // A different seed must actually change some draws.
        let c = ReplayBackend::unpaced(profile(), 100);
        assert!(
            (0..64).any(|i| {
                let r = req(i, CallKind::Plan);
                a.planned_latency_us(&r) != c.planned_latency_us(&r)
            }),
            "seed must influence sampling"
        );
    }

    #[test]
    fn id_step_swapped_requests_do_not_collide() {
        // Regression: a symmetric (XOR-combined) key made (id=a, step=b)
        // and (id=b, step=a) replay identical latencies for agent 0.
        let mut p = LatencyProfile::new("wide");
        for i in 0..64 {
            p.push(CallKind::Plan, 1_000 + i);
        }
        let b = ReplayBackend::unpaced(p, 12345);
        let differs = (0..32u64).any(|i| {
            let x = LlmRequest::new(RequestId(i), 0, i + 1, 10, 2, CallKind::Plan);
            let y = LlmRequest::new(RequestId(i + 1), 0, i, 10, 2, CallKind::Plan);
            b.planned_latency_us(&x) != b.planned_latency_us(&y)
        });
        assert!(differs, "swapped id/step pairs must not always collide");
    }

    #[test]
    fn call_accounts_metrics() {
        let b = ReplayBackend::unpaced(profile(), 1);
        let mut expected = 0;
        for i in 0..10 {
            let r = req(i, CallKind::Converse);
            expected += b.planned_latency_us(&r);
            let resp = b.call(&r);
            assert_eq!(resp.output_tokens, 3);
        }
        let m = b.metrics();
        assert_eq!(m.calls, 10);
        assert_eq!(m.replayed_us, expected);
    }

    #[test]
    fn paced_backend_sleeps_scaled() {
        let b = ReplayBackend::new(LatencyProfile::constant("slow", 100_000), 0, 1_000.0);
        let start = std::time::Instant::now();
        b.call(&req(0, CallKind::Plan));
        let wall = start.elapsed();
        // 100 ms virtual at 1000x ≈ 100 µs wall; allow generous slack.
        assert!(wall >= Duration::from_micros(100), "must pace: {wall:?}");
        assert!(wall < Duration::from_millis(100), "must scale: {wall:?}");
    }

    #[test]
    fn describe_distinguishes_pacing() {
        let p = profile();
        assert!(ReplayBackend::unpaced(p.clone(), 1)
            .describe()
            .contains("unpaced"));
        assert!(ReplayBackend::new(p, 1, 500.0).describe().contains("500x"));
    }
}
