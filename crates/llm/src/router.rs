//! Pluggable request routing for a heterogeneous serving [`Fleet`].
//!
//! The paper's deployments route data-parallel replicas with a single
//! hard-wired shortest-queue rule inside [`crate::SimServer`]. A *fleet*
//! generalizes that: replicas may be entirely different backends (different
//! presets, a latency-replay engine, a real HTTP endpoint…), and the
//! routing rule is a user-pluggable [`RoutePolicy`] — routing/placement
//! policy dominates at scale, so it must be swappable per experiment.
//!
//! [`Fleet`]: crate::Fleet

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::request::{Lane, LlmRequest};

/// A router's read-only view of one fleet replica at decision time.
/// Plain data, constructible by custom fleets and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaView {
    /// Replica index within the fleet (stable across the run).
    pub id: usize,
    /// Calls currently in flight on this replica.
    pub outstanding: usize,
    /// Estimated tokens (prompt + decode) of the calls currently in
    /// flight on this replica — the load signal [`TokenWeighted`] routes
    /// on: a replica chewing one 4k-token conversation is busier than one
    /// serving three 60-token perceive calls.
    pub outstanding_tokens: u64,
    /// Calls completed by this replica so far.
    pub served: u64,
    /// Whether the replica is tagged for interactive traffic (see
    /// [`LaneAware`]).
    pub interactive: bool,
    /// Whether the replica is currently willing to accept traffic.
    /// `false` while a fault window ([`crate::FaultPlan`]) holds it
    /// unavailable, after it failed permanently, or — within a single
    /// routing retry — once an attempt on it already failed. Every
    /// shipped policy routes among available replicas first and falls
    /// back to the full fleet only when none is available (the fleet's
    /// retry loop then decides whether to back off or give up).
    pub available: bool,
}

/// The available subset of `replicas`, or all of them when none is
/// available (the caller still has to pick *something*; the fleet layer
/// handles a truly dead fleet).
fn available_or_all(replicas: &[ReplicaView]) -> impl Iterator<Item = &ReplicaView> + Clone {
    let any_available = replicas.iter().any(|r| r.available);
    replicas
        .iter()
        .filter(move |r| r.available || !any_available)
}

/// Picks the replica that serves the next request.
///
/// Implementations must be shareable across the threaded runtime's worker
/// threads; `route` is called once per [`crate::LlmBackend::call`] on the
/// fleet and must return an index `< replicas.len()`. `replicas` is never
/// empty and is ordered by replica id.
pub trait RoutePolicy: Send + Sync {
    /// Chooses the replica index for `req`.
    fn route(&self, req: &LlmRequest, replicas: &[ReplicaView]) -> usize;

    /// Stable policy name (for logs, metrics, and CLI round-trips).
    fn name(&self) -> &'static str;
}

/// Cycles through replicas in order, ignoring load and lanes.
///
/// The baseline policy: perfectly fair in request *count*, oblivious to
/// heterogeneity — a slow replica gets the same share as a fast one, which
/// is exactly the failure mode the other policies exist to fix.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// Creates the policy, starting at replica 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutePolicy for RoundRobin {
    fn route(&self, _req: &LlmRequest, replicas: &[ReplicaView]) -> usize {
        let n = available_or_all(replicas).count();
        let pick = self.next.fetch_add(1, Ordering::Relaxed) % n;
        available_or_all(replicas)
            .nth(pick)
            .expect("pick < available count")
            .id
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Routes to the replica with the fewest in-flight calls (join the
/// shortest queue), ties broken by lowest replica id.
///
/// On a heterogeneous fleet this is self-balancing: a fast replica drains
/// its queue sooner, stays short, and therefore absorbs proportionally
/// more traffic than a slow one.
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl LeastOutstanding {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

fn least_outstanding_of<'a>(replicas: impl Iterator<Item = &'a ReplicaView>) -> Option<usize> {
    replicas.min_by_key(|r| (r.outstanding, r.id)).map(|r| r.id)
}

impl RoutePolicy for LeastOutstanding {
    fn route(&self, _req: &LlmRequest, replicas: &[ReplicaView]) -> usize {
        least_outstanding_of(available_or_all(replicas)).expect("fleet has at least one replica")
    }

    fn name(&self) -> &'static str {
        "least-outstanding"
    }
}

/// Routes to the replica with the smallest **outstanding token
/// estimate** (prompt + decode tokens of its in-flight calls), ties
/// broken by fewest in-flight calls then lowest id.
///
/// Call *count* is a poor load proxy for LLM serving: per-request cost
/// is dominated by token volume, and the workload mixes 60-token
/// perceive calls with multi-thousand-token conversation chains (the
/// Fig. 1 stragglers). Weighting by the tokens a replica still has in
/// flight sends the next heavy call to the replica that will actually
/// drain first. With a homogeneous all-light load it degrades to
/// [`LeastOutstanding`].
#[derive(Debug, Default)]
pub struct TokenWeighted;

impl TokenWeighted {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl RoutePolicy for TokenWeighted {
    fn route(&self, _req: &LlmRequest, replicas: &[ReplicaView]) -> usize {
        available_or_all(replicas)
            .min_by_key(|r| (r.outstanding_tokens, r.outstanding, r.id))
            .map(|r| r.id)
            .expect("fleet has at least one replica")
    }

    fn name(&self) -> &'static str {
        "token-weighted"
    }
}

/// Partitions the fleet by service class (paper §6's hybrid deployment,
/// fleet-level): [`Lane::Interactive`] requests go to replicas tagged
/// `interactive`, background requests to the untagged rest, each side
/// balanced by least-outstanding.
///
/// Degrades gracefully: if the partition a request belongs to is empty
/// (no replica tagged, or all tagged), the whole fleet is eligible — the
/// policy then behaves exactly like [`LeastOutstanding`].
#[derive(Debug, Default)]
pub struct LaneAware;

impl LaneAware {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl RoutePolicy for LaneAware {
    fn route(&self, req: &LlmRequest, replicas: &[ReplicaView]) -> usize {
        let wants_interactive = req.lane == Lane::Interactive;
        least_outstanding_of(
            available_or_all(replicas).filter(|r| r.interactive == wants_interactive),
        )
        .or_else(|| least_outstanding_of(available_or_all(replicas)))
        .expect("fleet has at least one replica")
    }

    fn name(&self) -> &'static str {
        "lane-aware"
    }
}

/// Routes every request of one **routing group** (persona template when
/// tagged, issuing agent otherwise — [`LlmRequest::routing_group`]) to
/// the same replica, so the group's shared prompt prefix stays resident
/// in that replica's cache.
///
/// The anchor replica is a seeded hash of the group
/// (`splitmix64(seed ^ group) % fleet_size`), which spreads groups
/// across the fleet without any shared mutable state — the policy is a
/// pure function of (seed, group, replica count), hence deterministic
/// for a fixed seed and replica set and stable across threads and runs.
/// When the anchor is unavailable (fault window, failed attempt), the
/// request probes linearly to the next available replica — its group's
/// prefix is re-seeded there, degrading hit rate but never stalling a
/// cluster on a dead replica.
///
/// This is the OpenCity observation operationalized: massive-city
/// personas come from a small template pool, so same-template agents
/// share a long preamble, and affinity converts that structure into
/// per-replica prefix-cache hits — measurable via
/// `FleetReplicaMetrics::hit_rate` and the `repro city-fleet` sweep.
#[derive(Debug)]
pub struct PrefixAffinity {
    seed: u64,
}

impl PrefixAffinity {
    /// Seed used by [`RoutePolicyKind::PrefixAffinity`] — chosen so the
    /// five built-in city persona templates spread over small (2–4
    /// replica) test fleets instead of all hashing onto one replica.
    pub const DEFAULT_SEED: u64 = 0xA1;

    /// Creates the policy with the default seed.
    pub fn new() -> Self {
        Self::with_seed(Self::DEFAULT_SEED)
    }

    /// Creates the policy with an explicit seed (exposed so experiments
    /// can re-shuffle the group→replica assignment).
    pub fn with_seed(seed: u64) -> Self {
        PrefixAffinity { seed }
    }

    /// The replica the group would land on with every replica available.
    fn anchor(&self, group: u64, n: usize) -> usize {
        (splitmix64(self.seed ^ group) % n as u64) as usize
    }
}

impl Default for PrefixAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutePolicy for PrefixAffinity {
    fn route(&self, req: &LlmRequest, replicas: &[ReplicaView]) -> usize {
        let n = replicas.len();
        let anchor = self.anchor(req.routing_group(), n);
        // Linear probe from the anchor to the first available replica;
        // a fully-unavailable fleet falls back to the anchor itself.
        (0..n)
            .map(|i| (anchor + i) % n)
            .find(|&i| replicas[i].available)
            .unwrap_or(anchor)
    }

    fn name(&self) -> &'static str {
        "prefix-affinity"
    }
}

/// SplitMix64 finalizer — a cheap, well-mixed hash for group→replica
/// assignment (the same mixer the replay backend keys latencies with).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Declarative name for a shipped [`RoutePolicy`] — the serializable /
/// CLI-facing counterpart, used by [`crate::FleetConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicyKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`] (the default).
    #[default]
    LeastOutstanding,
    /// [`TokenWeighted`].
    TokenWeighted,
    /// [`LaneAware`].
    LaneAware,
    /// [`PrefixAffinity`] (with [`PrefixAffinity::DEFAULT_SEED`]).
    PrefixAffinity,
}

impl RoutePolicyKind {
    /// All shipped policies, in display order.
    pub const ALL: [RoutePolicyKind; 5] = [
        RoutePolicyKind::RoundRobin,
        RoutePolicyKind::LeastOutstanding,
        RoutePolicyKind::TokenWeighted,
        RoutePolicyKind::LaneAware,
        RoutePolicyKind::PrefixAffinity,
    ];

    /// Stable name matching the built policy's [`RoutePolicy::name`].
    pub fn as_str(self) -> &'static str {
        match self {
            RoutePolicyKind::RoundRobin => "round-robin",
            RoutePolicyKind::LeastOutstanding => "least-outstanding",
            RoutePolicyKind::TokenWeighted => "token-weighted",
            RoutePolicyKind::LaneAware => "lane-aware",
            RoutePolicyKind::PrefixAffinity => "prefix-affinity",
        }
    }

    /// Parses a name produced by [`RoutePolicyKind::as_str`].
    pub fn from_str_opt(s: &str) -> Option<RoutePolicyKind> {
        RoutePolicyKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn RoutePolicy> {
        match self {
            RoutePolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            RoutePolicyKind::LeastOutstanding => Box::new(LeastOutstanding::new()),
            RoutePolicyKind::TokenWeighted => Box::new(TokenWeighted::new()),
            RoutePolicyKind::LaneAware => Box::new(LaneAware::new()),
            RoutePolicyKind::PrefixAffinity => Box::new(PrefixAffinity::new()),
        }
    }
}

impl fmt::Display for RoutePolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CallKind, RequestId};

    fn req(lane: Lane) -> LlmRequest {
        let r = LlmRequest::new(RequestId(1), 0, 0, 10, 2, CallKind::Plan);
        match lane {
            Lane::Interactive => r.interactive(),
            Lane::Background => r,
        }
    }

    fn views(outstanding: &[usize]) -> Vec<ReplicaView> {
        outstanding
            .iter()
            .enumerate()
            .map(|(id, &o)| ReplicaView {
                id,
                outstanding: o,
                outstanding_tokens: o as u64 * 100,
                served: 0,
                interactive: false,
                available: true,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles() {
        let p = RoundRobin::new();
        let v = views(&[5, 0, 0]);
        let picks: Vec<usize> = (0..6)
            .map(|_| p.route(&req(Lane::Background), &v))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2], "load must be ignored");
    }

    #[test]
    fn least_outstanding_picks_min_then_lowest_id() {
        let p = LeastOutstanding::new();
        assert_eq!(p.route(&req(Lane::Background), &views(&[3, 1, 2])), 1);
        assert_eq!(p.route(&req(Lane::Background), &views(&[2, 1, 1])), 1);
        assert_eq!(p.route(&req(Lane::Background), &views(&[0, 0, 0])), 0);
    }

    #[test]
    fn token_weighted_prefers_lightest_token_load() {
        let p = TokenWeighted::new();
        // Token estimate dominates: replica 1 has more calls in flight
        // but fewer outstanding tokens.
        let mut v = views(&[1, 3]);
        v[0].outstanding_tokens = 5_000;
        v[1].outstanding_tokens = 400;
        assert_eq!(p.route(&req(Lane::Background), &v), 1);
        // Token tie → fewest calls → lowest id (degrades to
        // least-outstanding on uniform loads).
        let mut v = views(&[2, 1, 1]);
        for r in &mut v {
            r.outstanding_tokens = 700;
        }
        assert_eq!(p.route(&req(Lane::Background), &v), 1);
        assert_eq!(p.route(&req(Lane::Background), &views(&[0, 0])), 0);
    }

    #[test]
    fn lane_aware_partitions_by_tag() {
        let p = LaneAware::new();
        let mut v = views(&[0, 9]);
        v[1].interactive = true;
        assert_eq!(p.route(&req(Lane::Background), &v), 0);
        assert_eq!(
            p.route(&req(Lane::Interactive), &v),
            1,
            "interactive must go to the tagged replica even when loaded"
        );
    }

    #[test]
    fn lane_aware_degrades_to_least_outstanding() {
        let p = LaneAware::new();
        // No replica tagged: interactive falls back to the whole fleet.
        assert_eq!(p.route(&req(Lane::Interactive), &views(&[2, 1])), 1);
        // All tagged: background falls back likewise.
        let mut v = views(&[2, 1]);
        v[0].interactive = true;
        v[1].interactive = true;
        assert_eq!(p.route(&req(Lane::Background), &v), 1);
    }

    #[test]
    fn every_policy_avoids_unavailable_replicas() {
        let mut v = views(&[0, 9]);
        v[0].available = false;
        for kind in RoutePolicyKind::ALL {
            let p = kind.build();
            for lane in [Lane::Background, Lane::Interactive] {
                for _ in 0..4 {
                    assert_eq!(
                        p.route(&req(lane), &v),
                        1,
                        "{kind}: replica 0 is unavailable"
                    );
                }
            }
        }
    }

    #[test]
    fn fully_unavailable_fleet_still_routes_somewhere() {
        let mut v = views(&[1, 2]);
        v[0].available = false;
        v[1].available = false;
        for kind in RoutePolicyKind::ALL {
            let pick = kind.build().route(&req(Lane::Background), &v);
            assert!(pick < v.len(), "{kind}: index out of range");
        }
    }

    #[test]
    fn round_robin_cycles_over_available_subset() {
        let p = RoundRobin::new();
        let mut v = views(&[0, 0, 0]);
        v[1].available = false;
        let picks: Vec<usize> = (0..4)
            .map(|_| p.route(&req(Lane::Background), &v))
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn prefix_affinity_is_deterministic_and_groups_stick() {
        let p = PrefixAffinity::new();
        let v = views(&[3, 0, 1, 0]);
        let r = req(Lane::Background).with_template(2, 100);
        let first = p.route(&r, &v);
        for _ in 0..10 {
            assert_eq!(p.route(&r, &v), first, "same group must pin");
        }
        // Same seed, fresh policy instance: identical assignment (no
        // hidden mutable state).
        assert_eq!(PrefixAffinity::new().route(&r, &v), first);
        // Load never moves a group; only availability does.
        let mut loaded = v.clone();
        loaded[first].outstanding = 999;
        loaded[first].outstanding_tokens = 1 << 40;
        assert_eq!(p.route(&r, &loaded), first);
    }

    #[test]
    fn prefix_affinity_spreads_groups_and_probes_on_failure() {
        let p = PrefixAffinity::new();
        let v = views(&[0, 0]);
        // The five built-in city templates must not all collapse onto a
        // single replica of a 2-fleet (the constant seed is picked for
        // this; a collapse would make affinity == worst-case hotspot).
        let anchors: Vec<usize> = (0..5u32)
            .map(|t| p.route(&req(Lane::Background).with_template(t, 50), &v))
            .collect();
        assert!(anchors.contains(&0) && anchors.contains(&1), "{anchors:?}");
        // Untagged requests group per agent and likewise spread.
        let by_agent: Vec<usize> = (0..16u32)
            .map(|a| {
                let r = LlmRequest::new(RequestId(1), a, 0, 10, 2, CallKind::Plan);
                p.route(&r, &v)
            })
            .collect();
        assert!(by_agent.contains(&0) && by_agent.contains(&1));
        // When the anchor goes unavailable the group probes to the next
        // available replica instead of stalling.
        let t0 = req(Lane::Background).with_template(0, 50);
        let anchor = p.route(&t0, &v);
        let mut degraded = v.clone();
        degraded[anchor].available = false;
        assert_eq!(p.route(&t0, &degraded), 1 - anchor);
    }

    #[test]
    fn kind_roundtrip_and_names_match_policies() {
        for k in RoutePolicyKind::ALL {
            assert_eq!(RoutePolicyKind::from_str_opt(k.as_str()), Some(k));
            assert_eq!(k.build().name(), k.as_str(), "kind and policy disagree");
        }
        assert_eq!(RoutePolicyKind::from_str_opt("nope"), None);
        assert_eq!(
            RoutePolicyKind::default(),
            RoutePolicyKind::LeastOutstanding
        );
    }
}
