use std::fmt;

use serde::{Deserialize, Serialize};

/// Unique identifier of an LLM request within one run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The agent-loop function that produced an LLM call.
///
/// Mirrors the GenAgent cognitive loop (paper §2.1, Algorithm 2 and Fig. 1,
/// whose colored bars are exactly these categories): perception filtering,
/// memory retrieval scoring, action planning, periodic reflection, and
/// conversation turns with a closing summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CallKind {
    /// Rank/filter perceived events for salience.
    Perceive,
    /// Score memories for recency/importance/relevance.
    Retrieve,
    /// Decide the next action / (re)plan the day.
    Plan,
    /// Synthesize higher-level insights from accumulated memories.
    Reflect,
    /// Produce one conversation utterance.
    Converse,
    /// Summarize a finished conversation into memory.
    Summarize,
    /// Anything else (custom agent programs).
    Other,
}

impl CallKind {
    /// All kinds, in display order.
    pub const ALL: [CallKind; 7] = [
        CallKind::Perceive,
        CallKind::Retrieve,
        CallKind::Plan,
        CallKind::Reflect,
        CallKind::Converse,
        CallKind::Summarize,
        CallKind::Other,
    ];

    /// Stable lowercase name (used by the trace codec).
    pub fn as_str(self) -> &'static str {
        match self {
            CallKind::Perceive => "perceive",
            CallKind::Retrieve => "retrieve",
            CallKind::Plan => "plan",
            CallKind::Reflect => "reflect",
            CallKind::Converse => "converse",
            CallKind::Summarize => "summarize",
            CallKind::Other => "other",
        }
    }

    /// Parses a name produced by [`CallKind::as_str`].
    pub fn from_str_opt(s: &str) -> Option<CallKind> {
        CallKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Small stable index (e.g. for per-kind histograms).
    pub fn index(self) -> usize {
        CallKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL")
    }
}

impl fmt::Display for CallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Service class of a request — the hybrid-deployment distinction of
/// paper §6: latency-critical *interactive* traffic (a player talking to
/// a character) versus throughput-oriented *background* simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Lane {
    /// Latency-critical: served ahead of background work when the server
    /// is lane-aware (see `ServerConfig::lane_aware`).
    Interactive,
    /// Throughput-oriented simulation traffic (the default).
    #[default]
    Background,
}

impl Lane {
    /// Admission rank: lower is served first (interactive = 0).
    pub fn rank(self) -> u8 {
        match self {
            Lane::Interactive => 0,
            Lane::Background => 1,
        }
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Lane::Interactive => "interactive",
            Lane::Background => "background",
        })
    }
}

/// One LLM inference request as seen by the serving engine.
///
/// Token counts come from the workload trace (the paper replays traces with
/// `ignore_eos` so output lengths are fixed — §4.1); `step` doubles as the
/// scheduling priority: **lower step = more urgent** (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlmRequest {
    /// Unique id within the run.
    pub id: RequestId,
    /// Issuing agent (raw index; the engine's `AgentId` wraps this).
    pub agent: u32,
    /// Simulation step that issued the call; also the priority key.
    pub step: u64,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Generation length in tokens (≥ 1 is enforced by the server).
    pub output_tokens: u32,
    /// Which agent function produced the call.
    pub kind: CallKind,
    /// Service class (background simulation by default).
    pub lane: Lane,
    /// Persona template the issuing agent was instantiated from, if the
    /// world exposes one. Same-template agents share a long prompt
    /// preamble (system prompt + persona scaffold), which is what
    /// prefix-affinity routing and the per-replica prefix cache exploit.
    #[serde(default)]
    pub template: Option<u32>,
    /// Length in tokens of the preamble shared by all agents of
    /// [`LlmRequest::template`]. `0` when untemplated; always capped at
    /// `input_tokens` by consumers.
    #[serde(default)]
    pub shared_prefix_tokens: u32,
}

impl LlmRequest {
    /// Creates a background-lane request.
    pub fn new(
        id: RequestId,
        agent: u32,
        step: u64,
        input_tokens: u32,
        output_tokens: u32,
        kind: CallKind,
    ) -> Self {
        LlmRequest {
            id,
            agent,
            step,
            input_tokens,
            output_tokens,
            kind,
            lane: Lane::Background,
            template: None,
            shared_prefix_tokens: 0,
        }
    }

    /// Marks this request latency-critical (paper §6's interactive class).
    pub fn interactive(mut self) -> Self {
        self.lane = Lane::Interactive;
        self
    }

    /// Tags the request with the issuing agent's persona template and the
    /// token length of the preamble all agents of that template share —
    /// the inputs to prefix-affinity routing and the replica prefix cache.
    pub fn with_template(mut self, template: u32, shared_prefix_tokens: u32) -> Self {
        self.template = Some(template);
        self.shared_prefix_tokens = shared_prefix_tokens;
        self
    }

    /// The key prefix-affinity routing groups on: the persona template
    /// when tagged, otherwise the issuing agent alone (an agent still
    /// reuses *its own* prefix call-to-call, so keeping one agent on one
    /// replica is the best untagged fallback). Disjoint by construction —
    /// the agent fallback is namespaced above the `u32` template range.
    pub fn routing_group(&self) -> u64 {
        match self.template {
            Some(t) => t as u64,
            None => (1u64 << 32) | self.agent as u64,
        }
    }

    /// Total tokens moved for this request (input + output).
    pub fn total_tokens(&self) -> u64 {
        self.input_tokens as u64 + self.output_tokens as u64
    }
}

/// Response to an [`LlmRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlmResponse {
    /// Id of the request this answers.
    pub id: RequestId,
    /// Number of generated tokens.
    pub output_tokens: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_name_roundtrip() {
        for k in CallKind::ALL {
            assert_eq!(CallKind::from_str_opt(k.as_str()), Some(k));
        }
        assert_eq!(CallKind::from_str_opt("nope"), None);
    }

    #[test]
    fn kind_indices_are_dense() {
        for (i, k) in CallKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn request_total_tokens() {
        let r = LlmRequest::new(RequestId(1), 0, 3, 640, 20, CallKind::Plan);
        assert_eq!(r.total_tokens(), 660);
    }

    #[test]
    fn requests_default_to_background_lane() {
        let r = LlmRequest::new(RequestId(1), 0, 3, 640, 20, CallKind::Plan);
        assert_eq!(r.lane, Lane::Background);
        assert_eq!(r.interactive().lane, Lane::Interactive);
    }

    #[test]
    fn template_tagging_and_routing_groups() {
        let bare = LlmRequest::new(RequestId(1), 7, 3, 640, 20, CallKind::Plan);
        assert_eq!(bare.template, None);
        assert_eq!(bare.shared_prefix_tokens, 0);
        let tagged = bare.with_template(4, 320);
        assert_eq!(tagged.template, Some(4));
        assert_eq!(tagged.shared_prefix_tokens, 320);
        assert_eq!(tagged.routing_group(), 4);
        // Untagged requests group by agent, namespaced away from
        // template ids so the two can never collide.
        assert_eq!(bare.routing_group(), (1u64 << 32) | 7);
        assert_ne!(
            bare.routing_group(),
            LlmRequest::new(RequestId(2), 8, 3, 640, 20, CallKind::Plan).routing_group()
        );
    }

    #[test]
    fn lane_ranks_order_interactive_first() {
        assert!(Lane::Interactive.rank() < Lane::Background.rank());
        assert_eq!(Lane::default(), Lane::Background);
    }

    #[test]
    fn display_impls() {
        assert_eq!(RequestId(5).to_string(), "req#5");
        assert_eq!(CallKind::Converse.to_string(), "converse");
        assert_eq!(Lane::Interactive.to_string(), "interactive");
    }
}
