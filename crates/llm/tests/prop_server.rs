//! Property tests for the serving simulator: conservation, monotonicity,
//! and determinism over arbitrary request mixes.

use aim_llm::{CallKind, CostModel, LlmRequest, RequestId, ServerConfig, SimServer, VirtualTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ReqSpec {
    at_us: u64,
    step: u64,
    input: u32,
    output: u32,
}

fn arb_reqs(max: usize) -> impl Strategy<Value = Vec<ReqSpec>> {
    proptest::collection::vec(
        (0u64..500_000, 0u64..20, 1u32..2000, 0u32..64).prop_map(|(at_us, step, input, output)| {
            ReqSpec {
                at_us,
                step,
                input,
                output,
            }
        }),
        1..max,
    )
}

fn cfg(replicas: u32, max_running: u32, kv: u64, priority: bool) -> ServerConfig {
    ServerConfig {
        name: "prop".into(),
        replicas,
        cost: CostModel::new(2_000.0, 5.0, 150.0, 100.0),
        max_running,
        kv_capacity_tokens: kv,
        prefill_chunk: 256,
        priority_enabled: priority,
        lane_aware: false,
        interactive_reserve: 0,
        prefix_caching: false,
        prefix_cache_entries: 4096,
    }
}

fn run(cfg: ServerConfig, reqs: &[ReqSpec]) -> Vec<(u64, u64)> {
    let mut server = SimServer::new(cfg);
    let mut sorted = reqs.to_vec();
    sorted.sort_by_key(|r| r.at_us);
    let mut done = Vec::new();
    for (i, r) in sorted.iter().enumerate() {
        // Deliver any completions due before this arrival.
        while let Some(t) = server.next_event() {
            if t > VirtualTime::from_micros(r.at_us) {
                break;
            }
            done.extend(server.advance(t));
        }
        server.submit(
            VirtualTime::from_micros(r.at_us),
            LlmRequest::new(
                RequestId(i as u64),
                0,
                r.step,
                r.input,
                r.output,
                CallKind::Other,
            ),
        );
    }
    done.extend(server.drain());
    done.into_iter()
        .map(|c| (c.req.id.0, c.finished_at.as_micros()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted request completes exactly once, never before its
    /// arrival plus its minimum possible service time.
    #[test]
    fn conservation_and_causality(reqs in arb_reqs(40), replicas in 1u32..4) {
        let done = run(cfg(replicas, 8, 1_000_000, true), &reqs);
        prop_assert_eq!(done.len(), reqs.len());
        let mut ids: Vec<u64> = done.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), reqs.len(), "duplicate completions");
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|r| r.at_us);
        for (id, t) in &done {
            let r = &sorted[*id as usize];
            prop_assert!(*t > r.at_us, "completed before arrival");
        }
    }

    /// Identical inputs produce identical completions.
    #[test]
    fn deterministic(reqs in arb_reqs(30)) {
        let a = run(cfg(2, 8, 100_000, true), &reqs);
        let b = run(cfg(2, 8, 100_000, true), &reqs);
        prop_assert_eq!(a, b);
    }

    /// Tiny KV capacity never loses or duplicates requests and stays
    /// deterministic. (Timing under pressure is *not* monotone — deferring
    /// an admission can serendipitously help a later request, the classic
    /// scheduling anomaly — so only safety is asserted.)
    #[test]
    fn kv_pressure_is_safe(reqs in arb_reqs(24)) {
        let tight_a = run(cfg(1, 8, 2_048, true), &reqs);
        let tight_b = run(cfg(1, 8, 2_048, true), &reqs);
        prop_assert_eq!(tight_a.len(), reqs.len());
        let mut ids: Vec<u64> = tight_a.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), reqs.len());
        prop_assert_eq!(tight_a, tight_b);
    }

    /// For a simultaneous burst, adding replicas never increases the
    /// makespan by more than a few iteration boundaries. Strict
    /// monotonicity does NOT hold: the engine starts an iteration the
    /// moment the first request of the burst lands, so each replica can
    /// strand its first arrival in a lonely iteration while the
    /// single-replica deployment batches the same requests together — a
    /// Graham-type scheduling anomaly bounded by per-replica boundary
    /// misalignment, not a throughput loss.
    #[test]
    fn replicas_monotone_for_bursts_within_boundary_slack(reqs in arb_reqs(24)) {
        let burst: Vec<ReqSpec> =
            reqs.iter().map(|r| ReqSpec { at_us: 0, ..r.clone() }).collect();
        let one = run(cfg(1, 8, 1_000_000, true), &burst);
        let four = run(cfg(4, 8, 1_000_000, true), &burst);
        let end = |v: &[(u64, u64)]| v.iter().map(|(_, t)| *t).max().unwrap_or(0);
        // Slack: a handful of iteration floors (2 ms each) plus per-seq
        // decode boundary effects.
        let slack_us = 5 * 2_000 + 1_000;
        prop_assert!(
            end(&four) <= end(&one) + slack_us,
            "4 replicas {} vs 1 replica {} exceeds anomaly slack",
            end(&four),
            end(&one)
        );
    }

    /// Batch monotonicity of the cost model: more work never takes less
    /// time, and the floor is respected.
    #[test]
    fn cost_model_monotone(p in 0u32..4096, d in 0u32..256) {
        let m = CostModel::new(2_000.0, 5.0, 150.0, 100.0);
        let t = m.iter_time(p, d);
        prop_assert!(t >= m.iter_time(0, 0).min(t));
        prop_assert!(m.iter_time(p + 1, d) >= t);
        prop_assert!(m.iter_time(p, d + 1) >= t);
        prop_assert!(t.as_micros() >= 2_000);
    }
}
