//! Property tests for the fleet's prefix-cache accounting and
//! prefix-affinity routing: the lazy-deletion LRU must be *exactly* a
//! least-recently-observed cache (checked against a brute-force oracle),
//! an evicted prefix must never report a hit, hit/miss counters must be
//! exact over arbitrary prompt streams — including through a real
//! [`Fleet`] — and affinity routing must be a pure function of
//! (seed, group, replica set). Also checks the fleet's retry-backoff
//! divisor: exactly the largest replica time scale, clamped to ≥ 1.

use std::sync::Arc;

use aim_llm::{
    CallKind, Fleet, FleetConfig, LlmBackend, LlmRequest, PrefixAffinity, PrefixLru, PrefixTracker,
    ReplicaSpec, ReplicaView, RequestId, RoutePolicy, RoutePolicyKind,
};
use proptest::prelude::*;

/// Brute-force least-recently-observed cache: a plain vector ordered by
/// recency (front = least recent), the executable spec `PrefixLru`'s
/// lazy-deletion implementation must match move for move.
struct OracleLru {
    cap: usize,
    /// `(key, cached_tokens)`, most recently observed at the back.
    entries: Vec<(u64, u32)>,
}

impl OracleLru {
    fn new(cap: usize) -> Self {
        OracleLru {
            cap,
            entries: Vec::new(),
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.entries.iter().any(|&(k, _)| k == key)
    }

    fn observe(&mut self, key: u64, tokens: u32) -> u32 {
        let matched = match self.entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => {
                let (_, cached) = self.entries.remove(pos);
                self.entries.push((key, cached.max(tokens)));
                cached.min(tokens)
            }
            None => {
                self.entries.push((key, tokens));
                0
            }
        };
        if self.entries.len() > self.cap {
            self.entries.remove(0);
        }
        matched
    }
}

/// The tracker's documented composition, re-implemented on the oracle:
/// agent entry keyed by the raw id, template entry namespaced into the
/// top bit, hits counted on agent matches only.
struct OracleTracker {
    lru: OracleLru,
    hits: u64,
    misses: u64,
    matched_tokens: u64,
}

impl OracleTracker {
    fn new(cap: usize) -> Self {
        OracleTracker {
            lru: OracleLru::new(cap),
            hits: 0,
            misses: 0,
            matched_tokens: 0,
        }
    }

    fn observe(&mut self, agent: u32, template: Option<u32>, input: u32, shared: u32) -> u32 {
        let agent_matched = self.lru.observe(agent as u64, input);
        let template_matched = match template {
            Some(t) if shared > 0 => self.lru.observe((1u64 << 63) | t as u64, shared.min(input)),
            _ => 0,
        };
        if agent_matched > 0 {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        let matched = agent_matched.max(template_matched).min(input);
        self.matched_tokens += matched as u64;
        matched
    }
}

proptest! {
    /// The lazy-deletion LRU is indistinguishable from the brute-force
    /// least-recently-observed cache, observation for observation.
    #[test]
    fn lru_matches_brute_force_oracle(
        cap in 1usize..8,
        stream in proptest::collection::vec((0u64..12, 1u32..500), 1..200),
    ) {
        let mut lru = PrefixLru::new(cap);
        let mut oracle = OracleLru::new(cap);
        for (key, tokens) in stream {
            let got = lru.observe(key, tokens);
            let want = oracle.observe(key, tokens);
            prop_assert_eq!(got, want, "key {} tokens {}", key, tokens);
            prop_assert!(lru.len() <= cap, "resident set exceeded capacity");
            prop_assert_eq!(lru.len(), oracle.entries.len());
        }
    }

    /// An evicted prefix never matches: whenever the oracle says a key is
    /// not resident, the LRU must report a zero match for it.
    #[test]
    fn evicted_prefix_never_reports_a_hit(
        cap in 1usize..5,
        stream in proptest::collection::vec((0u64..10, 1u32..100), 1..300),
    ) {
        let mut lru = PrefixLru::new(cap);
        let mut oracle = OracleLru::new(cap);
        for (key, tokens) in stream {
            let resident = oracle.contains(key);
            let got = lru.observe(key, tokens);
            if !resident {
                prop_assert_eq!(got, 0, "key {} was absent/evicted yet matched", key);
            }
            oracle.observe(key, tokens);
        }
    }

    /// Tracker counters (hits, misses, matched tokens) are exact over
    /// arbitrary prompt streams, templated and not.
    #[test]
    fn tracker_counters_match_oracle(
        cap in 1usize..16,
        stream in proptest::collection::vec(
            (0u32..10, (0u32..5).prop_map(|v| v.checked_sub(1)), 1u32..800, 0u32..400),
            1..200,
        ),
    ) {
        let mut tracker = PrefixTracker::new(cap);
        let mut oracle = OracleTracker::new(cap);
        for (agent, template, input, shared) in stream {
            let got = tracker.observe(agent, template, input, shared);
            let want = oracle.observe(agent, template, input, shared);
            prop_assert_eq!(got, want);
        }
        let s = tracker.stats();
        prop_assert_eq!(s.hits, oracle.hits);
        prop_assert_eq!(s.misses, oracle.misses);
        prop_assert_eq!(s.matched_tokens, oracle.matched_tokens);
    }

    /// Prefix-affinity routing is a pure function of (seed, routing
    /// group, replica set): deterministic across calls and across policy
    /// instances, always in range, and never picks an unavailable
    /// replica while an available one exists.
    #[test]
    fn prefix_affinity_is_deterministic_and_respects_availability(
        seed in any::<u64>(),
        agent in any::<u32>(),
        template in (any::<u32>(), any::<bool>()).prop_map(|(t, some)| some.then_some(t)),
        n in 1usize..8,
        avail_bits in any::<u8>(),
    ) {
        let views: Vec<ReplicaView> = (0..n)
            .map(|id| ReplicaView {
                id,
                outstanding: id,        // varying load must not matter
                outstanding_tokens: (id as u64) * 17,
                served: id as u64,
                interactive: id % 2 == 0,
                available: avail_bits & (1 << id) != 0,
            })
            .collect();
        let mut req = LlmRequest::new(RequestId(1), agent, 0, 100, 4, CallKind::Plan);
        if let Some(t) = template {
            req = req.with_template(t, 50);
        }
        let policy = PrefixAffinity::with_seed(seed);
        let pick = policy.route(&req, &views);
        prop_assert!(pick < n, "route must stay in range");
        prop_assert_eq!(pick, policy.route(&req, &views), "same policy, same pick");
        prop_assert_eq!(
            pick,
            PrefixAffinity::with_seed(seed).route(&req, &views),
            "fresh instance, same pick"
        );
        if views.iter().any(|v| v.available) {
            prop_assert!(views[pick].available, "picked a dead replica over a live one");
        }
    }

    /// End to end through a real [`Fleet`]: sequential round-robin calls
    /// land on replica `i % n`, so each replica's hit/miss/matched
    /// counters must equal an oracle tracker fed exactly its share of the
    /// stream — including evictions from a deliberately tiny LRU.
    #[test]
    fn fleet_counters_match_oracle_under_round_robin(
        n in 1usize..4,
        lru_entries in 1u32..6,
        stream in proptest::collection::vec(
            (0u32..6, (0u32..4).prop_map(|v| v.checked_sub(1)), 1u32..300, 0u32..150),
            1..120,
        ),
    ) {
        let mut cfg = FleetConfig::new("prop", RoutePolicyKind::RoundRobin)
            .with_prefix_lru_entries(lru_entries);
        for _ in 0..n {
            cfg = cfg.with_replica(ReplicaSpec::instant());
        }
        let fleet: Arc<Fleet> = Arc::new(cfg.build());
        let mut oracles: Vec<OracleTracker> = (0..n)
            .map(|_| OracleTracker::new(lru_entries as usize))
            .collect();
        for (i, &(agent, template, input, shared)) in stream.iter().enumerate() {
            let mut req = LlmRequest::new(RequestId(i as u64), agent, 0, input, 2, CallKind::Plan);
            if let Some(t) = template {
                req = req.with_template(t, shared);
            }
            fleet.call(&req);
            oracles[i % n].observe(agent, template, input, if template.is_some() { shared } else { 0 });
        }
        let m = fleet.metrics();
        for (r, oracle) in m.replicas.iter().zip(&oracles) {
            prop_assert_eq!(r.prefix.hits, oracle.hits, "replica {} hits", r.replica);
            prop_assert_eq!(r.prefix.misses, oracle.misses, "replica {} misses", r.replica);
            prop_assert_eq!(
                r.prefix.matched_tokens,
                oracle.matched_tokens,
                "replica {} matched tokens",
                r.replica
            );
        }
    }

    /// The fleet's retry-backoff divisor is exactly the largest replica
    /// time scale (clamped to at least 1): a mixed fleet compresses its
    /// sweep sleep by the fastest simulation it fronts, and an all-
    /// realtime fleet advertises no time scale at all.
    #[test]
    fn backoff_divisor_is_the_max_replica_time_scale(
        scales in proptest::collection::vec(
            (1u32..5_000, any::<bool>()).prop_map(|(s, paced)| paced.then_some(s as f64)),
            1..6,
        ),
    ) {
        let mut cfg = FleetConfig::new("scales", RoutePolicyKind::RoundRobin);
        for scale in &scales {
            cfg = cfg.with_replica(match scale {
                Some(s) => ReplicaSpec::replay(
                    aim_llm::LatencyProfile::constant("paced", 100),
                    0,
                    Some(*s),
                ),
                None => ReplicaSpec::instant(),
            });
        }
        let fleet = cfg.build();
        let want = scales
            .iter()
            .flatten()
            .fold(1.0f64, |acc, &s| acc.max(s));
        prop_assert_eq!(fleet.backoff_divisor(), want);
        let advertised = LlmBackend::time_scale(&fleet);
        if want > 1.0 {
            prop_assert_eq!(advertised, Some(want), "fleet must re-export its pacing");
        } else {
            prop_assert_eq!(advertised, None, "an unpaced fleet has no time scale");
        }
    }
}
