//! Property tests for the latency-replay backend: determinism under a
//! fixed seed, independence from call order and threading, sample
//! provenance, and codec round-tripping.

use aim_llm::{CallKind, LatencyProfile, LlmBackend, LlmRequest, ReplayBackend, RequestId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ReqSpec {
    id: u64,
    agent: u32,
    step: u64,
    kind_idx: usize,
}

impl ReqSpec {
    fn request(&self) -> LlmRequest {
        LlmRequest::new(
            RequestId(self.id),
            self.agent,
            self.step,
            100,
            5,
            CallKind::ALL[self.kind_idx],
        )
    }
}

fn arb_profile() -> impl Strategy<Value = LatencyProfile> {
    proptest::collection::vec((0usize..CallKind::ALL.len(), 0u64..1_000_000), 1..64).prop_map(
        |samples| {
            let mut p = LatencyProfile::new("prop");
            for (kind_idx, us) in samples {
                p.push(CallKind::ALL[kind_idx], us);
            }
            p
        },
    )
}

fn arb_reqs(max: usize) -> impl Strategy<Value = Vec<ReqSpec>> {
    proptest::collection::vec(
        (
            0u64..10_000,
            0u32..256,
            0u64..50,
            0usize..CallKind::ALL.len(),
        )
            .prop_map(|(id, agent, step, kind_idx)| ReqSpec {
                id,
                agent,
                step,
                kind_idx,
            }),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fixed (profile, seed) pair fully determines every request's
    /// latency — across backend instances and across call orders.
    #[test]
    fn replay_is_deterministic_under_fixed_seed(
        profile in arb_profile(),
        seed in any::<u64>(),
        reqs in arb_reqs(32),
    ) {
        let a = ReplayBackend::unpaced(profile.clone(), seed);
        let b = ReplayBackend::unpaced(profile, seed);
        let forward: Vec<u64> =
            reqs.iter().map(|r| a.planned_latency_us(&r.request())).collect();
        // Same requests in reverse order against a fresh instance.
        let mut backward: Vec<u64> =
            reqs.iter().rev().map(|r| b.planned_latency_us(&r.request())).collect();
        backward.reverse();
        prop_assert_eq!(&forward, &backward, "latency must be order-independent");
        // And identical when re-asked (no hidden per-call state).
        for (r, &expected) in reqs.iter().zip(&forward) {
            prop_assert_eq!(a.planned_latency_us(&r.request()), expected);
        }
    }

    /// Every replayed latency is an actual sample of the profile, and
    /// `call` accounts exactly the planned latencies.
    #[test]
    fn replayed_latencies_come_from_the_profile(
        profile in arb_profile(),
        seed in any::<u64>(),
        reqs in arb_reqs(32),
    ) {
        let backend = ReplayBackend::unpaced(profile.clone(), seed);
        let all: Vec<u64> = CallKind::ALL
            .iter()
            .flat_map(|&k| profile.samples_for(k).to_vec())
            .collect();
        let mut expected_total = 0u64;
        for r in &reqs {
            let req = r.request();
            let lat = backend.planned_latency_us(&req);
            let own = profile.samples_for(req.kind);
            if own.is_empty() {
                prop_assert!(all.contains(&lat), "pooled fallback sample");
            } else {
                prop_assert!(own.contains(&lat), "per-kind sample");
            }
            expected_total += lat;
            backend.call(&req);
        }
        let m = backend.metrics();
        prop_assert_eq!(m.calls, reqs.len() as u64);
        prop_assert_eq!(m.replayed_us, expected_total);
    }

    /// Concurrent calls from many threads replay the same per-request
    /// latencies as a serial run (the property the equivalence tests
    /// lean on: thread interleaving never changes what is served).
    #[test]
    fn threading_does_not_change_latencies(
        profile in arb_profile(),
        seed in any::<u64>(),
        reqs in arb_reqs(16),
    ) {
        let backend = std::sync::Arc::new(ReplayBackend::unpaced(profile, seed));
        let serial: u64 = reqs
            .iter()
            .map(|r| backend.planned_latency_us(&r.request()))
            .sum();
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| {
                let backend = std::sync::Arc::clone(&backend);
                let r = r.clone();
                std::thread::spawn(move || backend.call(&r.request()))
            })
            .collect();
        for h in handles {
            h.join().expect("replay call thread");
        }
        prop_assert_eq!(backend.metrics().replayed_us, serial);
    }

    /// Profiles survive the AIMLAT codec byte-for-byte in behavior: a
    /// reloaded profile drives a backend identically.
    #[test]
    fn codec_roundtrip_preserves_replay_behavior(
        profile in arb_profile(),
        seed in any::<u64>(),
        reqs in arb_reqs(16),
    ) {
        let mut buf = Vec::new();
        profile.write_to(&mut buf).unwrap();
        let reloaded = LatencyProfile::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(&profile, &reloaded);
        let a = ReplayBackend::unpaced(profile, seed);
        let b = ReplayBackend::unpaced(reloaded, seed);
        for r in &reqs {
            prop_assert_eq!(
                a.planned_latency_us(&r.request()),
                b.planned_latency_us(&r.request())
            );
        }
    }
}
