//! Tile maps: walkability, buildings, and named areas.

use aim_core::space::Point;
use serde::{Deserialize, Serialize};

/// What a named area is used for; drives schedules and conversation rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AreaKind {
    /// A private home (one per agent household).
    House,
    /// A workplace (office, shop, college…).
    Work,
    /// The cafe — lunch magnet, busy-hour epicenter (Fig. 4c's noon peak).
    Cafe,
    /// The bar — evening social venue.
    Bar,
    /// The park — open-air social venue.
    Park,
    /// The general store.
    Store,
}

impl AreaKind {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            AreaKind::House => "house",
            AreaKind::Work => "work",
            AreaKind::Cafe => "cafe",
            AreaKind::Bar => "bar",
            AreaKind::Park => "park",
            AreaKind::Store => "store",
        }
    }
}

/// A named rectangular area of the map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Area {
    /// Display name, e.g. `"house 3"` or `"Hobbs Cafe"`.
    pub name: String,
    /// Purpose of the area.
    pub kind: AreaKind,
    /// Top-left corner (inclusive).
    pub min: Point,
    /// Bottom-right corner (inclusive).
    pub max: Point,
    /// The door tile (on the perimeter, walkable).
    pub door: Point,
}

impl Area {
    /// Whether `p` lies inside the area rectangle (walls included).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// A deterministic interior anchor tile (where agents head to).
    pub fn anchor(&self) -> Point {
        Point::new((self.min.x + self.max.x) / 2, (self.min.y + self.max.y) / 2)
    }
}

/// A rectangular tile map with per-tile walkability and named areas.
///
/// Buildings are rectangles whose perimeter is wall except for one door
/// tile; interiors and all outdoor tiles are walkable. The original
/// SmallVille is 100×140 tiles; [`TileMap::smallville`] generates a
/// deterministic town of that size, and [`TileMap::concatenated`] lays `k`
/// copies side by side for the scaling experiments (paper §4.3:
/// "concatenating multiple SmallVilles into a single, large ville").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileMap {
    width: u32,
    height: u32,
    /// Row-major walkability bitmap.
    walkable: Vec<bool>,
    areas: Vec<Area>,
}

impl TileMap {
    /// An empty, fully walkable map.
    pub fn open(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "map must be non-empty");
        TileMap {
            width,
            height,
            walkable: vec![true; (width * height) as usize],
            areas: Vec::new(),
        }
    }

    /// Map width in tiles.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Map height in tiles.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Named areas, in creation order.
    pub fn areas(&self) -> &[Area] {
        &self.areas
    }

    /// Areas of a given kind.
    pub fn areas_of(&self, kind: AreaKind) -> Vec<&Area> {
        self.areas.iter().filter(|a| a.kind == kind).collect()
    }

    /// Whether `p` is inside the map and walkable.
    pub fn is_walkable(&self, p: Point) -> bool {
        self.in_bounds(p) && self.walkable[(p.y as u32 * self.width + p.x as u32) as usize]
    }

    /// Whether `p` is inside the map bounds.
    pub fn in_bounds(&self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as u32) < self.width && (p.y as u32) < self.height
    }

    fn set_walkable(&mut self, p: Point, w: bool) {
        if self.in_bounds(p) {
            self.walkable[(p.y as u32 * self.width + p.x as u32) as usize] = w;
        }
    }

    /// Adds a building: perimeter walls, one door, walkable interior.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is degenerate (needs ≥ 3×3 for an interior)
    /// or out of bounds.
    pub fn add_building(
        &mut self,
        name: impl Into<String>,
        kind: AreaKind,
        min: Point,
        max: Point,
    ) -> usize {
        assert!(
            max.x - min.x >= 2 && max.y - min.y >= 2,
            "building needs at least 3x3 tiles"
        );
        assert!(
            self.in_bounds(min) && self.in_bounds(max),
            "building out of bounds"
        );
        for x in min.x..=max.x {
            self.set_walkable(Point::new(x, min.y), false);
            self.set_walkable(Point::new(x, max.y), false);
        }
        for y in min.y..=max.y {
            self.set_walkable(Point::new(min.x, y), false);
            self.set_walkable(Point::new(max.x, y), false);
        }
        // Door at the middle of the south wall.
        let door = Point::new((min.x + max.x) / 2, max.y);
        self.set_walkable(door, true);
        self.areas.push(Area {
            name: name.into(),
            kind,
            min,
            max,
            door,
        });
        self.areas.len() - 1
    }

    /// Adds an open (wall-free) named area — parks, plazas — whose tiles
    /// keep their current walkability. `door` is the tile agents head to
    /// when routing to the area's entrance.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle or door is out of bounds.
    pub fn add_park(
        &mut self,
        name: impl Into<String>,
        min: Point,
        max: Point,
        door: Point,
    ) -> usize {
        assert!(
            self.in_bounds(min) && self.in_bounds(max) && self.in_bounds(door),
            "park out of bounds"
        );
        self.areas.push(Area {
            name: name.into(),
            kind: AreaKind::Park,
            min,
            max,
            door,
        });
        self.areas.len() - 1
    }

    /// Generates the deterministic SmallVille-like town: a 100×140 map with
    /// `houses` homes, a cafe, a bar, a park, a store, and two workplaces.
    ///
    /// # Panics
    ///
    /// Panics if `houses` exceeds the 40 lots the layout provides.
    pub fn smallville(houses: u32) -> Self {
        assert!(
            houses <= 40,
            "smallville supports at most 40 houses, asked for {houses}"
        );
        let mut map = TileMap::open(100, 140);
        // Residential rows: lots of 10×10 with a 7×7 house, 5 lots per row,
        // 8 rows available on the east side (x in 50..100).
        for i in 0..houses {
            let row = i / 5;
            let col = i % 5;
            let x0 = 51 + col as i32 * 10;
            let y0 = 11 + row as i32 * 16;
            map.add_building(
                format!("house {i}"),
                AreaKind::House,
                Point::new(x0, y0),
                Point::new(x0 + 6, y0 + 6),
            );
        }
        // Civic west side.
        map.add_building(
            "Hobbs Cafe",
            AreaKind::Cafe,
            Point::new(10, 10),
            Point::new(24, 22),
        );
        map.add_building(
            "The Rose Bar",
            AreaKind::Bar,
            Point::new(10, 40),
            Point::new(24, 52),
        );
        map.add_building(
            "Willow Store",
            AreaKind::Store,
            Point::new(10, 70),
            Point::new(22, 80),
        );
        map.add_building(
            "Oak Hill College",
            AreaKind::Work,
            Point::new(30, 96),
            Point::new(46, 112),
        );
        map.add_building(
            "Town Office",
            AreaKind::Work,
            Point::new(10, 96),
            Point::new(24, 112),
        );
        // The park is an open area (no walls), marked for schedules.
        map.add_park(
            "Johnson Park",
            Point::new(30, 30),
            Point::new(44, 60),
            Point::new(37, 60),
        );
        map
    }

    /// Lays `k` copies of `self` side by side along the x axis, renaming
    /// areas with a `v{i}:` prefix. Tiles, walls and doors are replicated;
    /// the copies share one connected outdoor space, so agents near a
    /// boundary *can* couple across villes — exactly the conservative
    /// false dependency the paper's scaling study exercises.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn concatenated(&self, k: u32) -> TileMap {
        assert!(k > 0, "need at least one ville");
        let mut out = TileMap::open(self.width * k, self.height);
        for v in 0..k {
            let dx = (v * self.width) as i32;
            for y in 0..self.height as i32 {
                for x in 0..self.width as i32 {
                    let p = Point::new(x, y);
                    out.set_walkable(
                        Point::new(x + dx, y),
                        self.is_walkable(p) || !self.in_bounds(p),
                    );
                }
            }
            for a in &self.areas {
                out.areas.push(Area {
                    name: format!("v{v}:{}", a.name),
                    kind: a.kind,
                    min: Point::new(a.min.x + dx, a.min.y),
                    max: Point::new(a.max.x + dx, a.max.y),
                    door: Point::new(a.door.x + dx, a.door.y),
                });
            }
        }
        out
    }

    /// The ville index (0-based) a point belongs to, given the single-ville
    /// width used for concatenation.
    pub fn ville_of(&self, p: Point, single_width: u32) -> u32 {
        (p.x.max(0) as u32) / single_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_map_is_walkable_everywhere() {
        let m = TileMap::open(10, 10);
        assert!(m.is_walkable(Point::new(0, 0)));
        assert!(m.is_walkable(Point::new(9, 9)));
        assert!(
            !m.is_walkable(Point::new(10, 9)),
            "out of bounds is not walkable"
        );
        assert!(!m.is_walkable(Point::new(-1, 0)));
    }

    #[test]
    fn building_walls_and_door() {
        let mut m = TileMap::open(20, 20);
        m.add_building("b", AreaKind::Work, Point::new(5, 5), Point::new(11, 11));
        // Corners are wall.
        assert!(!m.is_walkable(Point::new(5, 5)));
        assert!(!m.is_walkable(Point::new(11, 11)));
        // Interior is walkable.
        assert!(m.is_walkable(Point::new(8, 8)));
        // Door on the south wall.
        let door = m.areas()[0].door;
        assert_eq!(door, Point::new(8, 11));
        assert!(m.is_walkable(door));
    }

    #[test]
    fn smallville_has_expected_areas() {
        let m = TileMap::smallville(25);
        assert_eq!(m.width(), 100);
        assert_eq!(m.height(), 140);
        assert_eq!(m.areas_of(AreaKind::House).len(), 25);
        assert_eq!(m.areas_of(AreaKind::Cafe).len(), 1);
        assert_eq!(m.areas_of(AreaKind::Bar).len(), 1);
        assert_eq!(m.areas_of(AreaKind::Work).len(), 2);
        assert_eq!(m.areas_of(AreaKind::Park).len(), 1);
        // Park is open (anchor walkable, no walls).
        let park = m.areas_of(AreaKind::Park)[0];
        assert!(m.is_walkable(park.anchor()));
        assert!(m.is_walkable(park.min));
    }

    #[test]
    fn smallville_is_deterministic() {
        assert_eq!(TileMap::smallville(25), TileMap::smallville(25));
    }

    #[test]
    fn concatenation_replicates_and_offsets() {
        let one = TileMap::smallville(5);
        let four = one.concatenated(4);
        assert_eq!(four.width(), 400);
        assert_eq!(four.areas().len(), one.areas().len() * 4);
        // Walls replicate at the right offset.
        let cafe = &one.areas()[5];
        assert!(!one.is_walkable(cafe.min));
        assert!(!four.is_walkable(Point::new(cafe.min.x + 100, cafe.min.y)));
        // Names gain ville prefixes and ville_of resolves them.
        assert!(four.areas()[one.areas().len()].name.starts_with("v1:"));
        assert_eq!(four.ville_of(Point::new(250, 0), 100), 2);
    }

    #[test]
    fn area_contains_and_anchor() {
        let a = Area {
            name: "x".into(),
            kind: AreaKind::Park,
            min: Point::new(2, 2),
            max: Point::new(6, 8),
            door: Point::new(4, 8),
        };
        assert!(a.contains(Point::new(2, 2)));
        assert!(a.contains(Point::new(6, 8)));
        assert!(!a.contains(Point::new(7, 8)));
        assert_eq!(a.anchor(), Point::new(4, 5));
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn degenerate_building_rejected() {
        let mut m = TileMap::open(10, 10);
        m.add_building("bad", AreaKind::Work, Point::new(1, 1), Point::new(2, 2));
    }
}
