//! The assembled world: agents living a day in (possibly concatenated)
//! SmallVille.
//!
//! # Two-phase steps
//!
//! Executing an agent's step is split into a **pure plan** and a
//! **mutating commit**:
//!
//! * [`Village::plan_step`] reads only committed world state (positions,
//!   conversation states, schedules) plus a *stateless* per-`(agent, step)`
//!   RNG, and returns a [`StepPlan`] — the LLM calls to issue, the intended
//!   move, and buffered side effects;
//! * [`Village::commit_step`] applies a batch of plans atomically,
//!   resolving conflicts deterministically (lowest-id initiator wins a
//!   contested conversation).
//!
//! This mirrors the paper's worker loop (`agent.proceed` then
//! `world.resolve_conflict_and_commit`, Algorithm 3) and is what makes
//! out-of-order execution *outcome-equivalent* to lock-step: any schedule
//! that respects the §3.2 rules commits the same plans in the same
//! per-agent order, so world evolution is identical — a property the
//! integration tests verify.

use aim_core::space::Point;
use aim_core::workload::CallSpec;
use aim_llm::CallKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::conversation::{sample_turns, start_probability, CONV_COOLDOWN, CONV_RADIUS};
use crate::grid::TileMap;
use crate::memory::{MemoryKind, MemoryStream};
use crate::pathfind::astar;
use crate::persona::{generate_personas, Persona};
use crate::schedule::{ActivityKind, DailySchedule, ScheduleEntry};
use crate::scripted::{sample_call_tokens, SiteRng};

/// Configuration of a generated village.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VillageConfig {
    /// SmallVille copies laid side by side (paper §4.3 scaling).
    pub villes: u32,
    /// Agents per copy (25 in the paper).
    pub agents_per_ville: u32,
    /// Master seed; everything else derives from it.
    pub seed: u64,
}

impl Default for VillageConfig {
    fn default() -> Self {
        VillageConfig {
            villes: 1,
            agents_per_ville: 25,
            seed: 42,
        }
    }
}

impl VillageConfig {
    /// Total agent count.
    pub fn num_agents(&self) -> u32 {
        self.villes * self.agents_per_ville
    }
}

/// Things that happened during a commit (event log for tests/demos).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WorldEventKind {
    /// Agent got out of bed (morning planning chain fired).
    WokeUp,
    /// Agent went to sleep.
    Slept,
    /// A conversation between two agents began.
    ConversationStarted {
        /// The other participant.
        partner: u32,
    },
    /// A conversation ended (summaries written to memory).
    ConversationEnded {
        /// The other participant.
        partner: u32,
    },
    /// A reflection was synthesized.
    Reflected,
}

/// A committed world event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldEvent {
    /// Absolute step of the commit.
    pub step: u32,
    /// Acting agent.
    pub agent: u32,
    /// What happened.
    pub kind: WorldEventKind,
}

/// The buffered outcome of planning one agent-step (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct StepPlan {
    /// LLM calls to issue, in order (each waits for the previous).
    pub calls: Vec<CallSpec>,
    /// Position after the step commits.
    pub move_to: Point,
    pub(crate) new_path: Option<Vec<Point>>,
    /// One-step conversation held during this step: `(partner, turns)`.
    pub(crate) conv_full: Option<(u32, u32)>,
    pub(crate) memory_adds: Vec<(MemoryKind, f32, Vec<u32>)>,
    pub(crate) wake_change: Option<bool>,
    pub(crate) reflected: bool,
}

impl StepPlan {
    /// Whether this plan wakes the agent up (morning chain).
    pub fn wakes_up(&self) -> bool {
        self.wake_change == Some(true)
    }

    /// Whether this plan holds a full conversation (and with whom).
    pub fn conversation(&self) -> Option<(u32, u32)> {
        self.conv_full
    }

    fn stay(pos: Point) -> Self {
        StepPlan {
            calls: Vec::new(),
            move_to: pos,
            new_path: None,
            conv_full: None,
            memory_adds: Vec::new(),
            wake_change: None,
            reflected: false,
        }
    }
}

#[derive(Debug, Clone)]
struct AgentRt {
    persona: Persona,
    schedule: DailySchedule,
    pos: Point,
    /// Remaining tiles toward `target` (next tile first; `pos` excluded).
    path: Vec<Point>,
    target: Point,
    cooldown_until: u32,
    awake: bool,
    last_block_start: u32,
    memory: MemoryStream,
}

/// The world. See the module docs for the plan/commit protocol.
#[derive(Debug, Clone)]
pub struct Village {
    cfg: VillageConfig,
    map: TileMap,
    agents: Vec<AgentRt>,
    events: Vec<WorldEvent>,
    /// Spatial hash of committed positions (cell side [`BUCKET_CELL`]),
    /// so neighbor queries stay O(local density) at 1000 agents.
    buckets: std::collections::HashMap<(i32, i32), Vec<u32>>,
}

/// Spatial-hash cell side; ≥ the largest query radius used in planning.
const BUCKET_CELL: i32 = 8;

/// Version tag of the [`Village::capture_state`] encoding.
const STATE_VERSION: u32 = 1;

fn bucket_of(p: Point) -> (i32, i32) {
    (p.x.div_euclid(BUCKET_CELL), p.y.div_euclid(BUCKET_CELL))
}

// Perception tuning (see DESIGN.md §4.4 and the stats tests in aim-trace):
// chosen so a 25-agent day lands near the paper's 56.7k calls, and —
// just as important for scheduling studies — so per-step work is *bursty*:
// most agent-steps issue nothing, a few issue multi-call chains. That
// imbalance is what §2.2 identifies as the source of low parallelism
// under global synchronization.
const PERCEIVE_BASE: f32 = 0.085;
const PERCEIVE_PER_NEIGHBOR: f32 = 0.032;
const PERCEIVE_CAP: f32 = 0.38;
const AMBIENT_P: f32 = 0.085;
const REACT_RETRIEVE_P: f32 = 0.75;

// Salts for the stateless decision RNG.
const SALT_PERCEIVE: u32 = 1;
const SALT_TOKENS: u32 = 2;
const SALT_CONV: u32 = 3;
const SALT_REACT: u32 = 4;

impl Village {
    /// Generates a village from `cfg` (deterministic in the seed).
    pub fn generate(cfg: &VillageConfig) -> Self {
        let base = TileMap::smallville(cfg.agents_per_ville.min(40));
        let map = if cfg.villes > 1 {
            base.concatenated(cfg.villes)
        } else {
            base
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let personas = generate_personas(&map, cfg.num_agents(), &mut rng);
        let agents = personas
            .into_iter()
            .map(|persona| {
                let schedule = DailySchedule::generate(&map, &persona, &mut rng);
                let pos = Self::seat_static(&map, persona.id, persona.home_area);
                AgentRt {
                    pos,
                    target: pos,
                    path: Vec::new(),
                    cooldown_until: 0,
                    awake: false,
                    last_block_start: u32::MAX,
                    memory: MemoryStream::new(),
                    schedule,
                    persona,
                }
            })
            .collect();
        let mut village = Village {
            cfg: *cfg,
            map,
            agents,
            events: Vec::new(),
            buckets: Default::default(),
        };
        for i in 0..village.agents.len() {
            let pos = village.agents[i].pos;
            village
                .buckets
                .entry(bucket_of(pos))
                .or_default()
                .push(i as u32);
        }
        village
    }

    /// Assembles a world from an externally generated substrate — map
    /// and personas supplied by the caller instead of the SmallVille
    /// generator. This is how [`crate::city`] mounts an OpenCity-scale
    /// district map with a template-pool population on the village
    /// runtime (plan/commit, conversations, memory) unchanged.
    ///
    /// Schedules are derived deterministically from `seed` with the same
    /// generator SmallVille uses, so a substrate world is reproducible
    /// from `(seed, map, personas)`.
    ///
    /// Substrate worlds are marked with `villes == 0` in their config;
    /// they support everything except [`Village::capture_state`] /
    /// [`Village::restore`], whose encoding regenerates the substrate
    /// from a [`VillageConfig`] alone.
    ///
    /// # Panics
    ///
    /// Panics if `personas` is empty or references an area outside the
    /// map.
    pub fn from_substrate(seed: u64, map: TileMap, personas: Vec<Persona>) -> Self {
        assert!(!personas.is_empty(), "at least one persona is required");
        let cfg = VillageConfig {
            villes: 0,
            agents_per_ville: personas.len() as u32,
            seed,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
        let agents: Vec<AgentRt> = personas
            .into_iter()
            .map(|persona| {
                assert!(
                    persona.home_area < map.areas().len() && persona.work_area < map.areas().len(),
                    "persona {} references an area outside the map",
                    persona.id
                );
                let schedule = DailySchedule::generate(&map, &persona, &mut rng);
                let pos = Self::seat_static(&map, persona.id, persona.home_area);
                AgentRt {
                    pos,
                    target: pos,
                    path: Vec::new(),
                    cooldown_until: 0,
                    awake: false,
                    last_block_start: u32::MAX,
                    memory: MemoryStream::new(),
                    schedule,
                    persona,
                }
            })
            .collect();
        let mut village = Village {
            cfg,
            map,
            agents,
            events: Vec::new(),
            buckets: Default::default(),
        };
        for i in 0..village.agents.len() {
            let pos = village.agents[i].pos;
            village
                .buckets
                .entry(bucket_of(pos))
                .or_default()
                .push(i as u32);
        }
        village
    }

    /// The configuration used to generate the village (`villes == 0`
    /// marks a [`Village::from_substrate`] world).
    pub fn config(&self) -> &VillageConfig {
        &self.cfg
    }

    /// The tile map.
    pub fn map(&self) -> &TileMap {
        &self.map
    }

    /// A [`aim_core::space::GridSpace`] sized to this village's map —
    /// the space a scheduler over this world should be built with
    /// (multi-ville worlds concatenate east, so the width grows with
    /// `villes` and hand-written `GridSpace::new(100, 140)` would be
    /// wrong for them).
    pub fn space(&self) -> aim_core::space::GridSpace {
        aim_core::space::GridSpace::new(self.map.width(), self.map.height())
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// Current (committed) position of `agent`.
    pub fn pos(&self, agent: u32) -> Point {
        self.agents[agent as usize].pos
    }

    /// All committed positions, by agent id.
    pub fn positions(&self) -> Vec<Point> {
        self.agents.iter().map(|a| a.pos).collect()
    }

    /// The persona of `agent`.
    pub fn persona(&self, agent: u32) -> &Persona {
        &self.agents[agent as usize].persona
    }

    /// Step until which `agent` is on conversation cooldown.
    pub fn conversation_cooldown(&self, agent: u32) -> u32 {
        self.agents[agent as usize].cooldown_until
    }

    /// Committed world events so far, in canonical chronological order.
    ///
    /// The log is ordered by `(step, phase, agent)` — phase 0 being the
    /// per-agent wake/reflect updates and phase 1 the conversation
    /// commits — which is exactly the order a global lock-step run
    /// produces. Out-of-order executors commit clusters as they retire,
    /// so [`Village::commit_step`] re-canonicalizes on append; this is
    /// what makes the log comparable across scheduling policies.
    pub fn events(&self) -> &[WorldEvent] {
        &self.events
    }

    /// A deterministic per-agent spot inside an area's interior.
    fn seat_static(map: &TileMap, agent: u32, area_idx: usize) -> Point {
        let area = &map.areas()[area_idx];
        let w = (area.max.x - area.min.x - 1).max(1);
        let h = (area.max.y - area.min.y - 1).max(1);
        let hx = (agent as i32).wrapping_mul(31) & 0x7fff;
        let hy = (agent as i32).wrapping_mul(57) & 0x7fff;
        let p = Point::new(area.min.x + 1 + hx % w, area.min.y + 1 + hy % h);
        if map.is_walkable(p) {
            p
        } else {
            area.anchor()
        }
    }

    fn seat(&self, agent: u32, area_idx: usize) -> Point {
        Self::seat_static(&self.map, agent, area_idx)
    }

    /// Awake agents within `units` of `agent`'s committed position
    /// (excluding `agent`), sorted nearest-first then by id.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `units` exceeds the spatial-hash cell size, which
    /// would silently miss neighbors.
    pub fn neighbors_within(&self, agent: u32, units: u64) -> Vec<u32> {
        debug_assert!(
            units as i32 <= BUCKET_CELL,
            "query radius exceeds bucket cell"
        );
        let me = self.agents[agent as usize].pos;
        let (cx, cy) = bucket_of(me);
        let mut out: Vec<(u64, u32)> = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(ids) = self.buckets.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &i in ids {
                    if i == agent || !self.agents[i as usize].awake {
                        continue;
                    }
                    let d2 = me.dist2(self.agents[i as usize].pos);
                    if d2 <= units * units {
                        out.push((d2, i));
                    }
                }
            }
        }
        out.sort_unstable();
        out.into_iter().map(|(_, i)| i).collect()
    }

    /// Plans `agent`'s step `step` against committed state (pure; see
    /// module docs).
    pub fn plan_step(&self, agent: u32, step: u32) -> StepPlan {
        let a = &self.agents[agent as usize];
        let block: ScheduleEntry = a.schedule.at(step);
        let seed = self.cfg.seed;

        // --- Sleep / wake transitions -----------------------------------
        if block.kind == ActivityKind::Sleep {
            let mut plan = self.plan_movement(agent, block.area);
            if a.awake {
                plan.wake_change = Some(false);
            }
            return plan; // silent: no calls while heading to/being in bed
        }
        if !a.awake {
            // Wake up: morning chain (retrieve yesterday, plan the day).
            let mut plan = StepPlan::stay(a.pos);
            plan.wake_change = Some(true);
            let ctx = a.memory.context_tokens();
            let mut trng = SiteRng::new(seed, agent, step, SALT_TOKENS);
            // Morning chain: recall yesterday, then draft the day plan and
            // decompose it (GenAgent plans hierarchically: day → hourly).
            for kind in [
                CallKind::Retrieve,
                CallKind::Plan,
                CallKind::Plan,
                CallKind::Plan,
            ] {
                let (i, o) = sample_call_tokens(&mut trng, kind, ctx, 0);
                plan.calls.push(CallSpec::new(i, o, kind));
            }
            plan.memory_adds.push((MemoryKind::Plan, 4.0, vec![agent]));
            return plan;
        }

        // --- Movement toward the scheduled area --------------------------
        let mut plan = self.plan_movement(agent, block.area);
        let ctx = a.memory.context_tokens();
        let mut trng = SiteRng::new(seed, agent, step, SALT_TOKENS);

        // --- Activity boundary: re-planning chain -------------------------
        if a.last_block_start != block.start {
            for kind in [CallKind::Retrieve, CallKind::Plan] {
                let (i, o) = sample_call_tokens(&mut trng, kind, ctx, 0);
                plan.calls.push(CallSpec::new(i, o, kind));
            }
            plan.memory_adds.push((MemoryKind::Plan, 3.0, vec![agent]));
        }

        // --- Perception ---------------------------------------------------
        let neighbors = self.neighbors_within(agent, 4); // radius_p
        let crowd = neighbors.len().min(5) as f32;
        let p = if neighbors.is_empty() {
            AMBIENT_P * Self::perceive_factor(block.kind) * 0.5
        } else {
            ((PERCEIVE_BASE + PERCEIVE_PER_NEIGHBOR * crowd) * Self::perceive_factor(block.kind))
                .min(PERCEIVE_CAP)
        };
        let mut prng = SiteRng::new(seed, agent, step, SALT_PERCEIVE);
        if prng.unit() < p {
            let (i, o) = sample_call_tokens(&mut trng, CallKind::Perceive, ctx, 0);
            plan.calls.push(CallSpec::new(i, o, CallKind::Perceive));
            let kws: Vec<u32> = neighbors.iter().take(3).copied().collect();
            plan.memory_adds
                .push((MemoryKind::Observation, 1.0 + 2.0 * prng.unit(), kws));
            // Perceived events usually warrant reactions: retrieve related
            // memories (often for several perceived events), and half the
            // time also decide on an action — GenAgent's react path. This
            // makes active steps multi-call chains, reproducing the heavy
            // per-step imbalance of Fig. 1.
            let mut rrng = SiteRng::new(seed, agent, step, SALT_REACT);
            if rrng.unit() < REACT_RETRIEVE_P {
                let extra_retrieves = 1 + (rrng.unit() * 2.0) as u32; // 1-2
                for _ in 0..extra_retrieves {
                    let (i, o) = sample_call_tokens(&mut trng, CallKind::Retrieve, ctx, 0);
                    plan.calls.push(CallSpec::new(i, o, CallKind::Retrieve));
                }
                if rrng.unit() < 0.55 {
                    let (i, o) = sample_call_tokens(&mut trng, CallKind::Plan, ctx, 0);
                    plan.calls.push(CallSpec::new(i, o, CallKind::Plan));
                }
            }
        }

        // --- Reflection ----------------------------------------------------
        // GenAgent reflections are multi-question trees: generate focal
        // questions, retrieve evidence for each, then synthesize insights.
        // The resulting 5-call chain is one of the longest non-conversation
        // chains in the workload (a Fig. 1 "straggler").
        if a.memory.should_reflect() {
            for kind in [
                CallKind::Plan, // focal questions
                CallKind::Retrieve,
                CallKind::Retrieve,
                CallKind::Reflect,
                CallKind::Reflect,
            ] {
                let (i, o) = sample_call_tokens(&mut trng, kind, ctx, 0);
                plan.calls.push(CallSpec::new(i, o, kind));
            }
            plan.reflected = true;
        }

        // --- Conversation initiation ---------------------------------------
        if step >= a.cooldown_until {
            let social = block.kind.social_factor();
            if social > 0.0 {
                let candidates: Vec<u32> = self
                    .neighbors_within(agent, CONV_RADIUS)
                    .into_iter()
                    .filter(|&c| step >= self.agents[c as usize].cooldown_until)
                    .collect();
                if let Some(&cand) = candidates.first() {
                    let p =
                        start_probability(a.persona.chattiness, a.persona.is_friend(cand), social);
                    let mut crng = SiteRng::new(seed, agent, step, SALT_CONV);
                    if crng.unit() < p {
                        // GenAgent resolves a whole dialogue within the
                        // step: alternating utterances form one long
                        // sequential chain (the Fig. 1 stragglers that
                        // dominate the busy hour), closed by a summary.
                        let turns = sample_turns(crng.unit());
                        for turn in 0..turns {
                            let (i, o) =
                                sample_call_tokens(&mut trng, CallKind::Converse, ctx, turn);
                            plan.calls.push(CallSpec::new(i, o, CallKind::Converse));
                        }
                        let (i, o) = sample_call_tokens(&mut trng, CallKind::Summarize, ctx, 0);
                        plan.calls.push(CallSpec::new(i, o, CallKind::Summarize));
                        plan.conv_full = Some((cand, turns));
                        plan.memory_adds
                            .push((MemoryKind::Conversation, 6.0, vec![agent, cand]));
                        // Stay put to talk.
                        plan.move_to = a.pos;
                        plan.new_path = None;
                    }
                }
            }
        }
        plan
    }

    fn perceive_factor(kind: ActivityKind) -> f32 {
        match kind {
            ActivityKind::Sleep => 0.0,
            ActivityKind::Home => 1.1,
            ActivityKind::Work => 1.0,
            ActivityKind::Lunch => 1.8,
            ActivityKind::Shop => 1.2,
            ActivityKind::Social => 1.2,
        }
    }

    /// Movement half of a plan: follow (or recompute) the path toward the
    /// agent's seat in `area_idx`, advancing at most one tile (max_vel=1).
    fn plan_movement(&self, agent: u32, area_idx: usize) -> StepPlan {
        let a = &self.agents[agent as usize];
        let seat = self.seat(agent, area_idx);
        if a.pos == seat {
            return StepPlan::stay(a.pos);
        }
        // Reuse the cached path when it still leads to the right target.
        if a.target == seat {
            if let Some(&next) = a.path.first() {
                if a.pos.manhattan(next) == 1 && self.map.is_walkable(next) {
                    let mut plan = StepPlan::stay(next);
                    plan.move_to = next;
                    return plan;
                }
            }
        }
        // (Re)plan.
        match astar(&self.map, a.pos, seat) {
            Some(path) if path.len() >= 2 => {
                let tail: Vec<Point> = path[1..].to_vec();
                let mut plan = StepPlan::stay(tail[0]);
                plan.new_path = Some(tail);
                plan
            }
            _ => StepPlan::stay(a.pos), // unreachable seat: stay put
        }
    }

    /// Applies a batch of plans for `step` atomically (see module docs).
    ///
    /// Plans are applied in ascending agent order; contested conversation
    /// initiations resolve toward the lowest initiator id, and initiations
    /// whose partner is not part of this batch are dropped (the engine's
    /// coupling rules guarantee partners share a cluster, so this only
    /// fires under deliberately unsound policies).
    ///
    /// Returns the events committed.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range or appears twice.
    pub fn commit_step(&mut self, step: u32, plans: &[(u32, StepPlan)]) -> Vec<WorldEvent> {
        let mut order: Vec<usize> = (0..plans.len()).collect();
        order.sort_by_key(|&i| plans[i].0);
        for w in order.windows(2) {
            assert_ne!(
                plans[w[0]].0, plans[w[1]].0,
                "duplicate agent in commit batch"
            );
        }
        let mut events = Vec::new();
        let Village {
            agents, buckets, ..
        } = self;
        for &i in &order {
            let (agent, plan) = &plans[i];
            let block_start = agents[*agent as usize].schedule.at(step).start;
            let a = &mut agents[*agent as usize];
            if let Some(awake) = plan.wake_change {
                a.awake = awake;
                events.push(WorldEvent {
                    step,
                    agent: *agent,
                    kind: if awake {
                        WorldEventKind::WokeUp
                    } else {
                        WorldEventKind::Slept
                    },
                });
            }
            if let Some(path) = &plan.new_path {
                a.path = path.clone();
                a.target = *path.last().expect("paths are non-empty");
            }
            if plan.move_to != a.pos {
                let (old_b, new_b) = (bucket_of(a.pos), bucket_of(plan.move_to));
                a.pos = plan.move_to;
                if a.path.first() == Some(&plan.move_to) {
                    a.path.remove(0);
                }
                if old_b != new_b {
                    let cell = buckets.get_mut(&old_b).expect("agent was indexed");
                    cell.retain(|&x| x != *agent);
                    buckets.entry(new_b).or_default().push(*agent);
                }
            }
            for (kind, importance, kws) in &plan.memory_adds {
                a.memory.observe(step, *kind, *importance, kws.clone());
            }
            if plan.reflected {
                a.memory.reflect(step, vec![*agent]);
                events.push(WorldEvent {
                    step,
                    agent: *agent,
                    kind: WorldEventKind::Reflected,
                });
            }
            a.last_block_start = block_start;
        }
        // Conversation commits after all individual updates, lowest
        // initiator first (deterministic conflict resolution: a partner
        // already engaged this step declines later initiations).
        for &i in &order {
            let (agent, plan) = &plans[i];
            let Some((partner, _turns)) = plan.conv_full else {
                continue;
            };
            let partner_in_batch = plans.iter().any(|(a2, _)| *a2 == partner);
            if !partner_in_batch {
                continue;
            }
            if !self.agents[partner as usize].awake {
                continue;
            }
            // Both sides go on cooldown; the partner remembers the chat.
            self.agents[*agent as usize].cooldown_until = step + CONV_COOLDOWN;
            self.agents[partner as usize].cooldown_until = step + CONV_COOLDOWN;
            let kws = vec![*agent, partner];
            self.agents[partner as usize]
                .memory
                .observe(step, MemoryKind::Conversation, 6.0, kws);
            events.push(WorldEvent {
                step,
                agent: *agent,
                kind: WorldEventKind::ConversationStarted { partner },
            });
            events.push(WorldEvent {
                step,
                agent: *agent,
                kind: WorldEventKind::ConversationEnded { partner },
            });
        }
        // Keep the log in canonical `(step, phase, agent)` order (see
        // `events()`): out-of-order executors commit clusters as they
        // retire, so a batch may land behind already-logged events from
        // agents that ran ahead. The batch itself is produced in
        // canonical order, so appending preserves the invariant unless
        // the first new key sorts before the current tail; the sort is
        // stable, keeping an agent's wake-before-reflect (and a
        // conversation's start-before-end) production order.
        fn key(e: &WorldEvent) -> (u32, u8, u32) {
            let phase = match e.kind {
                WorldEventKind::ConversationStarted { .. }
                | WorldEventKind::ConversationEnded { .. } => 1,
                _ => 0,
            };
            (e.step, phase, e.agent)
        }
        let out_of_order = match (self.events.last(), events.first()) {
            (Some(tail), Some(first)) => key(first) < key(tail),
            _ => false,
        };
        self.events.extend(events.iter().copied());
        if out_of_order {
            self.events.sort_by_key(key);
        }
        events
    }

    /// Serializes the village's **mutable runtime state** — everything
    /// [`Village::generate`] cannot rederive from the config — into the
    /// checkpoint world-section bytes read back by [`Village::restore`].
    ///
    /// Captured per agent: committed position, movement target and
    /// remaining path, conversation cooldown, wakefulness, the current
    /// activity-block marker, and the full memory stream (entries plus
    /// the reflection accumulator). Plus the committed world-event log.
    /// Personas, schedules, and the tile map are deterministic functions
    /// of [`VillageConfig`] (embedded in the header) and are regenerated
    /// on restore; the spatial hash is rebuilt from positions.
    ///
    /// The encoding is hand-written (the serde derives in this workspace
    /// are structural annotations only): version-tagged, big-endian,
    /// using [`aim_store::codec`].
    ///
    /// # Panics
    ///
    /// Panics on a [`Village::from_substrate`] world — its map and
    /// personas are not derivable from the config, so the encoding could
    /// not be restored.
    pub fn capture_state(&self) -> bytes::Bytes {
        assert!(
            self.cfg.villes > 0,
            "substrate-backed villages do not support capture_state \
             (their map/personas are not derivable from the config)"
        );
        use aim_store::codec::{put_u32, put_u64};
        let mut buf = bytes::BytesMut::new();
        put_u32(&mut buf, STATE_VERSION);
        put_u32(&mut buf, self.cfg.villes);
        put_u32(&mut buf, self.cfg.agents_per_ville);
        put_u64(&mut buf, self.cfg.seed);
        put_u32(&mut buf, self.agents.len() as u32);
        let put_point = |buf: &mut bytes::BytesMut, p: Point| {
            aim_store::codec::put_i32(buf, p.x);
            aim_store::codec::put_i32(buf, p.y);
        };
        for a in &self.agents {
            put_point(&mut buf, a.pos);
            put_point(&mut buf, a.target);
            put_u32(&mut buf, a.path.len() as u32);
            for p in &a.path {
                put_point(&mut buf, *p);
            }
            put_u32(&mut buf, a.cooldown_until);
            put_u32(&mut buf, a.awake as u32);
            put_u32(&mut buf, a.last_block_start);
            put_u32(&mut buf, a.memory.since_reflection().to_bits());
            put_u32(&mut buf, a.memory.len() as u32);
            for e in a.memory.entries() {
                put_u32(&mut buf, e.step);
                put_u32(&mut buf, e.kind.code() as u32);
                put_u32(&mut buf, e.importance.to_bits());
                aim_store::codec::put_u32_list(&mut buf, &e.keywords);
            }
        }
        put_u32(&mut buf, self.events.len() as u32);
        for ev in &self.events {
            put_u32(&mut buf, ev.step);
            put_u32(&mut buf, ev.agent);
            let (code, partner) = match ev.kind {
                WorldEventKind::WokeUp => (0, 0),
                WorldEventKind::Slept => (1, 0),
                WorldEventKind::ConversationStarted { partner } => (2, partner),
                WorldEventKind::ConversationEnded { partner } => (3, partner),
                WorldEventKind::Reflected => (4, 0),
            };
            put_u32(&mut buf, code);
            put_u32(&mut buf, partner);
        }
        buf.freeze()
    }

    /// Rebuilds a village from [`Village::capture_state`] bytes: the
    /// embedded config regenerates the deterministic substrate, then the
    /// captured runtime state is applied on top. The result is
    /// plan-for-plan identical to the village that was captured.
    ///
    /// # Errors
    ///
    /// Returns [`aim_store::StoreError::Codec`] on truncated or malformed
    /// input or an unsupported state version.
    pub fn restore(state: &bytes::Bytes) -> Result<Self, aim_store::StoreError> {
        use aim_store::codec::{get_u32, get_u64};
        use aim_store::StoreError;
        let mut rd = state.clone();
        let version = get_u32(&mut rd)?;
        if version != STATE_VERSION {
            return Err(StoreError::Codec(format!(
                "unsupported village state version {version} (expected {STATE_VERSION})"
            )));
        }
        let cfg = VillageConfig {
            villes: get_u32(&mut rd)?,
            agents_per_ville: get_u32(&mut rd)?,
            seed: get_u64(&mut rd)?,
        };
        let mut village = Village::generate(&cfg);
        let n = get_u32(&mut rd)? as usize;
        if n != village.agents.len() {
            return Err(StoreError::Codec(format!(
                "state names {n} agents but the config generates {}",
                village.agents.len()
            )));
        }
        let get_point = |rd: &mut bytes::Bytes| -> Result<Point, StoreError> {
            let x = aim_store::codec::get_i32(rd)?;
            let y = aim_store::codec::get_i32(rd)?;
            Ok(Point::new(x, y))
        };
        for a in village.agents.iter_mut() {
            a.pos = get_point(&mut rd)?;
            a.target = get_point(&mut rd)?;
            let path_len = get_u32(&mut rd)? as usize;
            a.path = (0..path_len)
                .map(|_| get_point(&mut rd))
                .collect::<Result<_, _>>()?;
            a.cooldown_until = get_u32(&mut rd)?;
            a.awake = get_u32(&mut rd)? != 0;
            a.last_block_start = get_u32(&mut rd)?;
            let since_reflection = f32::from_bits(get_u32(&mut rd)?);
            let entries_len = get_u32(&mut rd)? as usize;
            let mut entries = Vec::with_capacity(entries_len.min(1 << 16));
            for _ in 0..entries_len {
                let step = get_u32(&mut rd)?;
                let code = get_u32(&mut rd)?;
                let kind = MemoryKind::from_code(code as u8)
                    .ok_or_else(|| StoreError::Codec(format!("unknown memory kind code {code}")))?;
                let importance = f32::from_bits(get_u32(&mut rd)?);
                let keywords = aim_store::codec::get_u32_list(&mut rd)?;
                entries.push(crate::memory::MemoryEntry {
                    step,
                    kind,
                    importance,
                    keywords,
                });
            }
            a.memory = MemoryStream::from_parts(entries, since_reflection);
        }
        let events_len = get_u32(&mut rd)? as usize;
        village.events.clear();
        for _ in 0..events_len {
            let step = get_u32(&mut rd)?;
            let agent = get_u32(&mut rd)?;
            let code = get_u32(&mut rd)?;
            let partner = get_u32(&mut rd)?;
            let kind = match code {
                0 => WorldEventKind::WokeUp,
                1 => WorldEventKind::Slept,
                2 => WorldEventKind::ConversationStarted { partner },
                3 => WorldEventKind::ConversationEnded { partner },
                4 => WorldEventKind::Reflected,
                _ => {
                    return Err(StoreError::Codec(format!(
                        "unknown world event code {code}"
                    )))
                }
            };
            village.events.push(WorldEvent { step, agent, kind });
        }
        if !rd.is_empty() {
            return Err(StoreError::Codec(format!(
                "{} trailing bytes in village state",
                rd.len()
            )));
        }
        // Rebuild the derived spatial hash from the restored positions.
        village.buckets.clear();
        for i in 0..village.agents.len() {
            let pos = village.agents[i].pos;
            village
                .buckets
                .entry(bucket_of(pos))
                .or_default()
                .push(i as u32);
        }
        Ok(village)
    }

    /// In-place form of [`Village::restore`]: replaces this village's
    /// runtime state with the captured one.
    ///
    /// # Errors
    ///
    /// As [`Village::restore`], plus a codec error if the state was
    /// captured from a village with a different [`VillageConfig`] — the
    /// substrate (map, personas, schedules) is derived from the config,
    /// so cross-config restores would silently mix worlds.
    pub fn restore_state(&mut self, state: &bytes::Bytes) -> Result<(), aim_store::StoreError> {
        let restored = Village::restore(state)?;
        if restored.cfg != self.cfg {
            return Err(aim_store::StoreError::Codec(format!(
                "state belongs to config {:?}, this village is {:?}",
                restored.cfg, self.cfg
            )));
        }
        *self = restored;
        Ok(())
    }

    /// Runs the world in global lock-step over `[start, end)`, invoking
    /// `sink(step, agent, plan, new_pos)` for every agent-step — the
    /// self-play loop used for trace synthesis.
    pub fn run_lockstep(
        &mut self,
        start: u32,
        end: u32,
        mut sink: impl FnMut(u32, u32, &StepPlan, Point),
    ) {
        for step in start..end {
            let plans: Vec<(u32, StepPlan)> = (0..self.agents.len() as u32)
                .map(|a| (a, self.plan_step(a, step)))
                .collect();
            self.commit_step(step, &plans);
            for (agent, plan) in &plans {
                sink(step, *agent, plan, self.agents[*agent as usize].pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clock_to_step, STEPS_PER_HOUR};

    fn village() -> Village {
        Village::generate(&VillageConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = village();
        let b = village();
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.persona(3), b.persona(3));
    }

    #[test]
    fn agents_start_asleep_at_home() {
        let v = village();
        for agent in 0..v.num_agents() as u32 {
            let home = v.persona(agent).home_area;
            let area = &v.map().areas()[home];
            assert!(
                area.contains(v.pos(agent)),
                "{agent} must start in its home"
            );
            assert!(!v.agents[agent as usize].awake);
        }
    }

    #[test]
    fn night_steps_emit_no_calls() {
        let mut v = village();
        let mut calls = 0u64;
        let start = clock_to_step(2, 0);
        v.run_lockstep(start, start + 30, |_, _, plan, _| {
            calls += plan.calls.len() as u64
        });
        assert_eq!(calls, 0, "2am: everyone asleep, no LLM traffic");
    }

    #[test]
    fn morning_wakes_emit_planning_chains() {
        let mut v = village();
        let mut wakes = 0;
        let mut chains = 0;
        v.run_lockstep(clock_to_step(5, 0), clock_to_step(9, 0), |_, _, plan, _| {
            if plan.wake_change == Some(true) {
                wakes += 1;
                assert_eq!(plan.calls.len(), 4, "wake chain = retrieve + 3 plans");
                chains += 1;
            }
        });
        assert_eq!(wakes, 25, "everyone wakes between 5am and 9am");
        assert_eq!(chains, 25);
    }

    #[test]
    fn agents_reach_work_by_late_morning() {
        let mut v = village();
        v.run_lockstep(0, clock_to_step(11, 0), |_, _, _, _| {});
        let mut at_work = 0;
        for agent in 0..25u32 {
            let work = v.persona(agent).work_area;
            if v.map().areas()[work].contains(v.pos(agent)) {
                at_work += 1;
            }
        }
        assert!(
            at_work >= 20,
            "most agents should be at work by 11am, got {at_work}"
        );
    }

    #[test]
    fn movement_respects_max_vel_and_walls() {
        let mut v = village();
        let mut prev = v.positions();
        v.run_lockstep(
            clock_to_step(8, 0),
            clock_to_step(8, 0) + 120,
            |step, agent, _, new| {
                let old = prev[agent as usize];
                assert!(
                    old.manhattan(new) <= 1,
                    "agent {agent} jumped {old} → {new} at step {step}"
                );
                assert!(
                    v_is_walkable_proxy(new),
                    "agent {agent} stood on a wall at {new}"
                );
                prev[agent as usize] = new;
            },
        );
        // Walkability re-checked against a fresh map (v is borrowed in the closure).
        fn v_is_walkable_proxy(p: Point) -> bool {
            TileMap::smallville(25).is_walkable(p)
        }
    }

    #[test]
    fn lunch_hour_produces_conversations() {
        let mut v = village();
        v.run_lockstep(0, clock_to_step(13, 30), |_, _, _, _| {});
        let started = v
            .events()
            .iter()
            .filter(|e| matches!(e.kind, WorldEventKind::ConversationStarted { .. }))
            .count();
        assert!(
            started >= 3,
            "a day through lunch should spark conversations, got {started}"
        );
        // Conversations happened between nearby agents and produced calls.
        let conv_calls = v
            .events()
            .iter()
            .any(|e| matches!(e.kind, WorldEventKind::ConversationEnded { .. }));
        assert!(conv_calls, "at least one conversation should have ended");
    }

    #[test]
    fn busy_hour_is_busier_than_quiet_hour() {
        let mut v = village();
        let mut by_window = [0u64; 2];
        let quiet = clock_to_step(6, 0)..clock_to_step(7, 0);
        let busy = clock_to_step(12, 0)..clock_to_step(13, 0);
        v.run_lockstep(0, clock_to_step(14, 0), |step, _, plan, _| {
            if quiet.contains(&step) {
                by_window[0] += plan.calls.len() as u64;
            } else if busy.contains(&step) {
                by_window[1] += plan.calls.len() as u64;
            }
        });
        assert!(
            by_window[1] > by_window[0] * 2,
            "busy hour ({}) must far exceed quiet hour ({})",
            by_window[1],
            by_window[0]
        );
    }

    #[test]
    fn conversations_form_one_step_chains() {
        let mut v = village();
        // (step, agent, #converse, #summarize) per initiation plan.
        let mut chains: Vec<(u32, u32, usize, usize)> = Vec::new();
        v.run_lockstep(0, clock_to_step(13, 0), |step, agent, plan, _| {
            if plan.conv_full.is_some() {
                let conv = plan
                    .calls
                    .iter()
                    .filter(|c| c.kind == CallKind::Converse)
                    .count();
                let summ = plan
                    .calls
                    .iter()
                    .filter(|c| c.kind == CallKind::Summarize)
                    .count();
                chains.push((step, agent, conv, summ));
            }
        });
        let started: Vec<WorldEvent> = v
            .events()
            .iter()
            .filter(|e| matches!(e.kind, WorldEventKind::ConversationStarted { .. }))
            .copied()
            .collect();
        assert!(
            !started.is_empty(),
            "a morning through lunch should start a conversation"
        );
        for ev in &started {
            // The initiator's step plan carries the whole alternating
            // dialogue: ≥3 utterances plus one closing summary.
            let chain = chains
                .iter()
                .find(|(s, a, _, _)| *s == ev.step && *a == ev.agent)
                .expect("initiator planned a conversation chain");
            assert!(chain.2 >= 3, "dialogue too short: {chain:?}");
            assert_eq!(chain.3, 1, "exactly one summary per conversation");
        }
        // Cooldown: the initiator of the first conversation is on cooldown.
        let first = started[0];
        assert!(v.conversation_cooldown(first.agent) > first.step);
    }

    #[test]
    fn capture_restore_roundtrips_a_lived_in_world() {
        let mut v = village();
        // Run through a busy morning so every state field is exercised:
        // wakes, paths mid-flight, conversations, memories, cooldowns.
        v.run_lockstep(0, clock_to_step(12, 30), |_, _, _, _| {});
        assert!(!v.events().is_empty());
        let state = v.capture_state();
        let r = Village::restore(&state).unwrap();
        assert_eq!(r.positions(), v.positions());
        assert_eq!(r.events(), v.events());
        for agent in 0..v.num_agents() as u32 {
            assert_eq!(
                r.conversation_cooldown(agent),
                v.conversation_cooldown(agent)
            );
            assert_eq!(
                r.agents[agent as usize].memory, v.agents[agent as usize].memory,
                "agent {agent} memory diverged"
            );
            assert_eq!(r.agents[agent as usize].path, v.agents[agent as usize].path);
            assert_eq!(
                r.agents[agent as usize].awake,
                v.agents[agent as usize].awake
            );
        }
        // The restored world *behaves* identically, not just looks it:
        // continue both half an hour and compare everything again.
        let mut live = v.clone();
        let mut restored = r;
        let end = clock_to_step(13, 0);
        live.run_lockstep(clock_to_step(12, 30), end, |_, _, _, _| {});
        restored.run_lockstep(clock_to_step(12, 30), end, |_, _, _, _| {});
        assert_eq!(live.positions(), restored.positions());
        assert_eq!(live.events(), restored.events());
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let v = village();
        let state = v.capture_state();
        assert!(Village::restore(&state.slice(..state.len() - 2)).is_err());
        let mut wrong_version = state.to_vec();
        wrong_version[3] = 99;
        assert!(Village::restore(&bytes::Bytes::from(wrong_version)).is_err());
    }

    #[test]
    fn restore_state_in_place_and_config_guard() {
        let mut v = village();
        v.run_lockstep(0, clock_to_step(9, 0), |_, _, _, _| {});
        let state = v.capture_state();
        let mut fresh = village();
        fresh.restore_state(&state).unwrap();
        assert_eq!(fresh.positions(), v.positions());
        assert_eq!(fresh.events(), v.events());
        // A different config must be rejected, not silently mixed.
        let mut other = Village::generate(&VillageConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 1,
        });
        assert!(other.restore_state(&state).is_err());
    }

    #[test]
    fn plan_is_pure() {
        let v = village();
        let step = clock_to_step(9, 0);
        let p1 = v.plan_step(3, step);
        let p2 = v.plan_step(3, step);
        assert_eq!(
            p1, p2,
            "plan_step must be deterministic and side-effect free"
        );
    }

    #[test]
    fn commit_rejects_duplicate_agents() {
        let mut v = village();
        let plan = v.plan_step(0, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            v.commit_step(0, &[(0, plan.clone()), (0, plan.clone())]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn one_hour_runs_quickly_and_produces_calls() {
        let mut v = village();
        let mut calls = 0u64;
        v.run_lockstep(
            clock_to_step(8, 0),
            clock_to_step(8, 0) + STEPS_PER_HOUR,
            |_, _, p, _| calls += p.calls.len() as u64,
        );
        // Note: agents were never woken (we skipped the morning), so this
        // measures wake-chain + work-hour traffic after a cold start.
        assert!(
            calls > 100,
            "an active hour must produce traffic, got {calls}"
        );
    }
}
