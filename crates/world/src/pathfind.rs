//! A* pathfinding over walkable tiles (4-connected, Manhattan heuristic).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use aim_core::space::Point;

use crate::grid::TileMap;

/// Finds a shortest 4-connected walkable path from `from` to `to`
/// (inclusive of both endpoints). Returns `None` when unreachable or when
/// either endpoint is not walkable.
///
/// The returned path starts at `from`; following one element per step obeys
/// the world's `max_vel = 1` movement rule.
///
/// # Example
///
/// ```
/// use aim_core::space::Point;
/// use aim_world::grid::TileMap;
/// use aim_world::pathfind::astar;
///
/// let map = TileMap::open(10, 10);
/// let path = astar(&map, Point::new(0, 0), Point::new(3, 0)).unwrap();
/// assert_eq!(path.len(), 4); // 0,0 → 1,0 → 2,0 → 3,0
/// ```
pub fn astar(map: &TileMap, from: Point, to: Point) -> Option<Vec<Point>> {
    if !map.is_walkable(from) || !map.is_walkable(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let w = map.width() as usize;
    let h = map.height() as usize;
    let idx = |p: Point| p.y as usize * w + p.x as usize;
    const UNSEEN: u32 = u32::MAX;
    let mut g = vec![UNSEEN; w * h];
    let mut parent = vec![u32::MAX; w * h];
    let mut heap: BinaryHeap<Reverse<(u32, u32, Point)>> = BinaryHeap::new();
    g[idx(from)] = 0;
    heap.push(Reverse((from.manhattan(to), 0, from)));
    while let Some(Reverse((_, cost, p))) = heap.pop() {
        if p == to {
            // Reconstruct.
            let mut path = vec![to];
            let mut cur = idx(to);
            while parent[cur] != u32::MAX {
                cur = parent[cur] as usize;
                path.push(Point::new((cur % w) as i32, (cur / w) as i32));
            }
            path.reverse();
            return Some(path);
        }
        if cost > g[idx(p)] {
            continue; // stale heap entry
        }
        // Neighbor order fixed (E, W, S, N) for determinism.
        for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
            let n = Point::new(p.x + dx, p.y + dy);
            if !map.is_walkable(n) {
                continue;
            }
            let ncost = cost + 1;
            if ncost < g[idx(n)] {
                g[idx(n)] = ncost;
                parent[idx(n)] = idx(p) as u32;
                heap.push(Reverse((ncost + n.manhattan(to), ncost, n)));
            }
        }
    }
    None
}

/// Shortest walkable distance in steps, if reachable ([`astar`] length − 1).
pub fn path_len(map: &TileMap, from: Point, to: Point) -> Option<u32> {
    astar(map, from, to).map(|p| (p.len() - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::AreaKind;

    #[test]
    fn straight_line_is_optimal() {
        let m = TileMap::open(20, 20);
        let p = astar(&m, Point::new(2, 3), Point::new(9, 3)).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p[0], Point::new(2, 3));
        assert_eq!(p[7], Point::new(9, 3));
        // Consecutive points are 4-adjacent.
        for pair in p.windows(2) {
            assert_eq!(pair[0].manhattan(pair[1]), 1);
        }
    }

    #[test]
    fn routes_around_walls_through_door() {
        let mut m = TileMap::open(30, 30);
        m.add_building("b", AreaKind::Work, Point::new(10, 10), Point::new(20, 20));
        let inside = Point::new(15, 15);
        let outside = Point::new(0, 15);
        let path = astar(&m, outside, inside).unwrap();
        let door = m.areas()[0].door;
        assert!(path.contains(&door), "must enter through the door");
        // And the path length beats the naive manhattan (walls force a detour).
        assert!(path.len() as u32 > outside.manhattan(inside));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut sealed = TileMap::open(9, 9);
        sealed.add_building("box", AreaKind::Work, Point::new(3, 3), Point::new(6, 6));
        // A wall tile itself is not walkable → None.
        assert!(astar(&sealed, Point::new(0, 0), Point::new(3, 3)).is_none());
    }

    #[test]
    fn degenerate_cases() {
        let m = TileMap::open(5, 5);
        assert_eq!(
            astar(&m, Point::new(2, 2), Point::new(2, 2)).unwrap().len(),
            1
        );
        assert!(astar(&m, Point::new(-1, 0), Point::new(2, 2)).is_none());
        assert_eq!(path_len(&m, Point::new(0, 0), Point::new(4, 4)), Some(8));
    }

    #[test]
    fn deterministic_paths() {
        let m = TileMap::smallville(10);
        let a = m.areas()[0].door;
        let b = m.areas_of(AreaKind::Cafe)[0].door;
        assert_eq!(astar(&m, a, b), astar(&m, a, b));
    }

    #[test]
    fn all_smallville_doors_are_mutually_reachable() {
        let m = TileMap::smallville(25);
        let doors: Vec<Point> = m.areas().iter().map(|a| a.door).collect();
        let hub = doors[0];
        for d in &doors {
            assert!(
                path_len(&m, hub, *d).is_some(),
                "door {d} unreachable from {hub}"
            );
        }
    }
}
