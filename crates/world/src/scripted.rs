//! The "scripted LLM": deterministic decisions and token-length sampling.
//!
//! Self-play trace generation needs an LLM stand-in for two things: (1)
//! behavioral decisions (start a conversation? how many turns?) and (2)
//! realistic request shapes (prompt/generation token counts per call
//! kind). Both must be **order-independent** so that lock-step and
//! out-of-order executions of the same world produce identical outcomes —
//! therefore every draw comes from a stateless RNG keyed by
//! `(seed, agent, step, salt)` rather than a shared mutable stream.
//!
//! Token-length distributions are calibrated so a full 25-agent day matches
//! the paper's trace statistics (§4.1): ≈56.7k calls/day, mean input
//! ≈642.6 tokens, mean output ≈21.9 tokens.

use aim_llm::CallKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stateless deterministic RNG for one `(agent, step, salt)` site.
///
/// # Example
///
/// ```
/// use aim_world::scripted::SiteRng;
///
/// let a = SiteRng::new(42, 3, 100, 0).unit();
/// let b = SiteRng::new(42, 3, 100, 0).unit();
/// assert_eq!(a, b, "same site, same draw");
/// assert_ne!(a, SiteRng::new(42, 3, 101, 0).unit());
/// ```
#[derive(Debug)]
pub struct SiteRng(StdRng);

impl SiteRng {
    /// Creates the RNG for a decision site.
    pub fn new(seed: u64, agent: u32, step: u32, salt: u32) -> Self {
        // SplitMix64-style mixing of the site coordinates into one seed.
        let mut z = seed
            ^ (agent as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (step as u64).wrapping_mul(0xBF58476D1CE4E5B9)
            ^ (salt as u64).wrapping_mul(0x94D049BB133111EB);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        SiteRng(StdRng::seed_from_u64(z))
    }

    /// Uniform `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        self.0.random::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u32) -> u32 {
        self.0.random_range(0..n)
    }

    /// Approximately normal sample via Box–Muller, clamped to
    /// `[mean − 3σ, mean + 3σ]` and to ≥ `min`.
    pub fn normal(&mut self, mean: f64, sigma: f64, min: f64) -> f64 {
        let u1 = (self.0.random::<f64>()).max(1e-9);
        let u2 = self.0.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + sigma * z).clamp((mean - 3.0 * sigma).max(min), mean + 3.0 * sigma)
    }
}

/// Samples `(input_tokens, output_tokens)` for a call.
///
/// `context_bonus` models prompt growth from memory retrieval (GenAgent
/// prompts lengthen over the day); `turn` lengthens conversation prompts as
/// the dialogue history accumulates.
pub fn sample_call_tokens(
    rng: &mut SiteRng,
    kind: CallKind,
    context_bonus: u32,
    turn: u32,
) -> (u32, u32) {
    let (in_mean, in_sigma, out_mean, out_sigma) = match kind {
        CallKind::Perceive => (480.0, 100.0, 14.0, 4.0),
        CallKind::Retrieve => (520.0, 120.0, 16.0, 5.0),
        CallKind::Plan => (660.0, 170.0, 40.0, 14.0),
        CallKind::Reflect => (800.0, 190.0, 60.0, 15.0),
        CallKind::Converse => (420.0 + 45.0 * turn as f64, 85.0, 48.0, 15.0),
        CallKind::Summarize => (620.0, 140.0, 48.0, 12.0),
        _ => (560.0, 140.0, 22.0, 8.0),
    };
    let input = rng.normal(in_mean, in_sigma, 16.0) as u32 + context_bonus;
    let output = rng.normal(out_mean, out_sigma, 1.0) as u32;
    (input, output.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_rng_is_deterministic_and_site_sensitive() {
        let draw = |agent, step, salt| SiteRng::new(7, agent, step, salt).unit();
        assert_eq!(draw(1, 2, 3), draw(1, 2, 3));
        assert_ne!(draw(1, 2, 3), draw(2, 2, 3));
        assert_ne!(draw(1, 2, 3), draw(1, 3, 3));
        assert_ne!(draw(1, 2, 3), draw(1, 2, 4));
    }

    #[test]
    fn normal_respects_bounds() {
        let mut rng = SiteRng::new(1, 0, 0, 0);
        for _ in 0..1000 {
            let x = rng.normal(100.0, 20.0, 10.0);
            assert!((40.0..=160.0).contains(&x), "3-sigma clamp violated: {x}");
        }
        let mut rng = SiteRng::new(1, 0, 0, 1);
        let tight = rng.normal(5.0, 10.0, 4.0);
        assert!(tight >= 4.0, "min clamp violated: {tight}");
    }

    #[test]
    fn token_mixture_matches_paper_scale() {
        // Weighted by the village's empirical call mix (perceive-dominated),
        // means must land near 642.6 in / 21.9 out (±25%).
        let mix = [
            (CallKind::Perceive, 0.58),
            (CallKind::Retrieve, 0.22),
            (CallKind::Plan, 0.12),
            (CallKind::Converse, 0.05),
            (CallKind::Reflect, 0.015),
            (CallKind::Summarize, 0.015),
        ];
        let mut in_sum = 0.0;
        let mut out_sum = 0.0;
        let mut salt = 0;
        for (kind, weight) in mix {
            let mut in_avg = 0.0;
            let mut out_avg = 0.0;
            const N: u32 = 2000;
            for i in 0..N {
                let mut rng = SiteRng::new(99, i, salt, 0);
                let turn = if kind == CallKind::Converse { i % 8 } else { 0 };
                let (inp, out) = sample_call_tokens(&mut rng, kind, 100, turn);
                in_avg += inp as f64 / N as f64;
                out_avg += out as f64 / N as f64;
            }
            in_sum += weight * in_avg;
            out_sum += weight * out_avg;
            salt += 1;
        }
        assert!(
            (480.0..=810.0).contains(&in_sum),
            "mixture input mean {in_sum:.1} too far from 642.6"
        );
        assert!(
            (15.0..=29.0).contains(&out_sum),
            "mixture output mean {out_sum:.1} too far from 21.9"
        );
    }

    #[test]
    fn conversation_prompts_grow_with_turns() {
        let sample = |turn| {
            let mut acc = 0u64;
            for i in 0..200 {
                let mut rng = SiteRng::new(5, i, turn, 2);
                acc += sample_call_tokens(&mut rng, CallKind::Converse, 0, turn).0 as u64;
            }
            acc / 200
        };
        assert!(
            sample(8) > sample(0) + 250,
            "turn 8 prompts must be much longer"
        );
    }

    #[test]
    fn outputs_are_never_zero() {
        for i in 0..500 {
            let mut rng = SiteRng::new(3, i, i, 9);
            let (_, out) = sample_call_tokens(&mut rng, CallKind::Perceive, 0, 0);
            assert!(out >= 1);
        }
    }
}
