//! Conversations: the dependency-heavy part of the workload.
//!
//! When two agents are within speaking distance, one of them may strike up
//! a dialogue. Mirroring GenAgent, the whole conversation resolves within
//! the initiator's step: alternating utterances form one long *sequential*
//! chain of `Converse` LLM calls closed by a `Summarize` — under global
//! synchronization every other agent waits at the barrier while the
//! dialogue runs, which is exactly the straggler pattern of the paper's
//! Fig. 1 and the reason busy hours parallelize so poorly (§2.2). The
//! participants stand within `radius_p`, so the engine's rules couple
//! their clusters and the oracle miner records a real interaction.

use serde::{Deserialize, Serialize};

/// Distance (grid units) within which a conversation can start.
pub const CONV_RADIUS: u64 = 3;

/// Cooldown steps after a conversation before the same agent starts
/// another (30 simulated minutes).
pub const CONV_COOLDOWN: u32 = 180;

/// A record of a held conversation (used in logs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conversation {
    /// The other agent.
    pub partner: u32,
    /// Step during which the dialogue ran.
    pub step: u32,
    /// Total utterances exchanged.
    pub turns: u32,
}

/// Samples a total utterance count: 3–22, heavy-tailed (mean ≈ 10).
///
/// The tail matters: with hundreds of agents, *some* long dialogue is in
/// flight during almost every step, so the global barrier of Algorithm 1
/// degenerates to one conversation at a time — the effect behind the
/// paper's 4.15× busy-hour speedup at 500 agents.
pub fn sample_turns(unit: f32) -> u32 {
    // `unit` is a uniform [0,1) sample from the caller's deterministic rng.
    let turns = 3.0 + 19.0 * unit.powf(1.5);
    (turns as u32).min(22)
}

/// Probability that an agent initiates a conversation with a nearby
/// candidate.
///
/// Combines the persona's chattiness, friendship, and the venue's social
/// factor (lunch at the cafe is ~15× more conversational than idling at
/// home — this is what concentrates the busy hour).
pub fn start_probability(chattiness: f32, is_friend: bool, social_factor: f32) -> f32 {
    let base = if is_friend { 0.060 } else { 0.012 };
    (base * chattiness * social_factor).min(0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turns_within_bounds_and_skewed_short() {
        assert_eq!(sample_turns(0.0), 3);
        assert!(sample_turns(0.999) <= 22);
        // Median sample (unit = 0.5) lands below the midpoint of the range.
        assert!(sample_turns(0.5) <= 10);
    }

    #[test]
    fn probability_ordering() {
        let friendly = start_probability(1.0, true, 3.0);
        let stranger = start_probability(1.0, false, 3.0);
        let asleep = start_probability(1.0, true, 0.0);
        assert!(friendly > stranger);
        assert_eq!(asleep, 0.0);
        assert!(friendly <= 0.9);
    }

    #[test]
    fn conversation_record_is_plain_data() {
        let c = Conversation {
            partner: 3,
            step: 100,
            turns: 5,
        };
        assert_eq!(c, c.clone());
        assert!(format!("{c:?}").contains("partner"));
    }
}
