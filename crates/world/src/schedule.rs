//! Daily routines: who is where, when.
//!
//! Schedules drive the diurnal workload shape of paper Fig. 4c: everyone
//! sleeps through the 1–4 am trough, converges on the cafe around noon
//! (the "busy hour" with long conversations), and socializes in the
//! evening. Each persona's times are jittered so arrivals spread out.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::grid::{AreaKind, TileMap};
use crate::persona::Persona;
use crate::{clock_to_step, STEPS_PER_DAY};

/// What an agent is doing during a schedule block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ActivityKind {
    /// In bed; no perception, no calls.
    Sleep,
    /// At home, puttering.
    Home,
    /// At the workplace.
    Work,
    /// Lunch (usually at the cafe — the busy hour).
    Lunch,
    /// Errands at the store.
    Shop,
    /// Socializing (bar or park) — conversation-heavy.
    Social,
}

impl ActivityKind {
    /// Multiplier on the chance to start conversations during this block.
    pub fn social_factor(self) -> f32 {
        match self {
            ActivityKind::Sleep => 0.0,
            ActivityKind::Home => 0.2,
            ActivityKind::Work => 0.5,
            ActivityKind::Lunch => 3.0,
            ActivityKind::Shop => 1.0,
            ActivityKind::Social => 2.0,
        }
    }
}

/// One block of the day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Step-in-day when this block begins.
    pub start: u32,
    /// What the agent does.
    pub kind: ActivityKind,
    /// Index into [`TileMap::areas`] where it happens.
    pub area: usize,
}

/// A full cyclic daily schedule (entries sorted by `start`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DailySchedule {
    entries: Vec<ScheduleEntry>,
}

impl DailySchedule {
    /// Builds a schedule from entries (sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn new(mut entries: Vec<ScheduleEntry>) -> Self {
        assert!(!entries.is_empty(), "schedule needs at least one entry");
        entries.sort_by_key(|e| e.start);
        DailySchedule { entries }
    }

    /// The block in effect at `step` (absolute or in-day; wraps midnight).
    pub fn at(&self, step: u32) -> ScheduleEntry {
        let s = step % STEPS_PER_DAY;
        match self.entries.iter().rev().find(|e| e.start <= s) {
            Some(e) => *e,
            // Before the first entry: still in the last block of yesterday.
            None => *self.entries.last().expect("nonempty"),
        }
    }

    /// All blocks.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Generates `persona`'s routine with per-agent jitter.
    ///
    /// Timeline (±jitter): wake ~6:30, commute/work ~8:30, lunch ~12:00
    /// (80% cafe), work ~13:00, errand ~17:00 (35% store), social ~18:30
    /// (70% bar/park), home ~20:30, sleep ~22:30.
    pub fn generate(map: &TileMap, persona: &Persona, rng: &mut StdRng) -> Self {
        let jitter = |rng: &mut StdRng, steps: u32| -> i64 {
            rng.random_range(-(steps as i64)..=(steps as i64))
        };
        let at = |base: u32, j: i64| -> u32 {
            (base as i64 + j).clamp(0, (STEPS_PER_DAY - 1) as i64) as u32
        };
        let home = persona.home_area;
        let work = persona.work_area;
        // Ville-local venues: nearest of each kind to the home door.
        let ville_venue = |kind: AreaKind| -> usize {
            let hx = map.areas()[home].door.x;
            map.areas()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.kind == kind)
                .min_by_key(|(_, a)| (a.door.x - hx).unsigned_abs())
                .map(|(i, _)| i)
                .unwrap_or(home)
        };
        let cafe = ville_venue(AreaKind::Cafe);
        let store = ville_venue(AreaKind::Store);
        let bar = ville_venue(AreaKind::Bar);
        let park = ville_venue(AreaKind::Park);

        let mut entries = vec![ScheduleEntry {
            start: 0,
            kind: ActivityKind::Sleep,
            area: home,
        }];
        let wake = at(clock_to_step(6, 15), jitter(rng, 50 * 6));
        entries.push(ScheduleEntry {
            start: wake,
            kind: ActivityKind::Home,
            area: home,
        });
        let leave = at(clock_to_step(8, 30), jitter(rng, 30 * 6));
        entries.push(ScheduleEntry {
            start: leave,
            kind: ActivityKind::Work,
            area: work,
        });
        let lunch_area = if rng.random::<f32>() < 0.8 {
            cafe
        } else {
            home
        };
        let lunch = at(clock_to_step(12, 0), jitter(rng, 15 * 6));
        entries.push(ScheduleEntry {
            start: lunch,
            kind: ActivityKind::Lunch,
            area: lunch_area,
        });
        entries.push(ScheduleEntry {
            start: at(clock_to_step(13, 0), jitter(rng, 10 * 6)),
            kind: ActivityKind::Work,
            area: work,
        });
        if rng.random::<f32>() < 0.35 {
            entries.push(ScheduleEntry {
                start: at(clock_to_step(17, 0), jitter(rng, 20 * 6)),
                kind: ActivityKind::Shop,
                area: store,
            });
        }
        if rng.random::<f32>() < 0.7 {
            let venue = if rng.random::<f32>() < 0.6 { bar } else { park };
            entries.push(ScheduleEntry {
                start: at(clock_to_step(18, 30), jitter(rng, 60 * 6)),
                kind: ActivityKind::Social,
                area: venue,
            });
        }
        entries.push(ScheduleEntry {
            start: at(clock_to_step(20, 30), jitter(rng, 30 * 6)),
            kind: ActivityKind::Home,
            area: home,
        });
        entries.push(ScheduleEntry {
            start: at(clock_to_step(22, 30), jitter(rng, 60 * 6)),
            kind: ActivityKind::Sleep,
            area: home,
        });
        DailySchedule::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persona::generate_personas;
    use rand::SeedableRng;

    fn setup() -> (TileMap, Vec<Persona>) {
        let map = TileMap::smallville(25);
        let mut rng = StdRng::seed_from_u64(1);
        let ps = generate_personas(&map, 25, &mut rng);
        (map, ps)
    }

    #[test]
    fn schedule_covers_whole_day() {
        let (map, ps) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let s = DailySchedule::generate(&map, &ps[0], &mut rng);
        // Midnight through early morning: asleep.
        assert_eq!(s.at(clock_to_step(2, 0)).kind, ActivityKind::Sleep);
        // Noon-ish: lunch (allow jitter by probing 12:30).
        let lunch = s.at(clock_to_step(12, 30)).kind;
        assert!(
            lunch == ActivityKind::Lunch || lunch == ActivityKind::Work,
            "around noon should be lunch or adjacent work, got {lunch:?}"
        );
        // Late evening: asleep again by midnight wraparound.
        assert_eq!(s.at(STEPS_PER_DAY - 1).kind, ActivityKind::Sleep);
    }

    #[test]
    fn wraps_before_first_entry() {
        let s = DailySchedule::new(vec![
            ScheduleEntry {
                start: 100,
                kind: ActivityKind::Home,
                area: 0,
            },
            ScheduleEntry {
                start: 200,
                kind: ActivityKind::Work,
                area: 1,
            },
        ]);
        assert_eq!(
            s.at(50).kind,
            ActivityKind::Work,
            "pre-first-entry = yesterday's last"
        );
        assert_eq!(s.at(150).kind, ActivityKind::Home);
        assert_eq!(
            s.at(STEPS_PER_DAY + 150).kind,
            ActivityKind::Home,
            "wraps across days"
        );
    }

    #[test]
    fn most_agents_lunch_at_the_cafe() {
        let (map, ps) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut cafe_lunches = 0;
        for p in &ps {
            let s = DailySchedule::generate(&map, p, &mut rng);
            let lunch = s
                .entries()
                .iter()
                .find(|e| e.kind == ActivityKind::Lunch)
                .expect("everyone schedules lunch");
            if map.areas()[lunch.area].kind == AreaKind::Cafe {
                cafe_lunches += 1;
            }
        }
        assert!(
            cafe_lunches >= 15,
            "cafe should dominate lunches, got {cafe_lunches}/25"
        );
    }

    #[test]
    fn sleep_trough_at_2am_for_everyone() {
        let (map, ps) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        for p in &ps {
            let s = DailySchedule::generate(&map, p, &mut rng);
            for hour in [1, 2, 3, 4] {
                assert_eq!(
                    s.at(clock_to_step(hour, 0)).kind,
                    ActivityKind::Sleep,
                    "{} should sleep at {hour}am",
                    p.name
                );
            }
        }
    }

    #[test]
    fn social_factor_ordering() {
        assert_eq!(ActivityKind::Sleep.social_factor(), 0.0);
        assert!(ActivityKind::Lunch.social_factor() > ActivityKind::Work.social_factor());
        assert!(ActivityKind::Social.social_factor() > ActivityKind::Home.social_factor());
    }
}
