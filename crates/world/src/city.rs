//! An OpenCity-style **massive-agent city**: the 10k+-agent workload the
//! sharded dependency tracker ([`aim_core::shard`]) exists for.
//!
//! SmallVille scales by concatenating copies of one town east-to-west;
//! a city is built differently — a `districts_x × districts_y` grid of
//! [`DISTRICT`]-tile districts, each with its own housing rows, office,
//! cafe, store, bar, and plaza, separated by arterial roads (the open
//! margins every district leaves at its borders, which tile into a
//! connected street grid). Pathfinding over the streets reuses
//! [`crate::pathfind`]; [`RoadGraph`] condenses the street grid into a
//! district-level transit graph whose edge weights are real
//! [`crate::pathfind::path_len`] distances.
//!
//! The population comes from a seeded **template pool**
//! ([`PersonaTemplate`], [`template_pool`]): a handful of archetypes
//! (commuters, baristas, shopkeepers, students, regulars) instantiated
//! thousands of times with per-agent jitter, the standard trick for
//! generating believable massive-agent populations without authoring
//! 10k personas. Agents are dealt round-robin across districts; homes,
//! jobs, and friendships stay within the home district, so coupling is
//! local — exactly the structure strip sharding exploits.
//!
//! [`generate`] assembles everything into a plain [`Village`] (via
//! [`Village::from_substrate`]), so the whole engine stack — plan/commit
//! protocol, threaded executor, scheduler — drives a city exactly as it
//! drives SmallVille.

use aim_core::shard::StripShardMap;
use aim_core::space::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::grid::{AreaKind, TileMap};
use crate::pathfind::path_len;
use crate::persona::Persona;
use crate::village::Village;

/// Side length of one square district, in tiles.
pub const DISTRICT: u32 = 48;

/// Houses laid out per district (two rows of five).
pub const HOUSES_PER_DISTRICT: u32 = 10;

/// Configuration of a generated city.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Districts along x (the map is `districts_x · DISTRICT` wide).
    pub districts_x: u32,
    /// Districts along y.
    pub districts_y: u32,
    /// Total agents, dealt round-robin across districts.
    pub agents: u32,
    /// Master seed; personas, schedules, and jitter derive from it.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            districts_x: 8,
            districts_y: 8,
            agents: 10_048,
            seed: 2_025,
        }
    }
}

impl CityConfig {
    /// Number of districts.
    pub fn num_districts(&self) -> u32 {
        self.districts_x * self.districts_y
    }

    /// Map width in tiles.
    pub fn width(&self) -> u32 {
        self.districts_x * DISTRICT
    }

    /// Map height in tiles.
    pub fn height(&self) -> u32 {
        self.districts_y * DISTRICT
    }

    /// The strip shard map matched to this city: one shard per
    /// `shards` equal x-bands of the map — the partition the
    /// 10k-agent experiments mount
    /// [`aim_core::shard::ShardedDepGraph`] on.
    pub fn shard_map(&self, shards: usize) -> StripShardMap {
        StripShardMap::new(self.width(), shards)
    }
}

/// One population archetype of the template pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonaTemplate {
    /// Archetype label (instantiated names are `"{label} {id}"`).
    pub label: &'static str,
    /// Chattiness band `[lo, hi)` sampled per instance.
    pub chattiness: (f32, f32),
    /// Where instances work (nearest area of this kind in the home
    /// district).
    pub job: AreaKind,
    /// Friend-count band `[lo, hi]` sampled per instance.
    pub friends: (u32, u32),
}

/// The seeded archetype pool cities draw personas from.
pub fn template_pool() -> &'static [PersonaTemplate] {
    const POOL: &[PersonaTemplate] = &[
        PersonaTemplate {
            label: "Commuter",
            chattiness: (0.5, 1.0),
            job: AreaKind::Work,
            friends: (2, 4),
        },
        PersonaTemplate {
            label: "Barista",
            chattiness: (1.0, 1.6),
            job: AreaKind::Cafe,
            friends: (3, 5),
        },
        PersonaTemplate {
            label: "Shopkeeper",
            chattiness: (0.8, 1.3),
            job: AreaKind::Store,
            friends: (2, 4),
        },
        PersonaTemplate {
            label: "Student",
            chattiness: (0.9, 1.5),
            job: AreaKind::Work,
            friends: (3, 6),
        },
        PersonaTemplate {
            label: "Regular",
            chattiness: (0.7, 1.4),
            job: AreaKind::Bar,
            friends: (2, 5),
        },
    ];
    POOL
}

/// Generates the city tile map: a grid of districts, each leaving a
/// 2-tile open margin on every side so the margins tile into the
/// arterial road grid.
///
/// Per district (local coordinates within its 48×48 block): two rows of
/// five 7×7 houses in the north, a 10×11 office / 9×8 cafe / 7×7 store
/// / 7×7 bar band in the middle, and an open plaza (the district's
/// park) in the south.
pub fn city_map(cfg: &CityConfig) -> TileMap {
    assert!(
        cfg.districts_x > 0 && cfg.districts_y > 0,
        "city needs at least one district"
    );
    let mut map = TileMap::open(cfg.width(), cfg.height());
    for dy in 0..cfg.districts_y {
        for dx in 0..cfg.districts_x {
            let d = dy * cfg.districts_x + dx;
            let ox = (dx * DISTRICT) as i32;
            let oy = (dy * DISTRICT) as i32;
            let at = |x: i32, y: i32| Point::new(ox + x, oy + y);
            // Housing rows: 5 lots per row at y = 2 and y = 11.
            for row in 0..2u32 {
                for col in 0..5u32 {
                    let x0 = 2 + col as i32 * 9;
                    let y0 = 2 + row as i32 * 9;
                    map.add_building(
                        format!("d{d} house {}", row * 5 + col),
                        AreaKind::House,
                        at(x0, y0),
                        at(x0 + 6, y0 + 6),
                    );
                }
            }
            // Commercial band.
            map.add_building(
                format!("d{d} office"),
                AreaKind::Work,
                at(2, 21),
                at(11, 31),
            );
            map.add_building(format!("d{d} cafe"), AreaKind::Cafe, at(14, 21), at(22, 28));
            map.add_building(
                format!("d{d} store"),
                AreaKind::Store,
                at(25, 21),
                at(31, 27),
            );
            map.add_building(format!("d{d} bar"), AreaKind::Bar, at(34, 21), at(40, 27));
            // Plaza: an open park in the south of the district.
            map.add_park(format!("d{d} plaza"), at(4, 34), at(42, 42), at(23, 42));
        }
    }
    map
}

/// Generates the city's population from the template pool: agents are
/// dealt round-robin across districts; each instance gets a home lot,
/// a job of its template's kind, chattiness and friends sampled from
/// the template bands — all within its home district.
pub fn generate_personas(map: &TileMap, cfg: &CityConfig) -> Vec<Persona> {
    let pool = template_pool();
    let districts = cfg.num_districts();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Per-district area indexes, in map creation order (districts were
    // emitted in order, so chunking the area list recovers them).
    let per_district = map.areas().len() / districts as usize;
    let district_areas = |d: u32, kind: AreaKind| -> Vec<usize> {
        let lo = d as usize * per_district;
        (lo..lo + per_district)
            .filter(|&i| map.areas()[i].kind == kind)
            .collect()
    };
    let mut personas: Vec<Persona> = (0..cfg.agents)
        .map(|id| {
            let district = id % districts;
            let t = pool[(id / districts) as usize % pool.len()];
            let houses = district_areas(district, AreaKind::House);
            let jobs = district_areas(district, t.job);
            assert!(
                !houses.is_empty() && !jobs.is_empty(),
                "district {district} lacks a {:?} or a house for template {}",
                t.job,
                t.label
            );
            let home_area = houses[(id / districts) as usize % houses.len()];
            let work_area = jobs[(id / districts) as usize % jobs.len()];
            Persona {
                id,
                name: format!("{} {id}", t.label),
                home_area,
                work_area,
                chattiness: t.chattiness.0
                    + rng.random::<f32>() * (t.chattiness.1 - t.chattiness.0),
                friends: Vec::new(),
                template: ((id / districts) as usize % pool.len()) as u32,
            }
        })
        .collect();
    // Friendships: sampled within the home district (ids congruent mod
    // `districts`), symmetric.
    for id in 0..cfg.agents {
        let district = id % districts;
        let cohort = (cfg.agents - district).div_ceil(districts); // agents in this district
        if cohort < 2 {
            continue;
        }
        let t = pool[(id / districts) as usize % pool.len()];
        let want = t.friends.0 + rng.random::<u32>() % (t.friends.1 - t.friends.0 + 1);
        let mut attempts = 0;
        while (personas[id as usize].friends.len() as u32) < want && attempts < 32 {
            attempts += 1;
            let f = district + districts * (rng.random::<u32>() % cohort);
            if f != id && f < cfg.agents && !personas[id as usize].friends.contains(&f) {
                personas[id as usize].friends.push(f);
                if !personas[f as usize].friends.contains(&id) {
                    personas[f as usize].friends.push(id);
                }
            }
        }
        personas[id as usize].friends.sort_unstable();
    }
    personas
}

/// Generates the full city world: district map + template-pool
/// population, mounted on the [`Village`] runtime.
pub fn generate(cfg: &CityConfig) -> Village {
    let map = city_map(cfg);
    let personas = generate_personas(&map, cfg);
    Village::from_substrate(cfg.seed, map, personas)
}

/// The district-level transit graph: one node per district (anchored at
/// its plaza door, which sits on the southern arterial), edges between
/// grid-adjacent districts weighted by the **actual walkable distance**
/// between their anchors ([`crate::pathfind::path_len`] over the street
/// grid) — the "road graph reusing pathfind" layer a dispatcher or a
/// travel-time heuristic queries without re-running A* per agent.
#[derive(Debug, Clone)]
pub struct RoadGraph {
    /// Anchor point per district, indexed by district id.
    pub nodes: Vec<Point>,
    /// `(district a, district b, walk distance in steps)`, `a < b`.
    pub edges: Vec<(u32, u32, u32)>,
    /// `edges` as per-node `(neighbor, weight)` lists, built once so
    /// queries allocate nothing per call.
    adjacency: Vec<Vec<(u32, u32)>>,
}

impl RoadGraph {
    /// Builds the transit graph for `map` (which must be `cfg`'s map).
    ///
    /// # Panics
    ///
    /// Panics if two adjacent district anchors are not mutually
    /// reachable — the arterial margins guarantee they are, so a panic
    /// means the map was not built by [`city_map`].
    pub fn build(map: &TileMap, cfg: &CityConfig) -> Self {
        let nodes: Vec<Point> = (0..cfg.num_districts())
            .map(|d| {
                let dx = (d % cfg.districts_x * DISTRICT) as i32;
                let dy = (d / cfg.districts_x * DISTRICT) as i32;
                // The plaza door on the southern arterial.
                Point::new(dx + 23, dy + 42)
            })
            .collect();
        let mut edges = Vec::new();
        for d in 0..cfg.num_districts() {
            let (cx, cy) = (d % cfg.districts_x, d / cfg.districts_x);
            for (nx, ny) in [(cx + 1, cy), (cx, cy + 1)] {
                if nx >= cfg.districts_x || ny >= cfg.districts_y {
                    continue;
                }
                let n = ny * cfg.districts_x + nx;
                let w = path_len(map, nodes[d as usize], nodes[n as usize])
                    .unwrap_or_else(|| panic!("districts {d} and {n} disconnected"));
                edges.push((d, n, w));
            }
        }
        let mut adjacency: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nodes.len()];
        for &(a, b, w) in &edges {
            adjacency[a as usize].push((b, w));
            adjacency[b as usize].push((a, w));
        }
        RoadGraph {
            nodes,
            edges,
            adjacency,
        }
    }

    /// Shortest transit distance between two districts along the road
    /// graph (Dijkstra over district edges), `None` if disconnected.
    pub fn transit_len(&self, from: u32, to: u32) -> Option<u32> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.nodes.len();
        let adj = &self.adjacency;
        let mut dist = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from as usize] = 0;
        heap.push(Reverse((0u32, from)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if u == to {
                return Some(d);
            }
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &adj[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        (from == to).then_some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock_to_step;

    fn small() -> CityConfig {
        CityConfig {
            districts_x: 3,
            districts_y: 2,
            agents: 300,
            seed: 9,
        }
    }

    #[test]
    fn map_has_all_amenities_per_district() {
        let cfg = small();
        let map = city_map(&cfg);
        assert_eq!(map.width(), 3 * DISTRICT);
        assert_eq!(map.height(), 2 * DISTRICT);
        assert_eq!(
            map.areas_of(AreaKind::House).len(),
            (HOUSES_PER_DISTRICT * cfg.num_districts()) as usize
        );
        for kind in [
            AreaKind::Work,
            AreaKind::Cafe,
            AreaKind::Store,
            AreaKind::Bar,
            AreaKind::Park,
        ] {
            assert_eq!(
                map.areas_of(kind).len(),
                cfg.num_districts() as usize,
                "{kind:?}"
            );
        }
        // Arterial margins stay walkable along every district boundary.
        for d in 1..cfg.districts_x {
            let x = (d * DISTRICT) as i32;
            for y in 0..map.height() as i32 {
                assert!(
                    map.is_walkable(Point::new(x, y)),
                    "blocked artery at x={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_local() {
        let cfg = small();
        let a = generate_personas(&city_map(&cfg), &cfg);
        let b = generate_personas(&city_map(&cfg), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        let map = city_map(&cfg);
        for p in &a {
            let district = p.id % cfg.num_districts();
            let home_door = map.areas()[p.home_area].door;
            let dcol = (home_door.x as u32) / DISTRICT;
            let drow = (home_door.y as u32) / DISTRICT;
            assert_eq!(
                drow * cfg.districts_x + dcol,
                district,
                "home in own district"
            );
            let work_door = map.areas()[p.work_area].door;
            assert_eq!((work_door.x as u32) / DISTRICT, dcol, "job in own district");
            for &f in &p.friends {
                assert_eq!(f % cfg.num_districts(), district, "friends stay local");
                assert!(a[f as usize].friends.contains(&p.id), "symmetric");
            }
        }
        // Templates actually vary the population.
        let labels: std::collections::BTreeSet<&str> = a
            .iter()
            .map(|p| p.name.split(' ').next().unwrap())
            .collect();
        assert_eq!(labels.len(), template_pool().len());
    }

    #[test]
    fn city_village_lives_a_morning() {
        let cfg = small();
        let mut v = generate(&cfg);
        assert_eq!(v.num_agents(), 300);
        assert_eq!(v.config().villes, 0, "substrate marker");
        // Cold-start a workday hour: wakes and movement must happen.
        let start = clock_to_step(7, 0);
        let mut calls = 0u64;
        let mut wakes = 0u32;
        v.run_lockstep(start, start + 40, |_, _, plan, _| {
            calls += plan.calls.len() as u64;
            if plan.wakes_up() {
                wakes += 1;
            }
        });
        assert!(wakes > 200, "most of the city wakes at 7am, got {wakes}");
        assert!(calls > 1_000, "a waking city is chatty, got {calls}");
    }

    #[test]
    fn road_graph_connects_every_district() {
        let cfg = small();
        let map = city_map(&cfg);
        let roads = RoadGraph::build(&map, &cfg);
        assert_eq!(roads.nodes.len(), 6);
        // Grid adjacency: 3×2 districts → 3 vertical + 4 horizontal edges.
        assert_eq!(roads.edges.len(), 7);
        for &(a, b, w) in &roads.edges {
            assert!(w >= DISTRICT - 10, "edge {a}-{b} suspiciously short: {w}");
        }
        for d in 0..6 {
            assert!(
                roads.transit_len(0, d).is_some(),
                "district {d} unreachable"
            );
        }
        assert_eq!(roads.transit_len(0, 0), Some(0));
        // Transit through the grid is at least the Manhattan district gap.
        let far = roads.transit_len(0, 5).unwrap();
        assert!(far >= 2 * (DISTRICT - 10), "0→5 spans two hops, got {far}");
    }

    #[test]
    fn shard_map_matches_city_width() {
        use aim_core::shard::ShardMap;
        let cfg = small();
        let m = cfg.shard_map(4);
        assert_eq!(m.num_shards(), 4);
        assert_eq!(m.strip_width(), cfg.width() / 4);
        assert_eq!(m.shard_of(Point::new(cfg.width() as i32 - 1, 0)), 3);
    }
}
