//! Personas: identities, homes, workplaces, and the friendship graph.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::grid::{AreaKind, TileMap};

const FIRST_NAMES: [&str; 25] = [
    "Abigail",
    "Arthur",
    "Ayesha",
    "Carlos",
    "Carmen",
    "Eddy",
    "Francisco",
    "Giorgio",
    "Hailey",
    "Isabella",
    "Jennifer",
    "John",
    "Klaus",
    "Latoya",
    "Maria",
    "Mei",
    "Rajiv",
    "Ryan",
    "Sam",
    "Tamara",
    "Tom",
    "Wolfgang",
    "Yuriko",
    "Adam",
    "Jane",
];

/// One character: identity plus static world attachments.
///
/// Mirrors the GenAgent setup (paper §2.1: "each agent possesses its own
/// personality, social relationships, and daily routines").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Persona {
    /// Agent id (dense, 0-based).
    pub id: u32,
    /// Display name, unique per village.
    pub name: String,
    /// Index of the agent's home in [`TileMap::areas`].
    pub home_area: usize,
    /// Index of the agent's workplace in [`TileMap::areas`].
    pub work_area: usize,
    /// Propensity to start conversations, in `[0.4, 1.6]`.
    pub chattiness: f32,
    /// Friend agent ids (symmetric).
    pub friends: Vec<u32>,
    /// Persona-template id this agent was instantiated from. Agents of
    /// one template share a long prompt preamble (system prompt +
    /// archetype scaffold), which prefix-affinity routing exploits; see
    /// `aim_llm::LlmRequest::template`. Smallville personas are
    /// hand-rolled rather than templated, so each uses its own id.
    #[serde(default)]
    pub template: u32,
}

impl Persona {
    /// Whether `other` is a friend.
    pub fn is_friend(&self, other: u32) -> bool {
        self.friends.contains(&other)
    }
}

/// Generates `n` personas over `map`, assigning homes round-robin over
/// houses and workplaces over work/cafe/store areas, plus a symmetric
/// friendship graph of 2–4 friends each.
///
/// Agents are distributed per ville when the map was
/// [concatenated](TileMap::concatenated): an agent's home, work and friends
/// all live in its own ville, matching the paper's scaling setup where each
/// SmallVille segment replays an independent trace.
///
/// # Panics
///
/// Panics if the map has no houses or no workplaces.
pub fn generate_personas(map: &TileMap, n: u32, rng: &mut StdRng) -> Vec<Persona> {
    let houses: Vec<usize> = map
        .areas()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind == AreaKind::House)
        .map(|(i, _)| i)
        .collect();
    let jobs: Vec<usize> = map
        .areas()
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.kind, AreaKind::Work | AreaKind::Cafe | AreaKind::Store))
        .map(|(i, _)| i)
        .collect();
    assert!(!houses.is_empty(), "map has no houses");
    assert!(!jobs.is_empty(), "map has no workplaces");

    // Group houses by ville (x-extent): houses are already pushed in ville
    // order by `concatenated`, so round-robin per contiguous region works
    // out to per-ville assignment for equal agents-per-ville counts.
    let mut personas: Vec<Persona> = (0..n)
        .map(|id| {
            let home_area = houses[id as usize % houses.len()];
            // Pick the job whose door is nearest the home's ville to keep
            // commutes within a ville.
            let home_x = map.areas()[home_area].door.x;
            let work_area = *jobs
                .iter()
                .min_by_key(|&&j| {
                    let dx = (map.areas()[j].door.x - home_x).unsigned_abs();
                    // Mix in the id so jobs spread across agents.
                    (dx / 100, (j as u32).wrapping_add(id * 7) % 5)
                })
                .expect("jobs nonempty");
            Persona {
                id,
                name: format!(
                    "{} {}",
                    FIRST_NAMES[id as usize % FIRST_NAMES.len()],
                    id / 25
                ),
                home_area,
                work_area,
                chattiness: 0.4 + rng.random::<f32>() * 1.2,
                friends: Vec::new(),
                template: id,
            }
        })
        .collect();

    // Friendships: 2–4 per agent, within the same ville (same house block
    // of `houses.len() / villes`), symmetric.
    let per_ville = FIRST_NAMES.len() as u32; // 25 agents per ville by convention
    for id in 0..n {
        let ville = id / per_ville;
        let lo = ville * per_ville;
        let hi = ((ville + 1) * per_ville).min(n);
        let want = 2 + (rng.random::<u32>() % 3);
        let mut attempts = 0;
        while (personas[id as usize].friends.len() as u32) < want && attempts < 32 {
            attempts += 1;
            if hi - lo < 2 {
                break;
            }
            let f = lo + rng.random_range(0..(hi - lo));
            if f != id && !personas[id as usize].friends.contains(&f) {
                personas[id as usize].friends.push(f);
                if !personas[f as usize].friends.contains(&id) {
                    personas[f as usize].friends.push(id);
                }
            }
        }
        personas[id as usize].friends.sort_unstable();
    }
    personas
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_unique_homes_for_25() {
        let map = TileMap::smallville(25);
        let mut rng = StdRng::seed_from_u64(7);
        let ps = generate_personas(&map, 25, &mut rng);
        assert_eq!(ps.len(), 25);
        let mut homes: Vec<usize> = ps.iter().map(|p| p.home_area).collect();
        homes.sort_unstable();
        homes.dedup();
        assert_eq!(homes.len(), 25, "each agent gets its own house");
    }

    #[test]
    fn friendships_are_symmetric_and_in_range() {
        let map = TileMap::smallville(25);
        let mut rng = StdRng::seed_from_u64(7);
        let ps = generate_personas(&map, 25, &mut rng);
        for p in &ps {
            assert!(!p.friends.is_empty(), "{} has no friends", p.name);
            for &f in &p.friends {
                assert!(f < 25);
                assert!(
                    ps[f as usize].is_friend(p.id),
                    "friendship must be symmetric"
                );
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let map = TileMap::smallville(25);
        let a = generate_personas(&map, 25, &mut StdRng::seed_from_u64(9));
        let b = generate_personas(&map, 25, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn multi_ville_agents_stay_local() {
        let map = TileMap::smallville(25).concatenated(4);
        let mut rng = StdRng::seed_from_u64(7);
        let ps = generate_personas(&map, 100, &mut rng);
        for p in &ps {
            let ville = p.id / 25;
            let home_door = map.areas()[p.home_area].door;
            assert_eq!(map.ville_of(home_door, 100), ville, "home in own ville");
            for &f in &p.friends {
                assert_eq!(f / 25, ville, "friends stay within the ville");
            }
        }
    }

    #[test]
    fn chattiness_in_band() {
        let map = TileMap::smallville(25);
        let ps = generate_personas(&map, 25, &mut StdRng::seed_from_u64(3));
        for p in &ps {
            assert!((0.4..=1.6).contains(&p.chattiness));
        }
    }
}
