//! Live execution: the village as a [`ClusterProgram`] for the threaded
//! runtime.
//!
//! This is the "developer side" of the paper's interface (§2.1): the
//! engine schedules clusters; this program supplies `agent.proceed`
//! (= [`Village::plan_step`] + real blocking LLM calls) and
//! `world.resolve_conflict_and_commit` (= [`Village::commit_step`]).
//! The world lock is held only while planning and committing — never
//! across LLM calls — so cluster members genuinely overlap their
//! inference time.

use std::sync::atomic::{AtomicU64, Ordering};

use aim_core::exec::threaded::ClusterProgram;
use aim_core::scheduler::Cluster;
use aim_core::space::{GridSpace, Point};
use aim_core::{AgentId, Step};
use aim_llm::{LlmBackend, LlmRequest, RequestId};
use parking_lot::Mutex;

use crate::village::{StepPlan, Village};

/// Drives a [`Village`] under the threaded engine (see module docs).
#[derive(Debug)]
pub struct VillageProgram {
    village: Mutex<Village>,
    req_ids: AtomicU64,
    calls_made: AtomicU64,
    /// Scheduler steps are 0-based; the world may have been warmed up to
    /// an absolute step already. `world step = step_offset + cluster step`.
    step_offset: u32,
}

impl VillageProgram {
    /// Wraps a village for live execution starting at world step 0.
    pub fn new(village: Village) -> Self {
        Self::with_step_offset(village, 0)
    }

    /// Wraps a pre-warmed village: the scheduler's step 0 corresponds to
    /// absolute world step `step_offset`.
    pub fn with_step_offset(village: Village, step_offset: u32) -> Self {
        VillageProgram {
            village: Mutex::new(village),
            req_ids: AtomicU64::new(0),
            calls_made: AtomicU64::new(0),
            step_offset,
        }
    }

    /// Committed agent positions (for seeding the scheduler).
    pub fn initial_positions(&self) -> Vec<Point> {
        self.village.lock().positions()
    }

    /// Total LLM calls issued so far.
    pub fn calls_made(&self) -> u64 {
        self.calls_made.load(Ordering::Relaxed)
    }

    /// The world-step offset this program was built with.
    pub fn step_offset(&self) -> u32 {
        self.step_offset
    }

    /// Serializes the village's runtime state
    /// ([`Village::capture_state`]) under the world lock.
    ///
    /// Call from a quiesced executor (the threaded runtime's checkpoint
    /// barrier): the capture is then a commit-boundary cut consistent
    /// with the scheduler's store.
    pub fn capture_state(&self) -> bytes::Bytes {
        self.village.lock().capture_state()
    }

    /// Consumes the program, returning the final world.
    pub fn into_village(self) -> Village {
        self.village.into_inner()
    }
}

impl ClusterProgram<GridSpace> for VillageProgram {
    type Action = StepPlan;

    fn agent_step(&self, agent: AgentId, step: Step, llm: &dyn LlmBackend) -> StepPlan {
        // Plan under the world lock (cheap, reads committed state only)…
        let (plan, template) = {
            let village = self.village.lock();
            let plan = village.plan_step(agent.0, self.step_offset + step.0);
            (plan, village.persona(agent.0).template)
        };
        // …then issue the plan's LLM calls without holding it. Calls are
        // tagged with the persona template so prefix-affinity routing and
        // replica prefix caches see the shared preamble (modeled as half
        // the prompt: system prompt + archetype scaffold).
        for call in &plan.calls {
            let id = RequestId(self.req_ids.fetch_add(1, Ordering::Relaxed));
            llm.call(
                &LlmRequest::new(
                    id,
                    agent.0,
                    step.priority(),
                    call.input_tokens,
                    call.output_tokens,
                    call.kind,
                )
                .with_template(template, call.input_tokens / 2),
            );
            self.calls_made.fetch_add(1, Ordering::Relaxed);
        }
        plan
    }

    fn commit(
        &self,
        cluster: &Cluster,
        actions: Vec<(AgentId, StepPlan)>,
    ) -> Vec<(AgentId, Point)> {
        let plans: Vec<(u32, StepPlan)> = actions.into_iter().map(|(a, p)| (a.0, p)).collect();
        let mut village = self.village.lock();
        village.commit_step(self.step_offset + cluster.step.0, &plans);
        plans
            .into_iter()
            .map(|(a, p)| (AgentId(a), p.move_to))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::village::VillageConfig;
    use aim_core::exec::threaded::{run_threaded, ThreadedConfig};
    use aim_core::policy::DependencyPolicy;
    use aim_core::prelude::*;
    use aim_llm::InstantBackend;
    use aim_store::Db;
    use std::sync::Arc;

    fn run_live(policy: DependencyPolicy, steps: u32) -> (Village, u64) {
        let village = Village::generate(&VillageConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 5,
        });
        let program = Arc::new(VillageProgram::new(village));
        let initial = program.initial_positions();
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            policy,
            Arc::new(Db::new()),
            &initial,
            Step(steps),
        )
        .unwrap();
        let backend: Arc<dyn LlmBackend> = Arc::new(InstantBackend::new());
        run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig::default(),
        )
        .unwrap();
        assert!(sched.is_done());
        assert!(sched.graph().validate().is_ok());
        let calls = program.calls_made();
        (
            Arc::try_unwrap(program).expect("sole owner").into_village(),
            calls,
        )
    }

    #[test]
    fn live_village_runs_under_metropolis() {
        // A morning window: agents asleep → no calls, but world advances.
        let (v, _calls) = run_live(DependencyPolicy::Spatiotemporal, 20);
        assert_eq!(
            v.events().len(),
            0,
            "asleep at midnight: no events in 20 steps"
        );
    }

    #[test]
    fn live_ooo_matches_lockstep_outcome() {
        // The paper's correctness claim: OOO execution does not change the
        // simulation outcome. Run the same village lock-step and under the
        // spatiotemporal policy and compare final world state.
        let steps = 60;
        let (ooo, ooo_calls) = run_live(DependencyPolicy::Spatiotemporal, steps);
        let (sync, sync_calls) = run_live(DependencyPolicy::GlobalSync, steps);
        assert_eq!(
            ooo.positions(),
            sync.positions(),
            "final positions must match"
        );
        assert_eq!(ooo.events(), sync.events(), "world event logs must match");
        assert_eq!(ooo_calls, sync_calls, "same calls issued");
    }
}
