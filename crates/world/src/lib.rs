//! # aim-world
//!
//! A GenAgent-style simulated world — the "SmallVille" substrate the AI
//! Metropolis paper evaluates on (§2.1, §4.2).
//!
//! The original generative-agents world is a 100×140 tile town inhabited by
//! 25 LLM-driven characters with personalities, social ties, daily
//! routines, and a memory stream; agents perceive their surroundings
//! (radius 4), plan, reflect, move one tile per 10-second step, and hold
//! multi-turn conversations when they meet. That implementation (and the
//! GPT-3.5 traces collected from it) is not available here, so this crate
//! rebuilds the world from scratch:
//!
//! * [`grid`] — procedural tile maps with buildings, doors and named areas,
//!   including side-by-side *ville concatenation* for the paper's
//!   1000-agent scaling study (§4.3);
//! * [`pathfind`] — A* over walkable tiles;
//! * [`persona`] — characters with homes, workplaces, and a friendship
//!   graph;
//! * [`schedule`] — wake/sleep and activity routines that produce the
//!   diurnal LLM-call curve of Fig. 4c (sleep trough at 1–4 am, lunch
//!   peak at noon);
//! * [`memory`] — the GenAgent memory stream: observations scored by
//!   recency × importance × relevance, with reflection triggers;
//! * [`conversation`] — proximity- and friendship-gated multi-turn
//!   dialogues that couple agents for several steps;
//! * [`scripted`] — a deterministic "scripted LLM" supplying decisions and
//!   token-length samples so self-play needs no real model;
//! * [`village`] — the assembled world with its per-step agent loop
//!   (perceive → retrieve → plan), used both to synthesize traces and to
//!   run live under the engine;
//! * [`program`] — a [`aim_core::exec::threaded::ClusterProgram`]
//!   implementation so the threaded runtime can drive a live village.
//!
//! The crate's output is *workload-faithful*, not literary: LLM calls carry
//! realistic token counts and kinds, not actual prose.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod city;
pub mod conversation;
pub mod grid;
pub mod memory;
pub mod pathfind;
pub mod persona;
pub mod program;
pub mod schedule;
pub mod scripted;
pub mod village;

pub use city::{CityConfig, RoadGraph};
pub use grid::{Area, AreaKind, TileMap};
pub use persona::Persona;
pub use village::{Village, VillageConfig, WorldEvent};

/// Steps per simulated day: 24 h × 3600 s / 10 s per step (paper §2.1).
pub const STEPS_PER_DAY: u32 = 8_640;

/// Steps per simulated hour.
pub const STEPS_PER_HOUR: u32 = 360;

/// Converts a step index (within a day) to `(hour, minute)`.
pub fn step_to_clock(step: u32) -> (u32, u32) {
    let s = step % STEPS_PER_DAY;
    (s / STEPS_PER_HOUR, (s % STEPS_PER_HOUR) / 6)
}

/// Converts an `(hour, minute)` wall-clock time to a step index.
pub fn clock_to_step(hour: u32, minute: u32) -> u32 {
    hour * STEPS_PER_HOUR + minute * 6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversions_roundtrip() {
        assert_eq!(step_to_clock(0), (0, 0));
        assert_eq!(step_to_clock(clock_to_step(12, 30)), (12, 30));
        assert_eq!(clock_to_step(24, 0), STEPS_PER_DAY);
        assert_eq!(
            step_to_clock(STEPS_PER_DAY + 6),
            (0, 1),
            "wraps around midnight"
        );
    }
}
