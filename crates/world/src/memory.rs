//! The GenAgent memory stream (paper §2.1, Algorithm 2's `retrieve`).
//!
//! Agents log what they observe; retrieval scores memories by
//! **recency × importance × relevance** and feeds the top-k into prompts,
//! which is why GenAgent prompt lengths grow over a simulated day. When
//! accumulated importance crosses a threshold the agent *reflects*,
//! synthesizing higher-level memories — an extra LLM call chain.

use serde::{Deserialize, Serialize};

/// What kind of memory an entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MemoryKind {
    /// Something perceived in the world.
    Observation,
    /// A conversation summary.
    Conversation,
    /// A synthesized reflection.
    Reflection,
    /// A plan decision.
    Plan,
}

impl MemoryKind {
    /// Stable one-byte code for the state codec (checkpoint capture).
    pub fn code(self) -> u8 {
        match self {
            MemoryKind::Observation => 0,
            MemoryKind::Conversation => 1,
            MemoryKind::Reflection => 2,
            MemoryKind::Plan => 3,
        }
    }

    /// Inverse of [`MemoryKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => MemoryKind::Observation,
            1 => MemoryKind::Conversation,
            2 => MemoryKind::Reflection,
            3 => MemoryKind::Plan,
            _ => return None,
        })
    }
}

/// One record in the stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryEntry {
    /// Absolute step when recorded.
    pub step: u32,
    /// Kind of record.
    pub kind: MemoryKind,
    /// Poignancy in `[0, 10]` (GenAgent's importance score).
    pub importance: f32,
    /// Bag of keyword ids (subjects, places, partners).
    pub keywords: Vec<u32>,
}

/// Accumulated importance that triggers a reflection (GenAgent uses 150
/// over recent events; ours is scaled to per-step importance rates).
pub const REFLECTION_THRESHOLD: f32 = 200.0;

/// An agent's append-only memory stream with scored retrieval.
///
/// # Example
///
/// ```
/// use aim_world::memory::{MemoryKind, MemoryStream};
///
/// let mut m = MemoryStream::new();
/// m.observe(10, MemoryKind::Observation, 3.0, vec![1, 2]);
/// m.observe(500, MemoryKind::Observation, 3.0, vec![2, 3]);
/// let hits = m.retrieve(510, &[2], 1);
/// assert_eq!(hits[0].step, 500, "recent relevant memory wins");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStream {
    entries: Vec<MemoryEntry>,
    since_reflection: f32,
}

impl MemoryStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[MemoryEntry] {
        &self.entries
    }

    /// Importance accumulated since the last reflection (the state behind
    /// [`MemoryStream::should_reflect`]) — captured by checkpoints so a
    /// restored agent reflects at the same step it would have.
    pub fn since_reflection(&self) -> f32 {
        self.since_reflection
    }

    /// Rebuilds a stream from captured state: the exact inverse of
    /// reading [`MemoryStream::entries`] and
    /// [`MemoryStream::since_reflection`].
    pub fn from_parts(entries: Vec<MemoryEntry>, since_reflection: f32) -> Self {
        MemoryStream {
            entries,
            since_reflection,
        }
    }

    /// Appends a memory.
    pub fn observe(&mut self, step: u32, kind: MemoryKind, importance: f32, keywords: Vec<u32>) {
        self.since_reflection += importance;
        self.entries.push(MemoryEntry {
            step,
            kind,
            importance,
            keywords,
        });
    }

    /// Scores and returns the top-`k` memories for a query at `now`.
    ///
    /// Score = `0.5·recency + 0.3·importance/10 + 1.0·relevance`, with
    /// exponential recency decay (half-life ≈ half a simulated day) and
    /// relevance = fraction of query keywords present. Ties break toward
    /// more recent entries. This mirrors GenAgent's weighted retrieval.
    pub fn retrieve(&self, now: u32, query: &[u32], k: usize) -> Vec<&MemoryEntry> {
        let mut scored: Vec<(f64, usize)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let age = now.saturating_sub(e.step) as f64;
                let recency = (-age / 6000.0).exp(); // half-life ~0.48 day
                let relevance = if query.is_empty() {
                    0.0
                } else {
                    query.iter().filter(|q| e.keywords.contains(q)).count() as f64
                        / query.len() as f64
                };
                let score = 0.5 * recency + 0.3 * (e.importance as f64 / 10.0) + relevance;
                (score, i)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("scores are finite")
                .then(b.1.cmp(&a.1))
        });
        scored
            .into_iter()
            .take(k)
            .map(|(_, i)| &self.entries[i])
            .collect()
    }

    /// Whether enough importance accumulated to trigger a reflection.
    pub fn should_reflect(&self) -> bool {
        self.since_reflection >= REFLECTION_THRESHOLD
    }

    /// Records a reflection at `step` and resets the trigger accumulator.
    pub fn reflect(&mut self, step: u32, keywords: Vec<u32>) {
        self.entries.push(MemoryEntry {
            step,
            kind: MemoryKind::Reflection,
            importance: 8.0,
            keywords,
        });
        self.since_reflection = 0.0;
    }

    /// Estimated prompt-token contribution of retrieved context: grows with
    /// the log of stream size, mimicking GenAgent's growing prompts.
    pub fn context_tokens(&self) -> u32 {
        if self.entries.is_empty() {
            return 0;
        }
        (15.0 * (1.0 + (self.entries.len() as f64).ln())).min(120.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieval_prefers_relevance() {
        let mut m = MemoryStream::new();
        m.observe(0, MemoryKind::Observation, 5.0, vec![1]);
        m.observe(0, MemoryKind::Observation, 5.0, vec![2]);
        let hits = m.retrieve(10, &[2], 1);
        assert_eq!(hits[0].keywords, vec![2]);
    }

    #[test]
    fn retrieval_prefers_recent_among_equals() {
        let mut m = MemoryStream::new();
        m.observe(0, MemoryKind::Observation, 5.0, vec![1]);
        m.observe(8000, MemoryKind::Observation, 5.0, vec![1]);
        let hits = m.retrieve(8640, &[1], 1);
        assert_eq!(hits[0].step, 8000);
    }

    #[test]
    fn retrieval_prefers_important_old_over_trivial_old() {
        let mut m = MemoryStream::new();
        m.observe(100, MemoryKind::Observation, 9.5, vec![]);
        m.observe(100, MemoryKind::Observation, 0.5, vec![]);
        let hits = m.retrieve(200, &[], 1);
        assert!(hits[0].importance > 9.0);
    }

    #[test]
    fn k_limits_results() {
        let mut m = MemoryStream::new();
        for i in 0..10 {
            m.observe(i, MemoryKind::Observation, 1.0, vec![i]);
        }
        assert_eq!(m.retrieve(20, &[], 3).len(), 3);
        assert_eq!(m.retrieve(20, &[], 100).len(), 10);
    }

    #[test]
    fn reflection_trigger_and_reset() {
        let mut m = MemoryStream::new();
        assert!(!m.should_reflect());
        let mut step = 0;
        while !m.should_reflect() {
            m.observe(step, MemoryKind::Observation, 5.0, vec![]);
            step += 1;
            assert!(step < 100, "threshold should be reachable");
        }
        m.reflect(step, vec![7]);
        assert!(!m.should_reflect(), "reflection resets the accumulator");
        assert_eq!(m.entries().last().unwrap().kind, MemoryKind::Reflection);
    }

    #[test]
    fn context_grows_sublinearly() {
        let mut m = MemoryStream::new();
        assert_eq!(m.context_tokens(), 0);
        for i in 0..100 {
            m.observe(i, MemoryKind::Observation, 1.0, vec![]);
        }
        let c100 = m.context_tokens();
        for i in 100..1000 {
            m.observe(i, MemoryKind::Observation, 1.0, vec![]);
        }
        let c1000 = m.context_tokens();
        assert!(c100 > 0 && c1000 > c100);
        assert!(
            c1000 < c100 * 3,
            "growth must be logarithmic, got {c100} → {c1000}"
        );
    }
}
