//! Property tests for the world substrate: plans are pure and
//! order-independent, movement is lawful, and the commit protocol is
//! permutation-invariant — the facts that make out-of-order execution
//! outcome-preserving.

use aim_world::{clock_to_step, Village, VillageConfig};
use proptest::prelude::*;

fn village(seed: u64, agents: u32) -> Village {
    Village::generate(&VillageConfig {
        villes: 1,
        agents_per_ville: agents,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Committing the same batch of plans in any order yields the same
    /// world (positions, events, cooldowns).
    #[test]
    fn commit_is_permutation_invariant(
        seed in 0u64..500,
        hour in 7u32..20,
        perm_seed in any::<u64>(),
    ) {
        let start = clock_to_step(hour, 0);
        let mut base = village(seed, 10);
        base.run_lockstep(0, start, |_, _, _, _| {});

        let plans: Vec<(u32, _)> =
            (0..10u32).map(|a| (a, base.plan_step(a, start))).collect();
        let mut shuffled = plans.clone();
        // Deterministic Fisher-Yates from perm_seed.
        let mut s = perm_seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }

        let mut va = base.clone();
        let mut vb = base.clone();
        va.commit_step(start, &plans);
        vb.commit_step(start, &shuffled);
        prop_assert_eq!(va.positions(), vb.positions());
        prop_assert_eq!(va.events(), vb.events());
        for a in 0..10 {
            prop_assert_eq!(va.conversation_cooldown(a), vb.conversation_cooldown(a));
        }
    }

    /// plan_step is pure: planning twice changes nothing and returns the
    /// same plan.
    #[test]
    fn planning_is_pure(seed in 0u64..500, hour in 0u32..24, agent in 0u32..10) {
        let step = clock_to_step(hour, 17);
        let mut v = village(seed, 10);
        v.run_lockstep(0, step.saturating_sub(5), |_, _, _, _| {});
        let before = v.positions();
        let p1 = v.plan_step(agent, step);
        let p2 = v.plan_step(agent, step);
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(v.positions(), before, "planning must not mutate");
    }

    /// Over any window, agents move at most one tile per step and never
    /// stand on walls.
    #[test]
    fn movement_is_lawful(seed in 0u64..200, hour in 6u32..21) {
        let start = clock_to_step(hour, 0);
        let mut v = village(seed, 8);
        let map = v.map().clone();
        v.run_lockstep(0, start, |_, _, _, _| {});
        let mut prev = v.positions();
        v.run_lockstep(start, start + 40, |_, agent, _, new_pos| {
            let old = prev[agent as usize];
            assert!(old.manhattan(new_pos) <= 1, "agent {agent}: {old} -> {new_pos}");
            assert!(map.is_walkable(new_pos), "agent {agent} on a wall at {new_pos}");
            prev[agent as usize] = new_pos;
        });
    }

    /// Nobody plans calls while asleep, and wake chains appear exactly
    /// once per morning.
    #[test]
    fn sleep_is_silent(seed in 0u64..200) {
        let mut v = village(seed, 8);
        let mut night_calls = 0u64;
        let mut wakes = 0;
        v.run_lockstep(clock_to_step(1, 0), clock_to_step(4, 0), |_, _, plan, _| {
            night_calls += plan.calls.len() as u64;
        });
        prop_assert_eq!(night_calls, 0, "night must be silent");
        v.run_lockstep(clock_to_step(4, 0), clock_to_step(10, 0), |_, _, plan, _| {
            if plan.wakes_up() {
                wakes += 1;
            }
        });
        prop_assert_eq!(wakes, 8, "everyone wakes exactly once");
    }
}
