//! Microbenchmarks of the spatiotemporal dependency graph: the per-commit
//! transactional update and the controller's blocked/coupled queries
//! (§3.3's hot path).

use std::hint::black_box;
use std::sync::Arc;

use aim_core::depgraph::DepGraph;
use aim_core::prelude::*;
use aim_core::space::{GridSpace, Point};
use aim_store::Db;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn scatter(n: u32, spread: i32) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let x = (i as i32)
                .wrapping_mul(2654435761u32 as i32)
                .rem_euclid(spread);
            let y = (i as i32).wrapping_mul(40503).rem_euclid(spread);
            Point::new(x, y)
        })
        .collect()
}

fn mk(n: u32) -> DepGraph<GridSpace> {
    DepGraph::new(
        Arc::new(GridSpace::new(4000, 4000)),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &scatter(n, 2000),
    )
    .unwrap()
}

fn bench_advance(c: &mut Criterion) {
    let mut g = c.benchmark_group("depgraph/advance");
    for n in [25u32, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut graph = mk(n);
            let mut i = 0u32;
            b.iter(|| {
                let a = AgentId(i % n);
                let pos = graph.pos(a);
                graph
                    .advance(black_box(&[(a, Point::new(pos.x, pos.y))]))
                    .unwrap();
                i += 1;
            });
        });
    }
    g.finish();
}

fn bench_first_blocker(c: &mut Criterion) {
    let mut g = c.benchmark_group("depgraph/first_blocker");
    for n in [25u32, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut graph = mk(n);
            // Create step spread so blocked scans have work to do.
            for a in 0..n / 2 {
                let pos = graph.pos(AgentId(a));
                graph.advance(&[(AgentId(a), pos)]).unwrap();
            }
            let mut i = 0u32;
            b.iter(|| {
                let a = AgentId(i % n);
                black_box(graph.first_blocker(black_box(a)));
                i += 1;
            });
        });
    }
    g.finish();
}

fn bench_coupled_neighbors(c: &mut Criterion) {
    let mut g = c.benchmark_group("depgraph/coupled_neighbors");
    for n in [25u32, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let graph = mk(n);
            let mut i = 0u32;
            b.iter(|| {
                black_box(graph.coupled_neighbors(black_box(AgentId(i % n))));
                i += 1;
            });
        });
    }
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_advance,
    bench_first_blocker,
    bench_coupled_neighbors
);
criterion_main!(benches);
