//! Microbenchmarks of the embedded store (Redis substitute, §3.6): point
//! ops and the optimistic transactions the dependency graph commits with.

use std::hint::black_box;

use aim_store::Db;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_point_ops(c: &mut Criterion) {
    let db = Db::new();
    for i in 0..10_000u32 {
        db.set(format!("key:{i:06}"), i.to_be_bytes().to_vec());
    }
    c.bench_function("store/get", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let k = format!("key:{:06}", i % 10_000);
            black_box(db.get(black_box(&k)));
            i += 1;
        });
    });
    c.bench_function("store/set", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let k = format!("key:{:06}", i % 10_000);
            db.set(black_box(&k), i.to_be_bytes().to_vec());
            i += 1;
        });
    });
    c.bench_function("store/incr", |b| {
        b.iter(|| {
            black_box(db.incr("counter", 1).unwrap());
        });
    });
}

fn bench_transactions(c: &mut Criterion) {
    // The engine's commit shape: read-modify-write of a handful of agent
    // records plus a counter, uncontended.
    let db = Db::new();
    for i in 0..1_000u32 {
        db.set(format!("agent:{i:04}"), vec![0u8; 16]);
    }
    c.bench_function("store/txn_cluster_commit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let base = (i * 7) % 990;
            db.transaction(|txn| {
                for k in 0..4u32 {
                    let key = format!("agent:{:04}", base + k);
                    let v = txn.get(&key).unwrap_or_default();
                    txn.set(&key, v.to_vec());
                }
                let c = txn.get_i64("commits")?;
                txn.set_i64("commits", c + 1);
                Ok(())
            })
            .unwrap();
            i += 1;
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`); its presence is what lets the
    // store target join the gated allowlist.
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_point_ops,
    bench_transactions,
    bench_calibration
);
criterion_main!(benches);
