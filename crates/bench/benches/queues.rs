//! Microbenchmarks of the priority queues backing the ready/ack channels
//! (§3.1, §3.5).

use std::hint::black_box;

use aim_store::PriorityQueue;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_push_pop(c: &mut Criterion) {
    c.bench_function("queues/push_pop_priority", |b| {
        let q = PriorityQueue::new();
        let mut i = 0u64;
        b.iter(|| {
            q.push(black_box(i % 64), i).unwrap();
            black_box(q.try_pop());
            i += 1;
        });
    });
    c.bench_function("queues/push_pop_fifo", |b| {
        let q = PriorityQueue::new();
        let mut i = 0u64;
        b.iter(|| {
            q.push(0, i).unwrap();
            black_box(q.try_pop());
            i += 1;
        });
    });
}

fn bench_contended(c: &mut Criterion) {
    // Throughput with a standing backlog (the busy-hour shape).
    c.bench_function("queues/pop_with_backlog_1k", |b| {
        let q = PriorityQueue::new();
        for i in 0..1_000u64 {
            q.push(i % 360, i).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            let item = q.try_pop().expect("backlog maintained");
            q.push((item + 1) % 360, item).unwrap();
            black_box(item);
            i += 1;
        });
    });
}

criterion_group!(benches, bench_push_pop, bench_contended);
criterion_main!(benches);
