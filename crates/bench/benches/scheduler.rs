//! End-to-end scheduler microbenchmarks: full replay loops at small scale,
//! plus the ablation knobs (policy, priority) the design section calls out.

use std::hint::black_box;
use std::sync::Arc;

use aim_core::exec::sim::{run_sim, SimConfig};
use aim_core::prelude::*;
use aim_core::workload::Workload;
use aim_llm::{presets, ServerConfig, SimServer};
use aim_store::Db;
use aim_trace::{gen, oracle};
use aim_world::clock_to_step;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn trace_25() -> aim_trace::Trace {
    gen::generate(&gen::GenConfig {
        villes: 1,
        agents_per_ville: 25,
        seed: 42,
        window_start: clock_to_step(12, 0),
        window_len: 60,
    })
}

fn trace_1000() -> aim_trace::Trace {
    gen::generate(&gen::GenConfig {
        villes: 40,
        agents_per_ville: 25,
        seed: 42,
        window_start: clock_to_step(12, 0),
        window_len: 60,
    })
}

fn replay(trace: &aim_trace::Trace, policy: DependencyPolicy, priority: bool) -> f64 {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        policy,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 4, priority));
    let sim = SimConfig {
        priority_ready_queue: priority,
        ..SimConfig::default()
    };
    run_sim(&mut sched, trace, &mut server, &sim)
        .unwrap()
        .makespan
        .as_secs_f64()
}

fn bench_replay_policies(c: &mut Criterion) {
    let trace = trace_25();
    let oracle_graph = Arc::new(oracle::mine(&trace));
    let mut g = c.benchmark_group("scheduler/replay_10min_25agents");
    g.sample_size(10);
    let arms: Vec<(&str, DependencyPolicy)> = vec![
        ("parallel-sync", DependencyPolicy::GlobalSync),
        ("metropolis", DependencyPolicy::Spatiotemporal),
        ("oracle", DependencyPolicy::Oracle(oracle_graph)),
        ("no-dependency", DependencyPolicy::NoDependency),
    ];
    for (name, policy) in arms {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            b.iter(|| black_box(replay(&trace, policy.clone(), true)));
        });
    }
    g.finish();
}

fn bench_replay_1000(c: &mut Criterion) {
    // The scaling regime (OpenCity-style massive-agent worlds): the same
    // 10-minute lunch window at 1000 agents across 40 villes. This is the
    // bench the spatial index and incremental edge maintenance exist for —
    // without them the dependency-tracking loop is quadratic in agents.
    let trace = trace_1000();
    let mut g = c.benchmark_group("scheduler/replay_10min_1000agents");
    g.sample_size(10);
    let arms: Vec<(&str, DependencyPolicy)> = vec![
        ("metropolis", DependencyPolicy::Spatiotemporal),
        ("no-dependency", DependencyPolicy::NoDependency),
    ];
    for (name, policy) in arms {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            b.iter(|| black_box(replay(&trace, policy.clone(), true)));
        });
    }
    g.finish();
}

fn bench_priority_ablation(c: &mut Criterion) {
    let trace = trace_25();
    let mut g = c.benchmark_group("scheduler/priority_ablation");
    g.sample_size(10);
    for (name, priority) in [("with", true), ("without", false)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &priority,
            |b, &priority| {
                b.iter(|| black_box(replay(&trace, DependencyPolicy::Spatiotemporal, priority)));
            },
        );
    }
    g.finish();
}

fn bench_ready_clusters(c: &mut Criterion) {
    // Isolated scheduler-op cost: emit+complete cycle at 1000 agents.
    let initial: Vec<Point> = (0..1000)
        .map(|i| Point::new((i % 100) * 11, (i / 100) * 11))
        .collect();
    c.bench_function("scheduler/emit_complete_cycle_1000", |b| {
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(2000, 2000)),
            RuleParams::genagent(),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Step(1_000_000),
        )
        .unwrap();
        let mut pending = sched.ready_clusters();
        b.iter(|| {
            let c = pending.pop().expect("always refilled");
            let pos: Vec<(AgentId, Point)> = c
                .members
                .iter()
                .map(|m| (*m, sched.graph().pos(*m)))
                .collect();
            sched.complete(&c.id, &pos).unwrap();
            pending.extend(sched.ready_clusters());
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_replay_policies,
    bench_replay_1000,
    bench_priority_ablation,
    bench_ready_clusters
);
criterion_main!(benches);
