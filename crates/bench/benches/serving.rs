//! Microbenchmarks of the virtual-time serving simulator: iteration
//! processing throughput and end-to-end burst latency per preset.

use std::hint::black_box;

use aim_llm::{presets, CallKind, LlmRequest, RequestId, ServerConfig, SimServer, VirtualTime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn burst(server: &mut SimServer, n: u64) -> usize {
    for i in 0..n {
        server.submit(
            VirtualTime::ZERO,
            LlmRequest::new(
                RequestId(i),
                i as u32,
                i % 10,
                640 + (i as u32 * 37) % 200,
                20 + (i as u32) % 10,
                CallKind::Plan,
            ),
        );
    }
    server.drain().len()
}

fn bench_burst_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving/burst_drain");
    g.sample_size(20);
    for (name, preset, replicas) in [
        ("l4x1", presets::l4_llama3_8b(), 1u32),
        ("l4x8", presets::l4_llama3_8b(), 8),
        ("a100tp4x2", presets::a100_tp4_llama3_70b(), 2),
        ("mixtral-x4", presets::a100_tp2_mixtral_8x7b(), 4),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &preset, |b, preset| {
            b.iter(|| {
                let mut server =
                    SimServer::new(ServerConfig::from_preset(preset.clone(), replicas, true));
                black_box(burst(&mut server, 512))
            });
        });
    }
    g.finish();
}

fn bench_submit_advance(c: &mut Criterion) {
    c.bench_function("serving/submit_advance_steady", |b| {
        let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 2, true));
        let mut i = 0u64;
        b.iter(|| {
            server.submit(
                server.now(),
                LlmRequest::new(RequestId(i), 0, i % 5, 128, 8, CallKind::Perceive),
            );
            if let Some(t) = server.next_event() {
                black_box(server.advance(t));
            }
            i += 1;
        });
    });
}

criterion_group!(benches, bench_burst_drain, bench_submit_advance);
criterion_main!(benches);
