//! Microbenchmarks of geo-clustering (§3.4): union-find plus the spatial
//! pair search, at the agent counts of the scaling study.

use std::hint::black_box;

use aim_core::cluster::geo_cluster;
use aim_core::prelude::*;
use aim_core::space::{GridSpace, Point, Space};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn crowd(n: u32, clusters: u32) -> Vec<(AgentId, Step, Point)> {
    // Agents concentrated around `clusters` hot spots, as at lunch time.
    (0..n)
        .map(|i| {
            let c = i % clusters;
            let cx = (c as i32 % 10) * 120 + 50;
            let cy = (c as i32 / 10) * 120 + 50;
            let dx = (i as i32).wrapping_mul(2654435761u32 as i32).rem_euclid(17) - 8;
            let dy = (i as i32).wrapping_mul(40503).rem_euclid(17) - 8;
            (AgentId(i), Step(0), Point::new(cx + dx, cy + dy))
        })
        .collect()
}

fn bench_geo_cluster(c: &mut Criterion) {
    let space = GridSpace::new(4000, 4000);
    let params = RuleParams::genagent();
    let mut g = c.benchmark_group("clustering/geo_cluster");
    for n in [25u32, 100, 500, 1000, 2000, 5000, 10000] {
        let agents = crowd(n, (n / 20).max(1));
        g.bench_with_input(BenchmarkId::from_parameter(n), &agents, |b, agents| {
            b.iter(|| black_box(geo_cluster(&space, params, Step(0), black_box(agents))));
        });
    }
    g.finish();
}

fn bench_pairs_within(c: &mut Criterion) {
    let space = GridSpace::new(4000, 4000);
    let mut g = c.benchmark_group("clustering/pairs_within");
    for n in [100u32, 1000, 5000, 10000] {
        let pts: Vec<Point> = crowd(n, (n / 20).max(1))
            .into_iter()
            .map(|(_, _, p)| p)
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| black_box(space.pairs_within(black_box(pts), 5)));
        });
    }
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_geo_cluster,
    bench_pairs_within
);
criterion_main!(benches);
