//! Microbenchmarks of the distributed tracker (`aim_core::dist`): what
//! the typed message boundary costs relative to the shared-memory
//! sharded tracker, and what a protocol round-trip itself costs.
//!
//! Three questions, one group each:
//!
//! - `dist/roundtrip` — the floor: one no-payload request–reply cycle
//!   through a channel-backed worker (send + worker dispatch + reply).
//! - `dist/codec` — `AIMMSG v1` encode+decode of a realistic relink
//!   batch, the phase-2 per-message serialization cost.
//! - `dist/leader_commit_skewed` — steady-state advance+rollback of one
//!   leader in the skewed-straggler regime (the `shard` bench workload)
//!   on channel-isolated workers vs the shared-memory
//!   [`ShardedDepGraph`] at the same width: the price of full isolation
//!   on the hot path.

use std::hint::black_box;
use std::sync::Arc;

use aim_core::depgraph::{EdgeMode, GraphOptions};
use aim_core::dist::{codec, CtrlMsg, DistTracker, Probe, ShardMsg};
use aim_core::prelude::*;
use aim_core::shard::{ShardedDepGraph, StripShardMap};
use aim_core::space::{GridSpace, Point};
use aim_store::Db;
use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const MAP_W: u32 = 2_000;
const MAP_H: u32 = 600;

/// Steps the leaders run ahead of the straggler pocket (see the `shard`
/// bench for the workload's rationale).
const SKEW: u32 = 48;
const STRAGGLER_X: i32 = 100;

fn scatter(n: u32) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let x = (i as i64).wrapping_mul(2654435761).rem_euclid(MAP_W as i64) as i32;
            let y = (i as i64).wrapping_mul(40503).rem_euclid(MAP_H as i64) as i32;
            Point::new(x, y)
        })
        .collect()
}

fn options() -> GraphOptions {
    GraphOptions {
        edges: EdgeMode::Maintained,
        history: false,
    }
}

fn leaders(pts: &[Point]) -> Vec<(AgentId, Point)> {
    pts.iter()
        .enumerate()
        .filter(|(_, p)| p.x >= STRAGGLER_X)
        .map(|(i, p)| (AgentId(i as u32), *p))
        .collect()
}

fn mk_dist_skewed(n: u32, width: usize) -> DistTracker<GridSpace> {
    let pts = scatter(n);
    let mut g = DistTracker::new(
        Arc::new(GridSpace::new(MAP_W, MAP_H)),
        RuleParams::genagent(),
        &pts,
        Arc::new(StripShardMap::new(MAP_W, width)),
        options(),
    )
    .unwrap();
    let batch = leaders(&pts);
    for _ in 0..SKEW {
        g.advance(&batch).unwrap();
    }
    g
}

fn mk_shared_skewed(n: u32, width: usize) -> ShardedDepGraph<GridSpace> {
    let pts = scatter(n);
    let mut g = ShardedDepGraph::new_with_options(
        Arc::new(GridSpace::new(MAP_W, MAP_H)),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &pts,
        Arc::new(StripShardMap::new(MAP_W, width)),
        options(),
    )
    .unwrap();
    let batch = leaders(&pts);
    for _ in 0..SKEW {
        g.advance(&batch).unwrap();
    }
    g
}

/// One request–reply cycle through a channel-isolated worker, no
/// payload: the message boundary's latency floor.
fn bench_roundtrip(c: &mut Criterion) {
    let mut grp = c.benchmark_group("dist/roundtrip");
    // A one-worker tracker over a handful of agents; Quiesce is the
    // smallest request whose reply still proves the worker dispatched.
    let pts: Vec<Point> = (0..8).map(|i| Point::new(i * 8, 10)).collect();
    let mut g = DistTracker::new(
        Arc::new(GridSpace::new(64, 64)),
        RuleParams::genagent(),
        &pts,
        Arc::new(StripShardMap::new(64, 1)),
        options(),
    )
    .unwrap();
    grp.bench_function("quiesce", |b| {
        b.iter(|| {
            g.check_invariants();
            black_box(g.len())
        });
    });
    grp.finish();
}

/// `AIMMSG v1` encode+decode of a 64-probe relink query and its 64-edge
/// reply — the phase-2 serialization cost of one realistic exchange.
fn bench_codec(c: &mut Criterion) {
    let mut grp = c.benchmark_group("dist/codec");
    let space = GridSpace::new(MAP_W, MAP_H);
    let query: CtrlMsg<Point> = CtrlMsg::RelinkQuery {
        probes: (0..64)
            .map(|i| Probe {
                agent: i,
                step: i % 7,
                pos: Point::new(i as i32 * 3, i as i32 % 100),
            })
            .collect(),
    };
    let reply: ShardMsg<Point> = ShardMsg::Edges {
        edges: (0..64)
            .map(|i| aim_core::dist::WireEdge {
                coupled: i % 2 == 0,
                a: i,
                b: i + 1,
            })
            .collect(),
    };
    grp.bench_function("relink_exchange", |b| {
        b.iter(|| {
            let mut buf = BytesMut::new();
            codec::encode_ctrl(&space, black_box(&query), &mut buf);
            codec::encode_shard(&space, black_box(&reply), &mut buf);
            let mut rd = Bytes::from(buf.freeze());
            let q = codec::decode_ctrl(&space, &mut rd).unwrap();
            let r = codec::decode_shard(&space, &mut rd).unwrap();
            black_box((q, r))
        });
    });
    grp.finish();
}

/// Steady-state single-leader commit in the skewed regime: the
/// channel-isolated tracker against the shared-memory sharded tracker
/// at the same width (advance one leader, roll it straight back).
fn bench_leader_commit_skewed(c: &mut Criterion) {
    let mut grp = c.benchmark_group("dist/leader_commit_skewed");
    grp.sample_size(20);
    for n in [1_000u32, 10_000] {
        let width = 4usize;
        {
            let mut g = mk_dist_skewed(n, width);
            let a = (0..n)
                .find(|&i| g.pos(AgentId(i)).x >= MAP_W as i32 / 2)
                .map(AgentId)
                .expect("a leader exists");
            let pos = g.pos(a);
            let step = g.step(a);
            grp.bench_with_input(BenchmarkId::new(format!("{n}"), "dist-w4"), &n, |b, _| {
                b.iter(|| {
                    g.advance(black_box(&[(a, pos)])).unwrap();
                    g.rollback(&[(a, step, pos)]).unwrap();
                });
            });
        }
        {
            let mut g = mk_shared_skewed(n, width);
            let a = (0..n)
                .find(|&i| g.pos(AgentId(i)).x >= MAP_W as i32 / 2)
                .map(AgentId)
                .expect("a leader exists");
            let pos = g.pos(a);
            let step = g.step(a);
            grp.bench_with_input(BenchmarkId::new(format!("{n}"), "shared-w4"), &n, |b, _| {
                b.iter(|| {
                    g.advance(black_box(&[(a, pos)])).unwrap();
                    g.rollback(&[(a, step, pos)]).unwrap();
                });
            });
        }
    }
    grp.finish();
}

/// Per-message dispatch through [`ShardWorker::handle`] with no
/// telemetry installed: the path every protocol message pays. The sink
/// is cached behind a generation counter, so this is one relaxed atomic
/// load per message — not a mutex acquire plus an `Arc` clone. A
/// regression here means the lock crept back onto the per-message path.
fn bench_handle_no_telemetry(c: &mut Criterion) {
    use aim_core::dist::ShardWorker;
    let mut grp = c.benchmark_group("dist/handle");
    let pts: Vec<Point> = (0..8).map(|i| Point::new(i * 8, 10)).collect();
    let mut worker = ShardWorker::new(
        0,
        Arc::new(GridSpace::new(64, 64)),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        false,
        Arc::default(),
    );
    let records = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| aim_core::dist::NodeRecord {
            agent: i as u32,
            step: 0,
            pos: p,
            history: vec![],
        })
        .collect();
    assert_eq!(
        worker.handle(CtrlMsg::Arrive { records }),
        ShardMsg::Done,
        "worker populated"
    );
    grp.bench_function("quiesce_no_telemetry", |b| {
        b.iter(|| black_box(worker.handle(CtrlMsg::Quiesce)));
    });
    grp.finish();
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_roundtrip,
    bench_codec,
    bench_leader_commit_skewed,
    bench_handle_no_telemetry
);
criterion_main!(benches);
