//! Microbenchmarks of the fleet machinery the city-over-fleet loop
//! leans on per call: prefix-LRU observation (hit, miss, and eviction
//! paths), the fault gate, prefix-affinity routing, and the full
//! fleet-call path with prefix accounting and fault plans armed.
//!
//! The `repro city-fleet` experiment measures the closed loop
//! end-to-end; these benches isolate the per-call costs so a regression
//! in any one layer is attributable.

use std::hint::black_box;

use aim_llm::{
    CallKind, FaultPlan, FleetConfig, LlmBackend, LlmRequest, PrefixAffinity, PrefixTracker,
    ReplicaSpec, ReplicaView, RequestId, RoutePolicy, RoutePolicyKind,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn req(i: u64, agents: u64) -> LlmRequest {
    LlmRequest::new(
        RequestId(i),
        (i % agents) as u32,
        i % 10,
        640,
        20,
        CallKind::Plan,
    )
    .with_template(((i % agents) % 5) as u32, 320)
}

/// Prefix-tracker observation cost. `resident` keeps every agent
/// resident (pure hit path); `thrash` sizes the LRU at half the agent
/// population so half the observations evict — the city experiment's
/// round-robin regime.
fn bench_prefix_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("city_fleet/prefix_observe");
    for (label, agents, entries) in [("resident", 512u64, 2_048usize), ("thrash", 512, 256)] {
        let mut tracker = PrefixTracker::new(entries);
        // Warm to steady state so the bench measures neither a cold
        // cache nor unbounded growth.
        for i in 0..(agents * 4) {
            tracker.observe(
                (i % agents) as u32,
                Some(((i % agents) % 5) as u32),
                640,
                320,
            );
        }
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(label), &entries, |b, _| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let agent = (i % agents) as u32;
                black_box(tracker.observe(agent, Some((agent % 5) as u32), 640, 320))
            });
        });
    }
    g.finish();
}

/// Fault-plan evaluation: the gate every attempt passes through, from
/// the no-op plan to one with every window armed.
fn bench_fault_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("city_fleet/fault_gate");
    let plans = [
        ("none", FaultPlan::none()),
        (
            "armed",
            FaultPlan::none()
                .fail_after(u64::MAX)
                .unavailable_between(1_000, 2_000)
                .spike_between(5_000, 6_000, 250),
        ),
    ];
    for (label, plan) in plans {
        let mut tick = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, p| {
            b.iter(|| {
                tick = tick.wrapping_add(1);
                black_box(p.outcome(tick % 512, tick % 8_192))
            });
        });
    }
    g.finish();
}

/// Prefix-affinity pick cost by fleet width, including the linear probe
/// over availability (one replica in eight marked down).
fn bench_route_affinity(c: &mut Criterion) {
    let mut g = c.benchmark_group("city_fleet/route_affinity");
    for width in [2usize, 8, 32] {
        let views: Vec<ReplicaView> = (0..width)
            .map(|id| ReplicaView {
                id,
                outstanding: id % 3,
                outstanding_tokens: (id as u64) * 640,
                served: id as u64 * 10,
                interactive: false,
                available: id % 8 != 7,
            })
            .collect();
        let policy = PrefixAffinity::new();
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(policy.route(&req(i, 512), &views))
            });
        });
    }
    g.finish();
}

/// The full fleet-call path over instant replicas: routing, the fault
/// gate, prefix accounting, latency histogram — everything but the
/// model. `faulted` arms (never-firing) windows on every replica so the
/// gate's armed path is on the call path.
fn bench_fleet_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("city_fleet/fleet_call");
    for (label, fault) in [
        ("clean", FaultPlan::none()),
        (
            "faulted",
            FaultPlan::none()
                .unavailable_between(u64::MAX - 1, u64::MAX)
                .spike_between(u64::MAX - 1, u64::MAX, 1),
        ),
    ] {
        let mut cfg = FleetConfig::new("bench", RoutePolicyKind::PrefixAffinity)
            .with_prefix_lru_entries(1_024);
        for _ in 0..4 {
            cfg = cfg.with_replica(ReplicaSpec::instant().with_fault(fault));
        }
        let fleet = cfg.build();
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(label), &fault, |b, _| {
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(fleet.call(&req(i, 512)))
            });
        });
    }
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_prefix_observe,
    bench_fault_gate,
    bench_route_affinity,
    bench_fleet_call
);
criterion_main!(benches);
