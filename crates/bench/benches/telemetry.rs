//! Microbenchmarks of the `aim_core::telemetry` hot path.
//!
//! The subsystem's contract is that observability is cheap enough to
//! leave compiled in: an *enabled* span record is one clock read plus
//! one lock-free slot claim (`fetch_add` + release store), and a
//! *disabled* probe is a single relaxed atomic load returning `None`
//! before any clock or buffer work happens. These benches pin both
//! costs, plus the cold drain that `Telemetry::finish` pays once per
//! run. `bench_gate` holds the numbers to the same 5% regression
//! threshold as the scheduler benches — the disabled row is the one
//! that guards "telemetry off costs nothing".

use std::hint::black_box;
use std::sync::Arc;

use aim_core::telemetry::{SpanKind, Telemetry};
use aim_llm::CallKind;
use criterion::{criterion_group, criterion_main, Criterion};

/// A representative hot-path span: the per-agent LLM call record.
fn llm_span(i: u64) -> SpanKind {
    SpanKind::LlmCall {
        agent: (i % 1_000) as u32,
        step: (i / 1_000) as u32,
        request: i,
        kind: CallKind::Plan,
    }
}

/// Enabled-path record: `start()` + `record()` through a per-thread
/// recorder, exactly as a worker thread emits spans mid-run. The buffer
/// is sized so the loop never overflows (overflow is counted, not
/// blocking, but we want the claim+store cost, not the drop path).
fn bench_record_span(c: &mut Criterion) {
    let tel = Arc::new(Telemetry::with_capacity(1 << 22));
    let rec = tel.recorder();
    let mut i = 0u64;
    c.bench_function("telemetry/record_span", |b| {
        b.iter(|| {
            let t0 = rec.start().expect("enabled");
            rec.record(t0, black_box(llm_span(i)));
            i += 1;
        });
    });
}

/// Disabled-path probe: the exact instrumentation shape every hot site
/// uses — `start()` returns `None` and the record never happens. This
/// is the cost telemetry adds to a run that never asked for it, and the
/// number that must not move for `scheduler/emit_complete_cycle_1000`
/// to stay inside the gate.
fn bench_disabled_noop(c: &mut Criterion) {
    let tel = Arc::new(Telemetry::new());
    tel.set_enabled(false);
    let rec = tel.recorder();
    let mut i = 0u64;
    c.bench_function("telemetry/disabled_noop", |b| {
        b.iter(|| {
            if let Some(t0) = rec.start() {
                rec.record(t0, llm_span(i));
            }
            i += 1;
            black_box(i)
        });
    });
}

/// Cold drain: fill a buffer with 4096 spans and collect them sorted,
/// the once-per-run cost `finish` pays. Per-iteration time therefore
/// covers record×4096 + drain×1.
fn bench_drain(c: &mut Criterion) {
    let tel = Arc::new(Telemetry::with_capacity(1 << 13));
    let rec = tel.recorder();
    c.bench_function("telemetry/record_4096_drain", |b| {
        b.iter(|| {
            for i in 0..4_096u64 {
                let t0 = rec.start().expect("enabled");
                rec.record(t0, llm_span(i));
            }
            black_box(tel.drain_spans().len())
        });
    });
}

/// A realistic harvest reply: 256 worker-side apply spans plus the
/// counter deltas one quiesce-barrier drain ships.
fn harvest_reply() -> aim_core::dist::ShardMsg<aim_core::space::Point> {
    use aim_core::telemetry::{BoundaryOp, Counter, Span};
    aim_core::dist::ShardMsg::Telemetry {
        worker: 3,
        now_us: 123_456_789,
        spans: (0..256u64)
            .map(|i| Span {
                start_us: i * 100,
                end_us: i * 100 + 37,
                track: 0,
                kind: SpanKind::Boundary {
                    worker: 3,
                    op: BoundaryOp::Apply,
                    messages: 1,
                },
            })
            .collect(),
        counters: vec![
            (Counter::BoundaryMessages, 256),
            (Counter::RelinkBatches, 16),
        ],
        dropped: 0,
    }
}

/// `AIMMSG v1` encode of one harvest reply — the wire cost a worker pays
/// per quiesce-barrier drain (256 spans ≈ a full barrier interval).
fn bench_harvest_encode(c: &mut Criterion) {
    use aim_core::dist::codec;
    use bytes::BytesMut;
    let space = aim_core::space::GridSpace::new(64, 64);
    let msg = harvest_reply();
    c.bench_function("telemetry/harvest_encode", |b| {
        b.iter(|| {
            let mut buf = BytesMut::new();
            codec::encode_shard(&space, black_box(&msg), &mut buf);
            black_box(buf.len())
        });
    });
}

/// `AIMMSG v1` decode of the same harvest reply — the controller-side
/// cost of folding one worker's drain into the merged timeline.
fn bench_harvest_decode(c: &mut Criterion) {
    use aim_core::dist::codec;
    use bytes::{Bytes, BytesMut};
    let space = aim_core::space::GridSpace::new(64, 64);
    let msg = harvest_reply();
    let mut buf = BytesMut::new();
    codec::encode_shard(&space, &msg, &mut buf);
    let encoded = Bytes::from(buf.freeze());
    c.bench_function("telemetry/harvest_decode", |b| {
        b.iter(|| {
            let mut rd = encoded.clone();
            black_box(codec::decode_shard(&space, &mut rd).unwrap())
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_record_span,
    bench_disabled_noop,
    bench_drain,
    bench_harvest_encode,
    bench_harvest_decode
);
criterion_main!(benches);
