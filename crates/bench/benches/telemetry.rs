//! Microbenchmarks of the `aim_core::telemetry` hot path.
//!
//! The subsystem's contract is that observability is cheap enough to
//! leave compiled in: an *enabled* span record is one clock read plus
//! one lock-free slot claim (`fetch_add` + release store), and a
//! *disabled* probe is a single relaxed atomic load returning `None`
//! before any clock or buffer work happens. These benches pin both
//! costs, plus the cold drain that `Telemetry::finish` pays once per
//! run. `bench_gate` holds the numbers to the same 5% regression
//! threshold as the scheduler benches — the disabled row is the one
//! that guards "telemetry off costs nothing".

use std::hint::black_box;
use std::sync::Arc;

use aim_core::telemetry::{SpanKind, Telemetry};
use aim_llm::CallKind;
use criterion::{criterion_group, criterion_main, Criterion};

/// A representative hot-path span: the per-agent LLM call record.
fn llm_span(i: u64) -> SpanKind {
    SpanKind::LlmCall {
        agent: (i % 1_000) as u32,
        step: (i / 1_000) as u32,
        request: i,
        kind: CallKind::Plan,
    }
}

/// Enabled-path record: `start()` + `record()` through a per-thread
/// recorder, exactly as a worker thread emits spans mid-run. The buffer
/// is sized so the loop never overflows (overflow is counted, not
/// blocking, but we want the claim+store cost, not the drop path).
fn bench_record_span(c: &mut Criterion) {
    let tel = Arc::new(Telemetry::with_capacity(1 << 22));
    let rec = tel.recorder();
    let mut i = 0u64;
    c.bench_function("telemetry/record_span", |b| {
        b.iter(|| {
            let t0 = rec.start().expect("enabled");
            rec.record(t0, black_box(llm_span(i)));
            i += 1;
        });
    });
}

/// Disabled-path probe: the exact instrumentation shape every hot site
/// uses — `start()` returns `None` and the record never happens. This
/// is the cost telemetry adds to a run that never asked for it, and the
/// number that must not move for `scheduler/emit_complete_cycle_1000`
/// to stay inside the gate.
fn bench_disabled_noop(c: &mut Criterion) {
    let tel = Arc::new(Telemetry::new());
    tel.set_enabled(false);
    let rec = tel.recorder();
    let mut i = 0u64;
    c.bench_function("telemetry/disabled_noop", |b| {
        b.iter(|| {
            if let Some(t0) = rec.start() {
                rec.record(t0, llm_span(i));
            }
            i += 1;
            black_box(i)
        });
    });
}

/// Cold drain: fill a buffer with 4096 spans and collect them sorted,
/// the once-per-run cost `finish` pays. Per-iteration time therefore
/// covers record×4096 + drain×1.
fn bench_drain(c: &mut Criterion) {
    let tel = Arc::new(Telemetry::with_capacity(1 << 13));
    let rec = tel.recorder();
    c.bench_function("telemetry/record_4096_drain", |b| {
        b.iter(|| {
            for i in 0..4_096u64 {
                let t0 = rec.start().expect("enabled");
                rec.record(t0, llm_span(i));
            }
            black_box(tel.drain_spans().len())
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_record_span,
    bench_disabled_noop,
    bench_drain
);
criterion_main!(benches);
