//! Checkpoint-subsystem microbenchmarks: AIMSNAP encode/restore over a
//! long-horizon-shaped store (1000 agents × a 64-step history window),
//! the streaming prefix walk the snapshot writer and eviction pass use,
//! and the eviction guard path that runs at every checkpoint.

use std::hint::black_box;
use std::sync::Arc;

use aim_core::depgraph::{DepGraph, EdgeMode, GraphOptions};
use aim_core::prelude::*;
use aim_store::{Db, Snapshot, SnapshotBuilder};
use criterion::{criterion_group, criterion_main, Criterion};

const AGENTS: u32 = 1000;
const WINDOW: u32 = 64;

/// A store shaped like a checkpointed 1000-agent run: one authoritative
/// record per agent plus a 64-step resident history window (66k records
/// total, 12-byte binary keys, small binary values).
fn long_horizon_db() -> Db {
    let db = Db::new();
    for a in 0..AGENTS {
        let key = aim_store::Key::tagged_u32(*b"dagt", a);
        db.set(&key, vec![0u8; 12]);
        for s in 0..WINDOW {
            let key = aim_store::Key::tagged_u32_pair(*b"dhst", s, a);
            db.set(&key, vec![0u8; 12]);
        }
    }
    db.set_i64("dep:commits", WINDOW as i64);
    db.set_i64("dep:hist_floor", 0);
    db
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let db = long_horizon_db();
    let n = db.len();
    c.bench_function("snapshot/encode_66k", |b| {
        b.iter(|| {
            let mut sink = std::io::sink();
            let written = SnapshotBuilder::new().db(&db).write_to(&mut sink).unwrap();
            black_box(written);
        });
    });
    let bytes = SnapshotBuilder::new().db(&db).to_bytes().unwrap();
    c.bench_function("snapshot/parse_66k", |b| {
        b.iter(|| {
            let snap = Snapshot::from_bytes(bytes.clone()).unwrap();
            black_box(snap.info().db_records);
        });
    });
    c.bench_function("snapshot/restore_66k", |b| {
        let snap = Snapshot::from_bytes(bytes.clone()).unwrap();
        b.iter(|| {
            let restored = snap.restore_db();
            black_box(restored.len());
        });
    });
    c.bench_function("snapshot/for_each_prefix_66k", |b| {
        b.iter(|| {
            let mut count = 0u64;
            let mut bytes_seen = 0u64;
            db.for_each_prefix([], |k, v| {
                count += 1;
                bytes_seen += (k.len() + v.len()) as u64;
                std::ops::ControlFlow::Continue(())
            });
            assert_eq!(count as usize, n);
            black_box(bytes_seen);
        });
    });
    c.bench_function("snapshot/scan_prefix_66k", |b| {
        b.iter(|| {
            let all = db.scan_prefix([]);
            black_box(all.len());
        });
    });
}

fn bench_eviction_guard(c: &mut Criterion) {
    // The per-checkpoint steady state: eviction runs every cadence, but
    // when the committed floor has not moved past the watermark it must
    // return without walking history at all.
    let space = Arc::new(GridSpace::new(1000, 1000));
    let initial: Vec<Point> = (0..AGENTS)
        .map(|i| Point::new((i % 100) as i32 * 10, (i / 100) as i32 * 10))
        .collect();
    let mut graph = DepGraph::new_with_options(
        space,
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &initial,
        GraphOptions {
            edges: EdgeMode::Off,
            history: true,
        },
    )
    .unwrap();
    graph.evict_history().unwrap();
    c.bench_function("snapshot/evict_noop_1000", |b| {
        b.iter(|| {
            black_box(graph.evict_history().unwrap());
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_snapshot_codec,
    bench_eviction_guard,
    bench_calibration,
);
criterion_main!(benches);
