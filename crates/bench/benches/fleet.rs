//! Microbenchmarks of the serving fleet: per-call routing overhead by
//! policy and fleet width, and latency-profile sampling cost.

use std::hint::black_box;

use aim_llm::{
    CallKind, FleetConfig, LatencyProfile, LlmBackend, LlmRequest, ReplayBackend, ReplicaSpec,
    RequestId, RoutePolicyKind,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn req(i: u64) -> LlmRequest {
    let r = LlmRequest::new(
        RequestId(i),
        (i % 64) as u32,
        i % 10,
        640,
        20,
        CallKind::Plan,
    );
    if i % 5 == 0 {
        r.interactive()
    } else {
        r
    }
}

/// Routing + bookkeeping cost per call: the replicas are instant, so the
/// measured time is the fleet layer itself.
fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet/route");
    for policy in RoutePolicyKind::ALL {
        for width in [2usize, 8, 32] {
            let mut cfg = FleetConfig::new("bench", policy);
            for i in 0..width {
                let replica = ReplicaSpec::instant();
                // Half the fleet tagged, so lane-aware has real partitions.
                cfg = cfg.with_replica(if i % 2 == 0 {
                    replica.interactive()
                } else {
                    replica
                });
            }
            let fleet = cfg.build();
            g.bench_with_input(BenchmarkId::new(policy.as_str(), width), &width, |b, _| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    black_box(fleet.call(black_box(&req(i))))
                });
            });
        }
    }
    g.finish();
}

/// Deterministic sampling cost of the replay backend over a large
/// recorded distribution.
fn bench_replay_sample(c: &mut Criterion) {
    let mut profile = LatencyProfile::new("bench");
    for kind in CallKind::ALL {
        for i in 0..4_096u64 {
            profile.push(kind, 10_000 + i * 7);
        }
    }
    let backend = ReplayBackend::unpaced(profile, 42);
    c.bench_function("fleet/replay_sample", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(backend.planned_latency_us(black_box(&req(i))))
        });
    });
    c.bench_function("fleet/replay_call", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(backend.call(black_box(&req(i))))
        });
    });
}

criterion_group!(benches, bench_route, bench_replay_sample);
criterion_main!(benches);
