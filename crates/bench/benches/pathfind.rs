//! Microbenchmarks of A* over the SmallVille map (world substrate).

use std::hint::black_box;

use aim_world::pathfind::astar;
use aim_world::TileMap;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_astar(c: &mut Criterion) {
    let map = TileMap::smallville(25);
    let areas = map.areas();
    let homes: Vec<_> = areas
        .iter()
        .filter(|a| a.name.starts_with("house"))
        .collect();
    let cafe = areas
        .iter()
        .find(|a| a.name.contains("Cafe"))
        .expect("cafe");

    c.bench_function("pathfind/home_to_cafe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let home = homes[i % homes.len()];
            let path = astar(&map, black_box(home.door), black_box(cafe.anchor()));
            i += 1;
            black_box(path)
        });
    });

    c.bench_function("pathfind/adjacent", |b| {
        let d = cafe.door;
        b.iter(|| {
            black_box(astar(
                &map,
                black_box(d),
                black_box(aim_core::space::Point::new(d.x + 1, d.y)),
            ))
        });
    });

    let big = TileMap::smallville(25).concatenated(8);
    c.bench_function("pathfind/cross_ville_800x140", |b| {
        let from = big.areas()[0].door;
        let to = big.areas().last().unwrap().door;
        b.iter(|| black_box(astar(&big, black_box(from), black_box(to))));
    });
}

criterion_group!(benches, bench_astar);
criterion_main!(benches);
