//! Microbenchmarks of the sharded dependency tracker
//! (`aim_core::shard`): cluster growth and relink cost at 1k/10k agents
//! across shard widths 1/4/16.
//!
//! Width 1 *is* the unsharded algorithm — one index, one global step
//! range — so the `w1` rows are the baseline the sharding is judged
//! against. The workload has the structure sharding exists for: a
//! spatially local straggler pocket (the westmost band of the map) lags
//! `SKEW` steps behind the rest of the city, as a slow conversation
//! cluster does in paper Fig. 1. With one shard, every relink in the
//! city pays the straggler-widened `blocking_units(SKEW)` query radius;
//! with 16 strips, only the straggler strip does — the per-shard step
//! bounds prune both the radius and the shards visited. (On multi-core
//! machines wide batches additionally relink in parallel; the committed
//! baselines here were measured on a single-core runner, so they show
//! the pruning win alone.)

use std::hint::black_box;
use std::sync::Arc;

use aim_core::prelude::*;
use aim_core::shard::{ShardedDepGraph, StripShardMap};
use aim_core::space::{GridSpace, Point};
use aim_store::Db;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Map extent: a wide city strip (x dominates, like district columns).
const MAP_W: u32 = 2_000;
const MAP_H: u32 = 600;

/// Steps the leader population runs ahead of the straggler pocket —
/// most of one 60-step replay window, the shape a stuck conversation
/// chain (paper Fig. 1) produces.
const SKEW: u32 = 48;

/// The straggler pocket: agents with `x < STRAGGLER_X` stay at step 0.
const STRAGGLER_X: i32 = 100;

fn scatter(n: u32) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let x = (i as i64).wrapping_mul(2654435761).rem_euclid(MAP_W as i64) as i32;
            let y = (i as i64).wrapping_mul(40503).rem_euclid(MAP_H as i64) as i32;
            Point::new(x, y)
        })
        .collect()
}

/// Builds a `width`-shard tracker over `n` agents and advances everyone
/// outside the straggler pocket `SKEW` steps (in whole-population
/// batches, positions unchanged), producing the skewed steady state.
fn mk_skewed(n: u32, width: usize) -> ShardedDepGraph<GridSpace> {
    let pts = scatter(n);
    let mut g = ShardedDepGraph::new(
        Arc::new(GridSpace::new(MAP_W, MAP_H)),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &pts,
        Arc::new(StripShardMap::new(MAP_W, width)),
    )
    .unwrap();
    let leaders: Vec<(AgentId, Point)> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| p.x >= STRAGGLER_X)
        .map(|(i, p)| (AgentId(i as u32), *p))
        .collect();
    for _ in 0..SKEW {
        g.advance(&leaders).unwrap();
    }
    g
}

/// Full edge rebuild on the skewed state — the recovery/rebuild shape,
/// and the purest view of per-relink query cost (every agent relinks
/// once per iteration).
fn bench_refresh_skewed(c: &mut Criterion) {
    let mut grp = c.benchmark_group("shard/refresh_skewed");
    grp.sample_size(10);
    for n in [1_000u32, 10_000] {
        for width in [1usize, 4, 16] {
            let mut g = mk_skewed(n, width);
            grp.bench_with_input(
                BenchmarkId::new(format!("{n}"), format!("w{width}")),
                &width,
                |b, _| {
                    b.iter(|| {
                        g.refresh_edges();
                        black_box(g.len())
                    });
                },
            );
        }
    }
    grp.finish();
}

/// Steady-state single-commit cost in the skewed regime: advance one
/// leader and roll it straight back (state returns to the start every
/// iteration, so the skew neither grows nor decays).
fn bench_leader_commit_skewed(c: &mut Criterion) {
    let mut grp = c.benchmark_group("shard/leader_commit_skewed");
    for n in [1_000u32, 10_000] {
        for width in [1usize, 4, 16] {
            let mut g = mk_skewed(n, width);
            // A leader well inside the leading region.
            let a = (0..n)
                .find(|&i| g.pos(AgentId(i)).x >= MAP_W as i32 / 2)
                .map(AgentId)
                .expect("a leader exists");
            let pos = g.pos(a);
            let step = g.step(a);
            grp.bench_with_input(
                BenchmarkId::new(format!("{n}"), format!("w{width}")),
                &width,
                |b, _| {
                    b.iter(|| {
                        g.advance(black_box(&[(a, pos)])).unwrap();
                        g.rollback(&[(a, step, pos)]).unwrap();
                    });
                },
            );
        }
    }
    grp.finish();
}

/// Cluster growth + commit through the scheduler at 10k agents, uniform
/// steps (no skew): the parity check that sharding costs nothing when
/// its pruning has nothing to prune.
fn bench_emit_complete_cycle(c: &mut Criterion) {
    let mut grp = c.benchmark_group("shard/emit_complete_cycle_10000");
    for width in [1usize, 16] {
        let pts = scatter(10_000);
        let graph = ShardedDepGraph::new(
            Arc::new(GridSpace::new(MAP_W, MAP_H)),
            RuleParams::genagent(),
            Arc::new(Db::new()),
            &pts,
            Arc::new(StripShardMap::new(MAP_W, width)),
        )
        .unwrap();
        let mut sched =
            Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(1_000_000));
        let mut pending = sched.ready_clusters();
        grp.bench_with_input(
            BenchmarkId::from_parameter(format!("w{width}")),
            &width,
            |b, _| {
                b.iter(|| {
                    let c = pending.pop().expect("always refilled");
                    let pos: Vec<(AgentId, Point)> = c
                        .members
                        .iter()
                        .map(|m| (*m, sched.graph().pos(*m)))
                        .collect();
                    sched.complete(&c.id, &pos).unwrap();
                    pending.extend(sched.ready_clusters());
                });
            },
        );
    }
    grp.finish();
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_refresh_skewed,
    bench_leader_commit_skewed,
    bench_emit_complete_cycle
);
criterion_main!(benches);
