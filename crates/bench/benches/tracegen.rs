//! Microbenchmarks of trace generation (world self-play) and oracle
//! mining — the offline costs of the methodology.

use std::hint::black_box;

use aim_trace::{gen, oracle};
use aim_world::clock_to_step;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_generate_hour(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracegen/busy_hour");
    g.sample_size(10);
    for villes in [1u32, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(villes * 25),
            &villes,
            |b, &villes| {
                b.iter(|| black_box(gen::generate(&gen::GenConfig::busy_hour(villes, 42))));
            },
        );
    }
    g.finish();
}

fn bench_plan_step(c: &mut Criterion) {
    use aim_world::{Village, VillageConfig};
    let mut v = Village::generate(&VillageConfig {
        villes: 4,
        agents_per_ville: 25,
        seed: 1,
    });
    let noon = clock_to_step(12, 0);
    v.run_lockstep(0, noon, |_, _, _, _| {});
    c.bench_function("tracegen/plan_step_noon_100agents", |b| {
        let mut a = 0u32;
        b.iter(|| {
            black_box(v.plan_step(a % 100, noon));
            a += 1;
        });
    });
}

fn bench_oracle_mine(c: &mut Criterion) {
    let trace = gen::generate(&gen::GenConfig::busy_hour(4, 42));
    let mut g = c.benchmark_group("tracegen/oracle_mine");
    g.sample_size(20);
    g.bench_function("100agents_1h", |b| {
        b.iter(|| black_box(oracle::mine(black_box(&trace))));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generate_hour,
    bench_plan_step,
    bench_oracle_mine
);
criterion_main!(benches);
