//! Microbenchmarks of the speculative scheduler (paper §6): the
//! per-operation overhead of entry bookkeeping, the cost of a replay
//! under increasing run-ahead budgets, and the raw price of a squash
//! cascade — the "scalability challenge" the paper warns about,
//! quantified.

use std::hint::black_box;
use std::sync::Arc;

use aim_core::exec::sim::SimConfig;
use aim_core::prelude::*;
use aim_core::spec::{run_spec_sim, SpecParams, SpecScheduler};
use aim_core::workload::Workload;
use aim_llm::{presets, ServerConfig, SimServer};
use aim_store::Db;
use aim_trace::gen;
use aim_world::clock_to_step;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn trace_25() -> aim_trace::Trace {
    gen::generate(&gen::GenConfig {
        villes: 1,
        agents_per_ville: 25,
        seed: 42,
        window_start: clock_to_step(12, 0),
        window_len: 60,
    })
}

fn spec_replay(trace: &aim_trace::Trace, runahead: u32) -> f64 {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = SpecScheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        SpecParams::new(runahead),
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .unwrap();
    let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 4, true));
    run_spec_sim(&mut sched, trace, &mut server, &SimConfig::default())
        .unwrap()
        .makespan
        .as_secs_f64()
}

/// Replay cost across budgets: the scheduler-side overhead of tracking,
/// validating, and retiring speculative entries on a real workload.
fn bench_spec_replay(c: &mut Criterion) {
    let trace = trace_25();
    let mut g = c.benchmark_group("speculation/replay_10min_25agents");
    g.sample_size(10);
    for runahead in [0u32, 2, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(runahead),
            &runahead,
            |b, &runahead| {
                b.iter(|| black_box(spec_replay(&trace, runahead)));
            },
        );
    }
    g.finish();
}

/// Raw emit → complete → retire cycle with no blocked agents (agents on a
/// sparse diagonal): the bookkeeping floor versus the conservative
/// scheduler's equivalent bench in `scheduler.rs`.
fn bench_spec_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("speculation/emit_complete_retire");
    for n in [25usize, 250, 1000] {
        let initial: Vec<Point> = (0..n)
            .map(|i| Point::new((i as i32) * 13, (i as i32) * 13))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut s = SpecScheduler::new(
                    Arc::new(GridSpace::new(20_000, 20_000)),
                    RuleParams::genagent(),
                    SpecParams::new(4),
                    Arc::new(Db::new()),
                    &initial,
                    Step(2),
                )
                .unwrap();
                while !s.is_done() {
                    for c in s.ready_clusters().unwrap() {
                        let pos: Vec<(AgentId, Point)> =
                            c.members.iter().map(|m| (*m, s.graph().pos(*m))).collect();
                        s.complete(&c.id, &pos).unwrap();
                    }
                }
                black_box(s.stats().retired_steps)
            });
        });
    }
    g.finish();
}

/// Worst-case squash: one deep run-ahead chain invalidated by a single
/// laggard commit — measures rollback + store writes + re-dirtying.
fn bench_squash_cascade(c: &mut Criterion) {
    let mut g = c.benchmark_group("speculation/squash_depth");
    for depth in [2u32, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                // B sits 10 cells from A and speculates `depth` steps past
                // the conservative block; A then walks to within coupling
                // range, squashing all of them at its next emission.
                let mut s = SpecScheduler::new(
                    Arc::new(GridSpace::new(400, 400)),
                    RuleParams::genagent(),
                    SpecParams::new(depth),
                    Arc::new(Db::new()),
                    &[Point::new(0, 0), Point::new(10, 0)],
                    Step(depth + 8),
                )
                .unwrap();
                let ready = s.ready_clusters().unwrap();
                let c_a = ready[0].clone();
                // Drive B to exhaustion (5 firm + `depth` speculative).
                let mut c_b = ready[1].clone();
                loop {
                    let pos = s.graph().pos(AgentId(1));
                    s.complete(&c_b.id, &[(AgentId(1), pos)]).unwrap();
                    let next = s.ready_clusters().unwrap();
                    match next.first() {
                        Some(c) => c_b = c.clone(),
                        None => break,
                    }
                }
                // A hops 5 cells over 5 commits, then its emission squashes.
                let mut cluster = c_a;
                for x in 1..=5 {
                    s.complete(&cluster.id, &[(AgentId(0), Point::new(x, 0))])
                        .unwrap();
                    if let Some(c) = s.ready_clusters().unwrap().first() {
                        cluster = c.clone();
                    }
                }
                black_box(s.stats().squashed_steps)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_spec_replay,
    bench_spec_cycle,
    bench_squash_cascade
);
criterion_main!(benches);
