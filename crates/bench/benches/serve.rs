//! Microbenchmarks of the live health plane.
//!
//! The plane's contract is that observation stays off the hot path: a
//! scrape renders from atomics and a short board lock, and the one new
//! hot-adjacent cost — the `CtrlMsg::Heartbeat` arm a worker answers
//! between applies — must be cheap enough that enabling heartbeats does
//! not move the `dist` baselines. These benches pin the render costs of
//! `/metrics` and `/status` and the worker-side heartbeat handle so
//! `bench_gate` holds all three to the 5% threshold.

use std::hint::black_box;
use std::sync::Arc;

use aim_core::dist::{CtrlMsg, NodeRecord, ShardWorker};
use aim_core::health::{HealthBoard, WorkerHealth};
use aim_core::prelude::*;
use aim_core::space::GridSpace;
use aim_core::telemetry::{SpanKind, Telemetry};
use aim_serve::{RunStatus, StatusSource};
use aim_store::Db;
use criterion::{criterion_group, criterion_main, Criterion};

/// A populated source: a telemetry sink with commits on the watermark
/// plus a four-worker board — the shape a mid-run scrape sees.
fn scrape_source() -> RunStatus {
    let telemetry = Arc::new(Telemetry::with_capacity(1 << 14));
    for i in 0..1_024u64 {
        telemetry.record_at(
            i * 100,
            i * 100 + 80,
            SpanKind::Commit {
                cluster: i % 8,
                step: (i / 8) as u32,
                members: 4,
            },
        );
    }
    let board = HealthBoard::new();
    for worker in 0..4u32 {
        board.record_heartbeat(WorkerHealth {
            worker,
            name: format!("worker {worker}"),
            alive: true,
            last_seen_us: board.now_us(),
            last_applied_step: Some(128),
            queue_depth: 1,
            members: 256,
            span_overflow: 0,
        });
    }
    RunStatus::new("bench run", 1_024)
        .with_telemetry(telemetry)
        .with_board(Arc::new(board))
}

/// `/metrics` render: the full Prometheus exposition — counters,
/// commit-age gauge, and the per-worker gauge block — as one scrape
/// costs it.
fn bench_prometheus_render(c: &mut Criterion) {
    let source = scrape_source();
    c.bench_function("serve/prometheus_render", |b| {
        b.iter(|| black_box(source.metrics().len()));
    });
}

/// `/status` render: the JSON digest including the scrape-time
/// decomposition (a flight-report drain) and the worker array.
fn bench_status_json(c: &mut Criterion) {
    let source = scrape_source();
    c.bench_function("serve/status_json", |b| {
        b.iter(|| black_box(source.status_json().len()));
    });
}

/// Worker-side heartbeat handle: the exact protocol arm a controller
/// poll exercises, on a worker holding 256 members. This is the cost
/// added *inside* the worker's message loop, so it is the number that
/// must not move for the `dist` baselines to stay inside the gate.
fn bench_heartbeat_handle(c: &mut Criterion) {
    let mut worker = ShardWorker::new(
        3,
        Arc::new(GridSpace::new(64, 64)),
        RuleParams::new(2, 1),
        Arc::new(Db::new()),
        true,
        Arc::default(),
    );
    let records: Vec<NodeRecord<Point>> = (0..256u32)
        .map(|agent| {
            let pos = Point::new((agent % 64) as i32, (agent / 64) as i32);
            NodeRecord {
                agent,
                step: 0,
                pos,
                history: vec![(0, pos)],
            }
        })
        .collect();
    worker.handle(CtrlMsg::Arrive { records });
    let mut now = 0u64;
    c.bench_function("serve/heartbeat_handle", |b| {
        b.iter(|| {
            now += 1;
            black_box(worker.handle(CtrlMsg::Heartbeat {
                now_us: black_box(now),
            }))
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    // Machine-speed reference for bench_gate normalization (see
    // `aim_bench::calibration_spin`).
    c.bench_function("calibration/spin", |b| {
        b.iter(|| black_box(aim_bench::calibration_spin()))
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_prometheus_render,
    bench_status_json,
    bench_heartbeat_handle
);
criterion_main!(benches);
