//! Stream separation for live operations: `--live-stats` heartbeats go
//! to **stderr** while the experiment's tables, CSV paths, and summary
//! lines stay on **stdout**, so piping `repro`'s stdout into a file or
//! a parser never interleaves sampler output with the results.

use std::process::Command;

/// Runs the smoke experiment with a 1-second heartbeat and asserts the
/// heartbeat never leaks onto stdout (and does reach stderr — the
/// sampler beats once immediately at startup, so even a fast quick run
/// emits at least one).
#[test]
fn live_stats_heartbeat_goes_to_stderr_not_stdout() {
    let dir = std::env::temp_dir().join(format!("aim-live-streams-{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "smoke",
            "--quick",
            "--telemetry",
            dir.to_str().unwrap(),
            "--live-stats",
            "1",
        ])
        .output()
        .expect("run repro smoke");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "smoke run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("smoke:"),
        "results must land on stdout:\n{stdout}"
    );
    assert!(
        !stdout.contains("live stats"),
        "heartbeats leaked onto stdout:\n{stdout}"
    );
    assert!(
        stderr.contains("live stats · beat 1"),
        "at least one heartbeat must reach stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("aim_spans_total"),
        "heartbeats carry the Prometheus exposition:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
