//! Bench regression gate: diff fresh `BENCH_<target>.json` files (as
//! written by `cargo bench -p aim-bench -- --json`) against the committed
//! baselines and fail on per-iteration-time regressions beyond a
//! threshold.
//!
//! ```text
//! bench_gate --baseline <dir> --fresh <dir> [options]
//!
//!   --baseline <dir>       directory holding the committed BENCH_*.json
//!   --fresh <dir>          directory holding freshly produced BENCH_*.json;
//!                          repeatable — with several runs, each benchmark's
//!                          fastest calibration-adjusted time is compared
//!                          (noise bursts only ever slow a run down)
//!   --targets a,b,c        allowlisted bench targets to gate
//!                          (default: scheduler,depgraph,clustering,
//!                          shard,store,snapshot,city_fleet,telemetry)
//!   --threshold <pct>      allowed regression, percent (default: 5)
//!   --min-ns <ns>          ignore baselines below this (timer noise floor,
//!                          default: 100)
//!   --allow-regressions    report but exit 0 — the one-flag override for
//!                          intentional changes (remember to commit the
//!                          new baselines)
//! ```
//!
//! Only benchmarks present in **both** files are compared; added or
//! removed benchmarks are reported informationally. A missing fresh file
//! for an allowlisted target is an error (the bench did not run); a
//! missing baseline skips the target (first run on a new machine).
//!
//! # Machine-drift normalization
//!
//! When both files carry the `calibration/spin` benchmark (a fixed
//! workload independent of the repository's code — see
//! `aim_bench::calibration_spin`), every fresh number is divided by the
//! calibration ratio `fresh_spin / baseline_spin` before the threshold
//! applies. A uniformly slower machine (thermal throttling, CI neighbor
//! load, a different runner class) shifts the calibration by the same
//! factor as the real benchmarks and cancels out; genuine code
//! regressions do not move the calibration and are still caught. The
//! ratio is clamped to `[0.25, 4]` so a corrupt calibration cannot mask
//! a real regression arbitrarily.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The machine-speed reference benchmark present in every gated target.
const CALIBRATION: &str = "calibration/spin";

/// Parses the criterion shim's `BENCH_<target>.json`: a flat
/// `"name": integer` map under `"ns_per_iter"` (or the pre-gate
/// `"median_ns"` field, still accepted for old baselines). Hand-rolled on
/// purpose — the offline workspace has no JSON dependency, and the shim's
/// output shape is fixed (one `"key": value` pair per line).
fn parse_medians(text: &str, path: &Path) -> Result<BTreeMap<String, u128>, String> {
    let mut out = BTreeMap::new();
    let mut in_map = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"ns_per_iter\"") || line.starts_with("\"median_ns\"") {
            in_map = true;
            continue;
        }
        if !in_map {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let Some((rawk, rawv)) = line.split_once(':') else {
            return Err(format!("{}: unparseable line {line:?}", path.display()));
        };
        let key = rawk.trim().trim_matches('"').to_string();
        let val = rawv.trim().trim_end_matches(',');
        let ns: u128 = val
            .parse()
            .map_err(|_| format!("{}: bad median {val:?} for {key:?}", path.display()))?;
        out.insert(key, ns);
    }
    if out.is_empty() {
        return Err(format!("{}: no medians found", path.display()));
    }
    Ok(out)
}

fn load(dir: &Path, target: &str) -> Result<Option<BTreeMap<String, u128>>, String> {
    let path = dir.join(format!("BENCH_{target}.json"));
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_medians(&text, &path).map(Some)
}

struct Options {
    baseline: PathBuf,
    fresh: Vec<PathBuf>,
    targets: Vec<String>,
    threshold_pct: f64,
    min_ns: u128,
    allow: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline <dir> --fresh <dir> [--fresh <dir> ...] \
         [--targets a,b,c] [--threshold <pct>] [--min-ns <ns>] [--allow-regressions]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        baseline: PathBuf::new(),
        fresh: Vec::new(),
        targets: [
            "scheduler",
            "depgraph",
            "clustering",
            "shard",
            "store",
            "snapshot",
            "city_fleet",
            "telemetry",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        threshold_pct: 5.0,
        min_ns: 100,
        allow: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--baseline" => opts.baseline = PathBuf::from(value("--baseline")),
            "--fresh" => opts.fresh.push(PathBuf::from(value("--fresh"))),
            "--targets" => {
                opts.targets = value("--targets")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--threshold" => {
                opts.threshold_pct = value("--threshold").parse().unwrap_or_else(|_| usage())
            }
            "--min-ns" => opts.min_ns = value("--min-ns").parse().unwrap_or_else(|_| usage()),
            "--allow-regressions" => opts.allow = true,
            _ => usage(),
        }
    }
    if opts.baseline.as_os_str().is_empty() || opts.fresh.is_empty() {
        usage();
    }
    opts
}

/// Normalizes one fresh run by its own calibration ratio against the
/// baseline's, returning `name -> adjusted ns`. Reported per run so CI
/// logs show how hard the correction worked.
fn normalize(
    target: &str,
    baseline: &BTreeMap<String, u128>,
    fresh: &BTreeMap<String, u128>,
) -> BTreeMap<String, f64> {
    let scale = match (baseline.get(CALIBRATION), fresh.get(CALIBRATION)) {
        (Some(&b), Some(&f)) if b > 0 => {
            let s = (f as f64 / b as f64).clamp(0.25, 4.0);
            println!("calibration {target}: {b} -> {f} ns, normalizing this run by {s:.3}");
            s
        }
        _ => 1.0,
    };
    fresh
        .iter()
        .filter(|(name, _)| name.as_str() != CALIBRATION)
        .map(|(name, &ns)| (name.clone(), ns as f64 / scale))
        .collect()
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut failed = false;
    for target in &opts.targets {
        // Load every fresh run; keep, per benchmark, the fastest
        // calibration-adjusted time (noise bursts only inflate a run, so
        // the best of N runs is the robust estimate).
        let mut best: BTreeMap<String, f64> = BTreeMap::new();
        let mut any_fresh = false;
        let baseline = match load(&opts.baseline, target) {
            Ok(Some(m)) => m,
            Ok(None) => {
                println!("skip {target}: no committed baseline (first run?)");
                continue;
            }
            Err(e) => {
                eprintln!("FAIL {target}: {e}");
                failed = true;
                continue;
            }
        };
        for dir in &opts.fresh {
            match load(dir, target) {
                Ok(Some(m)) => {
                    any_fresh = true;
                    for (name, adjusted) in normalize(target, &baseline, &m) {
                        let slot = best.entry(name).or_insert(f64::INFINITY);
                        *slot = slot.min(adjusted);
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("FAIL {target}: {e}");
                    failed = true;
                }
            }
        }
        if !any_fresh {
            eprintln!("FAIL {target}: no fresh BENCH_{target}.json — did the bench run?");
            failed = true;
            continue;
        }
        for (name, &base) in &baseline {
            if name == CALIBRATION {
                continue;
            }
            let Some(&adjusted) = best.get(name) else {
                println!("note {name}: removed (was {base} ns)");
                continue;
            };
            compared += 1;
            let delta_pct = (adjusted - base as f64) / base as f64 * 100.0;
            let regressed = base >= opts.min_ns && delta_pct > opts.threshold_pct;
            if regressed {
                regressions += 1;
                println!("REGRESSION {name}: {base} -> {adjusted:.0} ns adj ({delta_pct:+.1}%)");
            } else {
                println!("ok {name}: {base} -> {adjusted:.0} ns adj ({delta_pct:+.1}%)");
            }
        }
        for name in best.keys() {
            if !baseline.contains_key(name) {
                println!("note {name}: new benchmark ({:.0} ns)", best[name]);
            }
        }
    }
    println!(
        "bench_gate: {compared} compared, {regressions} regression(s) \
         beyond {:.1}% (floor {} ns)",
        opts.threshold_pct, opts.min_ns
    );
    if failed {
        return ExitCode::from(1);
    }
    if regressions > 0 {
        if opts.allow {
            println!("bench_gate: regressions ALLOWED by --allow-regressions");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "bench_gate: failing; rerun with --allow-regressions (and commit \
             refreshed baselines) if the change is intentional"
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_output() {
        let text =
            "{\n  \"bench\": \"x\",\n  \"ns_per_iter\": {\n    \"g/a\": 10,\n    \"g/b\": 20\n  }\n}\n";
        let m = parse_medians(text, Path::new("t")).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["g/a"], 10);
        assert_eq!(m["g/b"], 20);
    }

    #[test]
    fn parses_legacy_median_field() {
        let text = "{\n  \"bench\": \"x\",\n  \"median_ns\": {\n    \"g/a\": 10\n  }\n}\n";
        let m = parse_medians(text, Path::new("t")).unwrap();
        assert_eq!(m["g/a"], 10);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_medians("{}", Path::new("t")).is_err());
        assert!(parse_medians("{\"ns_per_iter\": {\n\"a\": x\n}}", Path::new("t")).is_err());
    }
}
