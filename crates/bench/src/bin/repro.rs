//! The reproduction driver: `repro <experiment> [--quick] [--out DIR]
//! [--checkpoint-every K] [--resume SNAP] [--telemetry DIR]
//! [--live-stats N] [--serve PORT]`.

use aim_bench::experiments;
use aim_bench::harness::RunEnv;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [--quick] [--out DIR] [--checkpoint-every K] [--resume SNAP] [--telemetry DIR] [--live-stats N] [--serve PORT]\n\
         experiments: calibrate city city-fleet fig1 fig2 fig3 fig4a fig4b fig4c fig5 fig6 fig7 tab1 ablate spec hybrid fleet longrun smoke crash all\n\
         checkpoint flags apply to experiments that checkpoint (longrun): --checkpoint-every\n\
         overrides the snapshot cadence, --resume restarts from an AIMSNAP v1 file;\n\
         --telemetry records runtime spans on threaded experiments (city, city-fleet) and\n\
         writes .telemetry + Perfetto trace.json files under DIR (see trace_tool timeline);\n\
         --live-stats prints a Prometheus-style metrics heartbeat on stderr every N seconds\n\
         while an observed run is in flight (needs --telemetry; sampled without quiescing);\n\
         --serve exposes /metrics, /status, /healthz on 127.0.0.1:PORT for each observed\n\
         run, with worker heartbeats and the stall watchdog (needs --telemetry);\n\
         smoke is a small observed run for exercising the live flags; crash deliberately\n\
         panics with the flight recorder armed (exits 101 leaving crash.* dumps)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut env = RunEnv::default();
    let mut exp: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => env.quick = true,
            "--out" => {
                env.out_dir = it.next().unwrap_or_else(|| usage()).into();
            }
            "--checkpoint-every" => {
                env.checkpoint_every = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&k| k > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--resume" => {
                env.resume = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--telemetry" => {
                env.telemetry = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--live-stats" => {
                env.live_stats = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--serve" => {
                env.serve = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            name if !name.starts_with('-') && exp.is_none() => exp = Some(name.to_string()),
            _ => usage(),
        }
    }
    let Some(exp) = exp else { usage() };
    run(&exp, &env);
}

fn run(exp: &str, env: &RunEnv) {
    match exp {
        "ablate" => experiments::ablate::run(env),
        "calibrate" => experiments::calibrate::run(env),
        "city" => experiments::city::run(env),
        "city-fleet" => experiments::city_fleet::run(env),
        "fig1" => experiments::fig1::run(env),
        "fig2" => experiments::fig2::run(env),
        "fig3" => experiments::fig3::run(env),
        "fig4a" => experiments::fig4::run_a(env),
        "fig4b" => experiments::fig4::run_b(env),
        "fig4c" => experiments::fig4::run_c(env),
        "fig4" => {
            experiments::fig4::run_a(env);
            experiments::fig4::run_b(env);
            experiments::fig4::run_c(env);
        }
        "fig5" => experiments::fig5::run(env),
        "fig6" => experiments::fig6::run(env),
        "fig7" => experiments::fig7::run(env),
        "tab1" => experiments::tab1::run(env),
        "spec" => experiments::spec::run(env),
        "hybrid" => experiments::hybrid::run(env),
        "fleet" => experiments::fleet::run(env),
        "longrun" => experiments::longrun::run(env),
        "smoke" => experiments::smoke::run(env),
        "crash" => experiments::smoke::crash(env),
        "all" => {
            for e in [
                "calibrate",
                "city",
                "city-fleet",
                "fig1",
                "fig2",
                "fig3",
                "fig4a",
                "fig4b",
                "fig4c",
                "fig5",
                "fig6",
                "fig7",
                "tab1",
                "ablate",
                "spec",
                "hybrid",
                "fleet",
                "longrun",
            ] {
                println!("\n########## {e} ##########\n");
                run(e, env);
            }
        }
        _ => usage(),
    }
}
