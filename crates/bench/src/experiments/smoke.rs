//! Operational smoke runs for the live health plane.
//!
//! Two entry points, neither part of `repro all`:
//!
//! - [`run`] (`repro smoke`): a small observed city run that honors
//!   every live-operations flag — `--telemetry`, `--live-stats`,
//!   `--serve` — and, when serving, holds the HTTP endpoint open for a
//!   grace window after the run so external scrapers (CI `curl`) can
//!   still reach it. A healthy smoke run must end with the stall
//!   watchdog unfired.
//! - [`crash`] (`repro crash`): deliberately panics after overflowing a
//!   tiny telemetry buffer, exercising the flight-recorder panic hook
//!   end to end: the process dies with exit code 101 leaving
//!   `crash.telemetry` + `crash.trace.json` under the `--telemetry`
//!   directory for `trace_tool timeline --validate`.

use std::sync::Arc;

use aim_core::telemetry::{BlockReason, SpanKind, Telemetry};
use aim_world::city::{self, CityConfig};

use crate::experiments::city as city_exp;
use crate::harness::RunEnv;

/// Seconds the `--serve` endpoint stays up after the smoke run ends.
const SERVE_GRACE_SECS: u64 = 8;

/// Runs the observed mini-city smoke run.
///
/// # Panics
///
/// Panics on internal engine errors, a telemetry coverage failure, or a
/// fired stall watchdog.
pub fn run(env: &RunEnv) {
    let agents = if env.quick { 256 } else { 1_024 };
    let steps = if env.quick { 6 } else { 12 };
    let cfg = CityConfig {
        districts_x: 2,
        districts_y: 2,
        agents,
        seed: 77,
    };
    println!("smoke: generating {agents}-agent mini city ({steps} steps)…");
    let base = city::generate(&cfg);
    let sink = env.telemetry_sink();
    let live = env.live_stats_guard(sink.as_ref());
    let serve = env.status_guard("smoke", agents, sink.as_ref(), None);
    let cell = city_exp::drive(&cfg, base, 4, steps, 3, sink);
    drop(live);
    println!(
        "smoke: {:.2} s wall · {:.0} agent-steps/s · {} resident records · {} events",
        cell.wall_s, cell.steps_per_s, cell.resident, cell.events
    );
    if let Some(rt) = &cell.telemetry {
        env.export_telemetry("smoke", rt);
    }
    if let Some(guard) = serve {
        assert!(
            !guard.stalled(),
            "a healthy smoke run must not trip the stall watchdog"
        );
        eprintln!(
            "[serve] smoke: holding http://127.0.0.1:{} for {SERVE_GRACE_SECS} s…",
            guard.port()
        );
        std::thread::sleep(std::time::Duration::from_secs(SERVE_GRACE_SECS));
    }
}

/// Deliberately crashes with the flight recorder armed.
///
/// # Panics
///
/// Always — that is the experiment. The installed hook writes the crash
/// dumps before the unwind reaches the runtime.
pub fn crash(env: &RunEnv) {
    let dir = env
        .telemetry
        .clone()
        .unwrap_or_else(|| env.out_dir.join("crash"));
    // A deliberately tiny buffer: most of the recorded spans overflow
    // into the flight ring, so the dump proves the ring (not just the
    // live buffer) reaches disk.
    let telemetry = Arc::new(Telemetry::with_capacity(64));
    for i in 0..200u32 {
        let start = u64::from(i) * 120;
        telemetry.record_at(
            start,
            start + 90,
            SpanKind::Commit {
                cluster: u64::from(i % 4),
                step: i,
                members: 1,
            },
        );
        telemetry.record_at(
            start + 90,
            start + 110,
            SpanKind::Blocked {
                agent: i % 4,
                blocker: (i + 1) % 4,
                step: i,
                reason: BlockReason::Barrier,
            },
        );
    }
    aim_serve::flight::install_panic_hook(Arc::clone(&telemetry), dir.clone(), 4);
    eprintln!(
        "crash: panicking deliberately; expect {}/crash.telemetry and crash.trace.json",
        dir.display()
    );
    panic!("deliberate crash-experiment panic (this exit is the expected outcome)");
}
