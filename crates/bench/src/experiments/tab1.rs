//! Table 1: priority-scheduling ablation.
//!
//! Busy hour, 500 agents, 4 and 8 L4 GPUs, `metropolis` and `oracle`, with
//! priority scheduling on and off (both the engine's ready/ack queues and
//! the serving engine's admission order). Paper: priority buys metropolis
//! 3.84% (4 GPUs) and 15.7% (8 GPUs), but the oracle almost nothing
//! (1.10% / 0.11%) because its dependency graph is already sparse.

use std::sync::Arc;

use aim_llm::presets;
use aim_trace::{gen, oracle};

use crate::harness::{run_one, Mode, RunEnv};
use crate::table::{pct, secs, Table};

/// Runs the Table 1 ablation.
pub fn run(env: &RunEnv) {
    let villes = if env.quick { 4 } else { 20 };
    let trace = env.trace(&gen::GenConfig::busy_hour(villes, 42));
    let graph = Arc::new(oracle::mine(&trace));
    let preset = presets::l4_llama3_8b();
    let mut t = Table::new(
        format!(
            "Table 1: priority scheduling ({} agents, busy hour)",
            trace.meta().num_agents
        ),
        &[
            "gpus",
            "mode",
            "w/ priority (s)",
            "w/o priority (s)",
            "priority speedup",
            "par w/",
            "par w/o",
        ],
    );
    for gpus in [4u32, 8] {
        for mode in [Mode::Metropolis, Mode::Oracle] {
            let with = run_one(env, &trace, mode, &preset, gpus, true, Some(&graph));
            let without = run_one(env, &trace, mode, &preset, gpus, false, Some(&graph));
            let gain = without.makespan.as_secs_f64() / with.makespan.as_secs_f64() - 1.0;
            t.push_row(vec![
                gpus.to_string(),
                mode.label().to_string(),
                secs(with.makespan),
                secs(without.makespan),
                pct(gain),
                format!("{:.1}", with.achieved_parallelism),
                format!("{:.1}", without.achieved_parallelism),
            ]);
        }
    }
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();
}
