//! Figure 2: false vs real dependencies — a worked example.
//!
//! The paper's illustration contrasts the implicit all-to-all dependency
//! of step-synchronized scheduling (top) with the actual dependencies
//! implied by temporal causality (bottom): agent A, far from B and C,
//! creates no dependency on them. We reproduce it executably: three agents
//! on a line, with the §3.2 rules deciding who depends on whom.

use aim_core::prelude::*;
use aim_core::rules;
use aim_core::space::{GridSpace, Point};

use crate::harness::RunEnv;
use crate::table::Table;

/// Runs the Fig. 2 illustration (also asserts the expected relations).
pub fn run(env: &RunEnv) {
    let g = GridSpace::new(100, 140);
    let params = RuleParams::genagent();
    // B and C share a cafe table; A is across town.
    let scene = [
        ("A", Point::new(80, 120)),
        ("B", Point::new(10, 10)),
        ("C", Point::new(13, 10)),
    ];
    println!("Scene: A at (80,120) — far away; B (10,10) and C (13,10) — adjacent.\n");
    let mut t = Table::new(
        "Fig 2: step-sync vs actual dependencies",
        &[
            "pair",
            "dist",
            "global-sync says",
            "rules say (same step)",
            "rules say (B one step behind)",
        ],
    );
    for (i, (na, pa)) in scene.iter().enumerate() {
        for (nb, pb) in scene.iter().skip(i + 1) {
            let same = rules::coupled(&g, params, (*pa, Step(1)), (*pb, Step(1)));
            let ahead = rules::blocked_by(&g, params, (*pa, Step(2)), (*pb, Step(1)));
            t.push_row(vec![
                format!("{na}-{nb}"),
                format!("{:.1}", g.dist(*pa, *pb)),
                "depend (barrier)".into(),
                if same {
                    "coupled".into()
                } else {
                    "independent".to_string()
                },
                if ahead {
                    "blocked".into()
                } else {
                    "independent".to_string()
                },
            ]);
        }
    }
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();

    // The assertions behind the figure.
    let (a, b, c) = (scene[0].1, scene[1].1, scene[2].1);
    assert!(
        !rules::coupled(&g, params, (a, Step(1)), (b, Step(1))),
        "A-B false dependency"
    );
    assert!(
        !rules::blocked_by(&g, params, (a, Step(2)), (b, Step(1))),
        "A can run ahead of B"
    );
    assert!(
        rules::coupled(&g, params, (b, Step(1)), (c, Step(1))),
        "B-C real dependency"
    );
    assert!(
        rules::blocked_by(&g, params, (c, Step(2)), (b, Step(1))),
        "C cannot run ahead of B"
    );
    println!(
        "Under global sync all 3 pairs depend each step; the rules keep only B-C.\n\
         False dependencies removed: 2 of 3 (A-B, A-C)."
    );
}
