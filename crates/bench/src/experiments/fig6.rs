//! Figure 6: busy/quiet-hour scaling, Llama-3-70B (TP4) on NVIDIA A100s.
//!
//! Paper headline: metropolis peaks at 1.97× over `parallel-sync` with 500
//! agents (busy hour) and 2.01× in the 1000-agent quiet hour.

use aim_llm::presets;

use crate::experiments::scaling::run_scaling;
use crate::harness::RunEnv;

/// Runs the Fig. 6 sweep.
pub fn run(env: &RunEnv) {
    run_scaling(
        env,
        "Fig 6: scaling, Llama-3-70B TP4 on A100",
        &presets::a100_tp4_llama3_70b(),
        &[4, 8],
    );
}
