//! Figure 1: a snippet of the execution trace of a simulation.
//!
//! The paper's figure shows per-agent streams of LLM invocations over
//! ~500 s of execution under step-synchronized scheduling, with dashed
//! vertical lines at step completions: a few agents dominate each step
//! while the rest idle at the barrier. We reproduce it as ASCII art from a
//! timeline-recorded `parallel-sync` replay, and report the achieved
//! parallelism alongside (paper §2.2 measures just 1.94 on average).

use std::sync::Arc;

use aim_core::exec::sim::{run_sim, SimConfig};
use aim_core::metrics::RunReport;
use aim_core::prelude::*;
use aim_core::workload::Workload;
use aim_llm::presets;
use aim_trace::gen;

use crate::harness::RunEnv;
use crate::table::Table;

/// Runs the Fig. 1 reproduction.
pub fn run(env: &RunEnv) {
    // A lunchtime slice: 15 simulated minutes of the busy hour.
    let trace = env.trace(&gen::GenConfig {
        villes: 1,
        agents_per_ville: 25,
        seed: 42,
        window_start: gen::hour(12),
        window_len: 90,
    });
    let mut report = replay_with_timeline(env, &trace);
    let timeline = report.timeline.take().expect("timeline recorded");
    println!("Execution trace snippet (parallel-sync, 25 agents, lunch time)");
    println!("P=perceive R=retrieve/reflect C=converse S=summarize; each row = one agent\n");
    println!("{}", timeline.render_ascii(25, 100));
    let mut t = Table::new("Fig 1: execution snippet summary", &["metric", "value"]);
    t.push_row(vec!["window (sim steps)".into(), "90".into()]);
    t.push_row(vec!["llm calls".into(), report.total_calls.to_string()]);
    t.push_row(vec![
        "cluster commits".into(),
        timeline.commits.len().to_string(),
    ]);
    t.push_row(vec![
        "achieved parallelism".into(),
        format!("{:.2}", report.achieved_parallelism),
    ]);
    t.push_row(vec![
        "makespan (s)".into(),
        format!("{:.1}", report.makespan.as_secs_f64()),
    ]);
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();
}

fn replay_with_timeline(env: &RunEnv, trace: &aim_trace::Trace) -> RunReport {
    let sim = SimConfig {
        step_cpu_us: env.step_cpu_us,
        commit_cpu_us: env.commit_cpu_us,
        record_timeline: true,
        ..SimConfig::default()
    };
    let meta = trace.meta();
    let initial: Vec<_> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut scheduler = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        DependencyPolicy::GlobalSync,
        Arc::new(aim_store::Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .expect("scheduler");
    let mut server = aim_llm::SimServer::new(aim_llm::ServerConfig::from_preset(
        presets::l4_llama3_8b(),
        1,
        true,
    ));
    run_sim(&mut scheduler, trace, &mut server, &sim).expect("replay")
}
