//! Figure 5: busy/quiet-hour scaling, Llama-3-8B on NVIDIA L4 GPUs.
//!
//! Paper headline: speedup over `parallel-sync` grows from 1.88× at 25
//! agents to 4.15× at 500, plateauing (3.94×) at 1000; AI Metropolis
//! climbs from 53.1% to 97.0% of oracle on 8 GPUs, reaching oracle parity
//! at 500 agents on one GPU.

use aim_llm::presets;

use crate::experiments::scaling::run_scaling;
use crate::harness::RunEnv;

/// Runs the Fig. 5 sweep.
pub fn run(env: &RunEnv) {
    let gpus: &[u32] = &[1, 8];
    run_scaling(
        env,
        "Fig 5: scaling, Llama-3-8B on L4",
        &presets::l4_llama3_8b(),
        gpus,
    );
}
