//! Figure 7: busy/quiet-hour scaling, Mixtral 8×7B (TP2, DP4) on 8 A100s.
//!
//! Paper headline: the lighter MoE leaves more GPU headroom, so peak
//! speedups over `parallel-sync` rise to 2.97× (busy) and 2.29× (quiet)
//! at 500 agents.

use aim_llm::presets;

use crate::experiments::scaling::run_scaling;
use crate::harness::RunEnv;

/// Runs the Fig. 7 sweep.
pub fn run(env: &RunEnv) {
    run_scaling(
        env,
        "Fig 7: scaling, Mixtral 8x7B TP2 on 8xA100",
        &presets::a100_tp2_mixtral_8x7b(),
        &[8],
    );
}
