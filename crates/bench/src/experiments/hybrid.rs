//! Hybrid interactive + offline deployment (paper §6 "Offline and
//! Interactive") — quantifying the QoS knobs.
//!
//! A player-facing chat stream shares the serving engine with the
//! background busy-hour simulation. Four server policies are compared:
//!
//! * **fifo** — no priorities at all: the player waits behind whatever
//!   simulation backlog exists.
//! * **step-priority** — the paper's §3.5 scheduling; interactive
//!   requests enter with step 0 and sort early, but still compete for
//!   batch slots with long background decodes.
//! * **lane** — lane-aware admission: interactive requests sort ahead of
//!   *all* background work.
//! * **lane+reserve** — additionally holds batch slots free per replica,
//!   so an arriving chat turn never waits for a background decode to
//!   drain (the §6 deployment: latency for the interactive part,
//!   throughput for the rest).
//!
//! Reported per policy and load intensity: interactive latency
//! percentiles and the background simulation's completion-time price.
//!
//! Two findings worth calling out (see EXPERIMENTS.md): `lane` ties
//! `step-priority` whenever the background simulation is deep into its
//! day — interactive requests enter at step 0 and §3.5's step priority
//! already sorts them first, so the dedicated lane only adds safety
//! against step-0 background work. The *reserve* is what actually moves
//! tail latency: without it a chat turn can wait a full background
//! decode (seconds); with it, admission happens at the next iteration
//! boundary (tens of milliseconds).

use std::sync::Arc;

use aim_core::exec::hybrid::{run_hybrid_sim, InteractiveLoad, InteractiveReport};
use aim_core::exec::sim::SimConfig;
use aim_core::metrics::RunReport;
use aim_core::policy::DependencyPolicy;
use aim_core::prelude::*;
use aim_core::workload::Workload;
use aim_llm::{presets, ServerConfig, SimServer};
use aim_store::Db;
use aim_trace::{gen, Trace};

use crate::harness::RunEnv;
use crate::table::{secs, Table};

/// The four QoS arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Qos {
    Fifo,
    StepPriority,
    Lane,
    LaneReserve,
}

impl Qos {
    const ALL: [Qos; 4] = [Qos::Fifo, Qos::StepPriority, Qos::Lane, Qos::LaneReserve];

    fn label(self) -> &'static str {
        match self {
            Qos::Fifo => "fifo",
            Qos::StepPriority => "step-priority",
            Qos::Lane => "lane",
            Qos::LaneReserve => "lane+reserve",
        }
    }

    fn server(self, gpus: u32) -> ServerConfig {
        // A latency-bounded "game server" deployment: batch capped so a
        // decode iteration stays short enough for player-facing traffic.
        let preset = presets::l4_game_server();
        let replicas = preset.replicas_for_gpus(gpus);
        let reserve = preset.max_running / 4;
        match self {
            Qos::Fifo => ServerConfig::from_preset(preset, replicas, false),
            Qos::StepPriority => ServerConfig::from_preset(preset, replicas, true),
            Qos::Lane => ServerConfig::from_preset(preset, replicas, true).with_interactive_lane(0),
            Qos::LaneReserve => {
                ServerConfig::from_preset(preset, replicas, true).with_interactive_lane(reserve)
            }
        }
    }
}

fn run_arm(
    env: &RunEnv,
    trace: &Trace,
    qos: Qos,
    gpus: u32,
    load: InteractiveLoad,
) -> (RunReport, InteractiveReport) {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(meta.radius_p, meta.max_vel),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .expect("scheduler");
    let mut server = SimServer::new(qos.server(gpus));
    let sim = SimConfig {
        step_cpu_us: env.step_cpu_us,
        commit_cpu_us: env.commit_cpu_us,
        serial_agents: false,
        max_concurrent_clusters: env.workers,
        priority_ready_queue: qos != Qos::Fifo,
        record_timeline: false,
    };
    run_hybrid_sim(&mut sched, trace, &mut server, &load, &sim).expect("hybrid replay")
}

/// Runs the QoS comparison across interactive load intensities.
pub fn run(env: &RunEnv) {
    let gpus = 2;
    let villes = if env.quick { 2 } else { 8 };
    let trace = env.trace(&gen::GenConfig::busy_hour(villes, 42));
    let agents = trace.meta().num_agents;

    // Load intensities: casual (one turn every ~8s of virtual time),
    // engaged (~2s), frantic (~0.5s).
    let loads: &[(&str, u64)] = &[
        ("casual 1/8s", 8_000_000),
        ("engaged 1/2s", 2_000_000),
        ("frantic 2/s", 500_000),
    ];
    let count = if env.quick { 150 } else { 400 };

    // Baseline: the simulation alone (step-priority server, no stream).
    let baseline = run_arm(
        env,
        &trace,
        Qos::StepPriority,
        gpus,
        InteractiveLoad::chat(1, 0, 1),
    )
    .0;

    for (load_name, mean_us) in loads {
        let load = InteractiveLoad::chat(*mean_us, count, 7);
        let mut t = Table::new(
            format!("Hybrid QoS — {load_name} chat over {agents}-agent busy hour ({gpus} L4s)"),
            &[
                "policy",
                "chat p50 (ms)",
                "p95 (ms)",
                "p99 (ms)",
                "max (ms)",
                "sim time (s)",
                "sim slowdown",
            ],
        );
        for qos in Qos::ALL {
            let (bg, ir) = run_arm(env, &trace, qos, gpus, load);
            t.push_row(vec![
                qos.label().into(),
                format!("{:.0}", ir.p50_us as f64 / 1e3),
                format!("{:.0}", ir.p95_us as f64 / 1e3),
                format!("{:.0}", ir.p99_us as f64 / 1e3),
                format!("{:.0}", ir.max_us as f64 / 1e3),
                secs(bg.makespan),
                format!(
                    "{:+.1}%",
                    (bg.makespan.as_secs_f64() / baseline.makespan.as_secs_f64() - 1.0) * 100.0
                ),
            ]);
        }
        println!("{}", t.render());
        t.write_csv(&env.out_dir).ok();
    }
    println!(
        "The §6 hybrid deployment in numbers: lane-aware admission with a slot\n\
         reserve keeps player-facing latency flat under simulation load, paying\n\
         a bounded background-throughput price."
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_world::clock_to_step;

    #[test]
    fn qos_ladder_improves_tail_latency() {
        let env = RunEnv {
            out_dir: std::env::temp_dir().join("aim-bench-hybrid-test"),
            ..RunEnv::default()
        };
        let trace = env.trace(&gen::GenConfig {
            villes: 2,
            agents_per_ville: 25,
            seed: 5,
            window_start: clock_to_step(12, 0),
            window_len: 60,
        });
        // A demanding stream against a single batch-capped game GPU.
        let load = InteractiveLoad::chat(1_000_000, 60, 11);
        let (_, fifo) = run_arm(&env, &trace, Qos::Fifo, 1, load);
        let (_, reserve) = run_arm(&env, &trace, Qos::LaneReserve, 1, load);
        assert!(
            reserve.p95_us < fifo.p95_us,
            "QoS must beat FIFO tail latency: {} vs {}",
            reserve.p95_us,
            fifo.p95_us
        );
        assert_eq!(fifo.count, 60);
        assert_eq!(reserve.count, 60);
    }
}
