//! Close the loop at scale: the district **city** driven live through
//! the **serving fleet**, swept over routing policies.
//!
//! The paper's serving side (§4.1) notes that SGLang's prefix cache is
//! worth ~20% throughput when enabled; in a massive-agent city the gain
//! is *structural* — personas come from a small template pool and an
//! agent's own calls reuse its persona + memory prefix — but only if
//! routing keeps a prefix's requests on the replica that still holds
//! it. This experiment measures exactly that: one threaded city run per
//! [`RoutePolicyKind`] against the same mixed fleet (a virtual-time
//! simulated engine + a latency-replay replica), with per-replica
//! prefix LRUs sized *below* the agent population so policies that
//! scatter an agent's requests pay real evictions.
//!
//! A final arm re-runs prefix-affinity with a [`FaultPlan`] that kills
//! the simulated replica mid-run: the fleet retries the failed attempt
//! and sheds all later traffic to the survivor, so the run completes
//! with exactly one refused attempt and no lost world state.

use std::sync::Arc;
use std::time::Instant;

use aim_core::depgraph::GraphOptions;
use aim_core::exec::threaded::{run_threaded_observed, ThreadedConfig, ThreadedReport};
use aim_core::policy::DependencyPolicy;
use aim_core::prelude::*;
use aim_core::shard::ShardedDepGraph;
use aim_core::telemetry::Telemetry;
use aim_llm::{
    presets, FaultPlan, Fleet, FleetConfig, FleetMetrics, LatencyProfile, LlmBackend, ReplicaSpec,
    RoutePolicyKind, ServerConfig,
};
use aim_store::Db;
use aim_world::city::{self, CityConfig};
use aim_world::clock_to_step;
use aim_world::program::VillageProgram;

use crate::harness::RunEnv;
use crate::table::{pct, Table};

/// Virtual seconds simulated per wall second on the sim replica — high
/// enough that pacing never dominates a 10k-agent sweep.
const TIME_SCALE: f64 = 5_000_000.0;

/// The policies the sweep compares (lane-aware is omitted: the city
/// issues no interactive traffic, so it degenerates to least-loaded).
const POLICIES: [RoutePolicyKind; 4] = [
    RoutePolicyKind::RoundRobin,
    RoutePolicyKind::LeastOutstanding,
    RoutePolicyKind::TokenWeighted,
    RoutePolicyKind::PrefixAffinity,
];

/// Per-replica prefix LRU capacity: 60% of the agent count, so a policy
/// only keeps an agent's prefix resident by *not* spraying the other
/// agents over the same replica (affinity halves a replica's working
/// set; round-robin does not).
fn cache_entries(agents: u32) -> u32 {
    (agents * 3 / 5).max(64)
}

fn fleet_for(policy: RoutePolicyKind, agents: u32, sim_fault: FaultPlan) -> Arc<Fleet> {
    let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
    Arc::new(
        FleetConfig::new("city", policy)
            .with_replica(ReplicaSpec::sim(sim, TIME_SCALE).with_fault(sim_fault))
            .with_replica(ReplicaSpec::replay(
                LatencyProfile::constant("prod", 40_000),
                11,
                None,
            ))
            .with_prefix_lru_entries(cache_entries(agents))
            .build(),
    )
}

struct Cell {
    wall_s: f64,
    calls: u64,
    metrics: FleetMetrics,
    report: ThreadedReport,
}

/// Drives one city run over `fleet` and returns wall time + counters.
/// With a `telemetry` sink, the run is observed end to end and the
/// unified report lands in `Cell::report.telemetry`.
fn drive(
    cfg: &CityConfig,
    village: aim_world::Village,
    shards: usize,
    steps: u32,
    fleet: Arc<Fleet>,
    telemetry: Option<Arc<Telemetry>>,
) -> Cell {
    let start = clock_to_step(8, 0);
    let space = village.space();
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let graph = ShardedDepGraph::new_with_options(
        Arc::new(space),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &initial,
        Arc::new(cfg.shard_map(shards)),
        GraphOptions {
            edges: aim_core::depgraph::EdgeMode::Maintained,
            history: true,
        },
    )
    .expect("sharded graph");
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let backend: Arc<dyn LlmBackend> = Arc::clone(&fleet) as Arc<dyn LlmBackend>;
    let started = Instant::now();
    let report = run_threaded_observed(
        &mut sched,
        Arc::clone(&program),
        backend,
        ThreadedConfig {
            workers: 8,
            priority_enabled: true,
        },
        None,
        telemetry,
    )
    .expect("threaded city-fleet run");
    let wall_s = started.elapsed().as_secs_f64();
    assert!(sched.is_done());
    assert_eq!(
        report.agent_steps,
        cfg.agents as u64 * steps as u64,
        "every agent-step must execute"
    );
    assert!(sched.graph().validate().is_ok(), "validity violated");
    let village = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    assert!(!village.events().is_empty(), "a live city must emit events");
    Cell {
        wall_s,
        calls: report
            .fleet
            .as_ref()
            .map(FleetMetrics::total_served)
            .unwrap_or(0),
        metrics: report.fleet.clone().expect("fleet backends report metrics"),
        report,
    }
}

fn push_rows(table: &mut Table, label: &str, agents: u32, cell: &Cell) {
    let m = &cell.metrics;
    table.push_row(vec![
        label.to_string(),
        agents.to_string(),
        format!("{:.2}", cell.wall_s),
        cell.calls.to_string(),
        pct(m.hit_rate()),
        pct(m.replicas[0].hit_rate()),
        pct(m.replicas[1].hit_rate()),
        format!("{:.1}", m.max_p99_us() as f64 / 1e3),
        m.total_failed().to_string(),
        m.replicas
            .iter()
            .map(|r| r.served.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    ]);
}

/// Runs the experiment; prints the table and writes `city_fleet.csv`.
///
/// # Panics
///
/// Panics on internal engine errors or a failed world validity check.
pub fn run(env: &RunEnv) {
    let sizes: &[(u32, u32, u32, usize)] = if env.quick {
        &[(512, 2, 2, 4)]
    } else {
        &[(1_024, 2, 2, 4), (10_048, 8, 8, 16)]
    };
    let steps = 6;

    let mut table = Table::new(
        "city_fleet",
        &[
            "policy",
            "agents",
            "wall s",
            "calls",
            "hit%",
            "r0 hit%",
            "r1 hit%",
            "p99 ms",
            "failed",
            "served r0/r1",
        ],
    );

    for &(agents, dx, dy, shards) in sizes {
        let cfg = CityConfig {
            districts_x: dx,
            districts_y: dy,
            agents,
            seed: 2_025,
        };
        println!(
            "city-fleet: generating {agents} agents over {dx}×{dy} districts (prefix LRU {} keys/replica)…",
            cache_entries(agents)
        );
        let base = city::generate(&cfg);
        for policy in POLICIES {
            let fleet = fleet_for(policy, agents, FaultPlan::none());
            let sink = env.telemetry_sink();
            let _live = env.live_stats_guard(sink.as_ref());
            // `--serve` exposes this arm live, fleet gauges included.
            let _serve = env.status_guard(
                &format!("city-fleet-{agents}-{}", policy.as_str()),
                agents,
                sink.as_ref(),
                Some(Arc::clone(&fleet) as Arc<dyn LlmBackend>),
            );
            let cell = drive(&cfg, base.clone(), shards, steps, Arc::clone(&fleet), sink);
            println!("  [{} · {agents} agents]", policy.as_str());
            print!("{}", cell.report);
            if let Some(rt) = &cell.report.telemetry {
                env.export_telemetry(&format!("city-fleet-{agents}-{}", policy.as_str()), rt);
            }
            push_rows(&mut table, policy.as_str(), agents, &cell);
        }
        // Fault arm: the sim replica dies a quarter of the way through;
        // prefix-affinity + the retry loop must absorb it.
        let fault = FaultPlan::none().fail_after(agents as u64 * 3 / 2);
        let fleet = fleet_for(RoutePolicyKind::PrefixAffinity, agents, fault);
        let sink = env.telemetry_sink();
        let _live = env.live_stats_guard(sink.as_ref());
        let _serve = env.status_guard(
            &format!("city-fleet-{agents}-affinity-fault"),
            agents,
            sink.as_ref(),
            Some(Arc::clone(&fleet) as Arc<dyn LlmBackend>),
        );
        let cell = drive(&cfg, base.clone(), shards, steps, Arc::clone(&fleet), sink);
        assert_eq!(
            cell.metrics.total_failed(),
            1,
            "the failure is absorbed by exactly one retried attempt"
        );
        assert!(cell.metrics.replicas[0].down, "sim replica must be down");
        println!("  [affinity+fault · {agents} agents] replica 0 failed and shed to replica 1");
        print!("{}", cell.report);
        if let Some(rt) = &cell.report.telemetry {
            env.export_telemetry(&format!("city-fleet-{agents}-affinity-fault"), rt);
        }
        push_rows(&mut table, "affinity+fault", agents, &cell);
    }

    print!("{}", table.render());
    println!(
        "prefix LRUs hold 60% of the agent population per replica, so hit rate is earned by \n\
         routing locality, not cache size; the fault row kills replica 0 mid-run."
    );
    match table.write_csv(&env.out_dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CityConfig {
        CityConfig {
            districts_x: 2,
            districts_y: 2,
            agents: 512,
            seed: 2_025,
        }
    }

    #[test]
    fn prefix_affinity_beats_round_robin_on_hit_rate() {
        // The experiment's core claim in miniature: with per-replica
        // prefix LRUs smaller than the agent population, affinity keeps
        // each agent's prefix resident while round-robin scatters and
        // evicts — the same mechanism the 10k sweep measures.
        let cfg = small_cfg();
        let base = city::generate(&cfg);
        let rr = drive(
            &cfg,
            base.clone(),
            4,
            4,
            fleet_for(RoutePolicyKind::RoundRobin, cfg.agents, FaultPlan::none()),
            None,
        );
        let aff = drive(
            &cfg,
            base,
            4,
            4,
            fleet_for(
                RoutePolicyKind::PrefixAffinity,
                cfg.agents,
                FaultPlan::none(),
            ),
            None,
        );
        assert!(rr.calls > 0 && aff.calls > 0);
        let (rr_rate, aff_rate) = (rr.metrics.hit_rate(), aff.metrics.hit_rate());
        assert!(
            aff_rate > rr_rate + 0.2,
            "affinity must materially beat round-robin: affinity {aff_rate:.3} vs rr {rr_rate:.3}"
        );
    }

    #[test]
    fn fault_arm_completes_with_one_retry() {
        let cfg = small_cfg();
        let base = city::generate(&cfg);
        let fleet = fleet_for(
            RoutePolicyKind::PrefixAffinity,
            cfg.agents,
            FaultPlan::none().fail_after(200),
        );
        let cell = drive(&cfg, base, 4, 4, Arc::clone(&fleet), None);
        assert_eq!(cell.metrics.total_failed(), 1, "{:?}", cell.metrics);
        assert!(cell.metrics.replicas[0].down);
        assert_eq!(cell.metrics.replicas[0].served, 200);
        assert!(cell.metrics.replicas[1].served > 0);
    }
}
