//! The city scaling experiment: an OpenCity-style district city driven
//! live under the threaded OOO executor, swept over **agents × shard
//! widths**. For each cell the table reports wall clock, throughput,
//! and the store's resident-record footprint (history eviction runs at
//! every checkpoint barrier, so resident state stays O(agents ×
//! window) while the run commits agents × steps records' worth of
//! history).
//!
//! Width 1 is the unsharded algorithm; wider rows show what spatial
//! partitioning (per-shard step bounds + pruned relink queries, plus
//! parallel relink on multi-core machines) buys on a live workload.

use std::sync::Arc;
use std::time::Instant;

use aim_core::depgraph::GraphOptions;
use aim_core::dist::DistTracker;
use aim_core::exec::threaded::{run_threaded_observed, CheckpointHook, ThreadedConfig};
use aim_core::policy::DependencyPolicy;
use aim_core::prelude::*;
use aim_core::shard::ShardedDepGraph;
use aim_core::telemetry::{RunTelemetry, Telemetry};
use aim_llm::InstantBackend;
use aim_store::Db;
use aim_world::city::{self, CityConfig};
use aim_world::clock_to_step;
use aim_world::program::VillageProgram;

use crate::harness::RunEnv;
use crate::table::Table;

/// One sweep cell result (shared with the `smoke` experiment, which
/// drives a single small cell through the same machinery).
pub(crate) struct Cell {
    pub(crate) agents: u32,
    pub(crate) shards: usize,
    pub(crate) wall_s: f64,
    pub(crate) steps_per_s: f64,
    pub(crate) resident: u64,
    pub(crate) keys: u64,
    pub(crate) evicted: u64,
    pub(crate) max_cluster: u32,
    pub(crate) skew: u32,
    pub(crate) events: usize,
    pub(crate) telemetry: Option<RunTelemetry>,
}

/// Runs the experiment; prints the table and writes `city.csv`.
///
/// # Panics
///
/// Panics on internal engine errors or a failed world validity check.
pub fn run(env: &RunEnv) {
    let sizes: &[(u32, u32, u32)] = if env.quick {
        &[(628, 2, 2), (2_512, 4, 4)]
    } else {
        &[(2_512, 4, 4), (10_048, 8, 8)]
    };
    let widths: &[usize] = if env.quick { &[1, 4] } else { &[1, 4, 16] };
    let steps = if env.quick { 10 } else { 20 };
    let every = env.checkpoint_every.unwrap_or(5);

    let mut table = Table::new(
        "city scaling (agents × shard width)",
        &[
            "agents",
            "shards",
            "wall s",
            "agent-steps/s",
            "resident hist",
            "store keys",
            "evicted",
            "max cluster",
            "skew",
            "events",
        ],
    );
    for &(agents, dx, dy) in sizes {
        let cfg = CityConfig {
            districts_x: dx,
            districts_y: dy,
            agents,
            seed: 2_025,
        };
        println!(
            "city: generating {agents} agents over {}×{} districts…",
            dx, dy
        );
        let base = city::generate(&cfg);
        for &shards in widths {
            let sink = env.telemetry_sink();
            let _live = env.live_stats_guard(sink.as_ref());
            let cell = drive(&cfg, base.clone(), shards, steps, every, sink);
            println!(
                "  w{shards:<3} {:.2} s wall, {:.0} agent-steps/s, {} resident records",
                cell.wall_s, cell.steps_per_s, cell.resident
            );
            if let Some(rt) = &cell.telemetry {
                env.export_telemetry(&format!("city-{agents}-w{shards}"), rt);
            }
            table.push_row(vec![
                cell.agents.to_string(),
                cell.shards.to_string(),
                format!("{:.2}", cell.wall_s),
                format!("{:.0}", cell.steps_per_s),
                cell.resident.to_string(),
                cell.keys.to_string(),
                cell.evicted.to_string(),
                cell.max_cluster.to_string(),
                cell.skew.to_string(),
                cell.events.to_string(),
            ]);
        }
        // Distributed arm (smallest size only — the isolation boundary
        // costs ~10× per commit): the same city over [`DistTracker`]'s
        // message-driven shard workers, observed end to end. The shared
        // sink reaches the channel workers through their telemetry cell,
        // and quiesce-barrier harvests fold any worker-local spans into
        // the same merged report the in-process arms export.
        if agents == sizes[0].0 {
            let dist_shards = 4;
            let sink = env.telemetry_sink();
            let _live = env.live_stats_guard(sink.as_ref());
            // The health plane rides the dist arm: heartbeat polls feed
            // the guard's board at every checkpoint barrier, and a
            // severed worker link dumps the flight recorder.
            let serve = env.status_guard(
                &format!("city-{agents}-dist-w{dist_shards}"),
                agents,
                sink.as_ref(),
                None,
            );
            let board = serve.as_ref().map(|g| Arc::clone(&g.board));
            let cell = drive_dist(
                &cfg,
                base.clone(),
                dist_shards,
                steps,
                every,
                sink,
                board,
                env.telemetry.clone(),
            );
            println!(
                "  dist w{dist_shards} {:.2} s wall, {:.0} agent-steps/s, {} resident records",
                cell.wall_s, cell.steps_per_s, cell.resident
            );
            if let Some(rt) = &cell.telemetry {
                env.export_telemetry(&format!("city-{agents}-dist-w{dist_shards}"), rt);
            }
            table.push_row(vec![
                cell.agents.to_string(),
                format!("dist-{}", cell.shards),
                format!("{:.2}", cell.wall_s),
                format!("{:.0}", cell.steps_per_s),
                cell.resident.to_string(),
                cell.keys.to_string(),
                cell.evicted.to_string(),
                cell.max_cluster.to_string(),
                cell.skew.to_string(),
                cell.events.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    if let Ok(path) = table.write_csv(&env.out_dir) {
        println!("wrote {}", path.display());
    }
}

/// Drives one (city, shard width) cell to completion. With a
/// `telemetry` sink, the checkpointed run is observed end to end.
pub(crate) fn drive(
    cfg: &CityConfig,
    village: aim_world::Village,
    shards: usize,
    steps: u32,
    every: u32,
    telemetry: Option<Arc<Telemetry>>,
) -> Cell {
    let start = clock_to_step(8, 0);
    let space = village.space();
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let graph = ShardedDepGraph::new_with_options(
        Arc::new(space),
        RuleParams::genagent(),
        Arc::new(Db::new()),
        &initial,
        Arc::new(cfg.shard_map(shards)),
        GraphOptions {
            edges: aim_core::depgraph::EdgeMode::Maintained,
            history: true,
        },
    )
    .expect("sharded graph");
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let started = Instant::now();
    let mut evicted = 0u64;
    let report = {
        let evicted = &mut evicted;
        let mut hook_fn = move |sched: &mut Scheduler<GridSpace, ShardedDepGraph<GridSpace>>|
              -> Result<(), EngineError> {
            *evicted += sched.evict_history()?;
            Ok(())
        };
        run_threaded_observed(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers: 8,
                priority_enabled: true,
            },
            Some(CheckpointHook {
                every_steps: every,
                f: &mut hook_fn,
            }),
            telemetry,
        )
        .expect("threaded city run")
    };
    let wall_s = started.elapsed().as_secs_f64();
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok(), "validity violated");
    sched.graph().check_invariants();
    let stats = sched.stats();
    let village = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    Cell {
        agents: cfg.agents,
        shards,
        wall_s,
        steps_per_s: (cfg.agents as u64 * steps as u64) as f64 / wall_s,
        resident: sched.graph().history_records(),
        keys: sched.graph().db().stats().keys as u64,
        evicted,
        max_cluster: stats.max_cluster_size,
        skew: stats.max_step_skew,
        events: village.events().len(),
        telemetry: report.telemetry,
    }
}

/// Drives one cell over [`DistTracker`]: every shard is a message-driven
/// worker behind a channel link, so all writes and edge computations
/// cross the typed `dist` protocol. History eviction at each checkpoint
/// barrier doubles as the telemetry harvest barrier; with a `board`,
/// the same barrier also polls worker heartbeats into it, and with a
/// `crash_dir` a severed worker link dumps the flight recorder there.
#[allow(clippy::too_many_arguments)]
fn drive_dist(
    cfg: &CityConfig,
    village: aim_world::Village,
    shards: usize,
    steps: u32,
    every: u32,
    telemetry: Option<Arc<Telemetry>>,
    board: Option<Arc<aim_core::health::HealthBoard>>,
    crash_dir: Option<std::path::PathBuf>,
) -> Cell {
    let start = clock_to_step(8, 0);
    let space = village.space();
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let mut graph = DistTracker::new(
        Arc::new(space),
        RuleParams::genagent(),
        &initial,
        Arc::new(cfg.shard_map(shards)),
        GraphOptions {
            edges: aim_core::depgraph::EdgeMode::Maintained,
            history: true,
        },
    )
    .expect("dist tracker");
    if let (Some(dir), Some(t)) = (crash_dir, telemetry.as_ref()) {
        let t = Arc::clone(t);
        let agents = cfg.agents;
        graph.set_severed_hook(Box::new(move |worker| {
            eprintln!("[city] worker {worker} link severed — dumping flight recorder");
            if let Err(e) = aim_serve::flight::write_crash_dump(&t, &dir, agents) {
                eprintln!("[city] flight recorder dump failed: {e}");
            }
        }));
    }
    let mut sched = Scheduler::from_graph(graph, DependencyPolicy::Spatiotemporal, Step(steps));
    let started = Instant::now();
    let mut evicted = 0u64;
    let report = {
        let evicted = &mut evicted;
        let mut hook_fn = move |sched: &mut Scheduler<GridSpace, DistTracker<GridSpace>>|
              -> Result<(), EngineError> {
            *evicted += sched.evict_history()?;
            if let Some(board) = &board {
                sched.graph_mut().poll_heartbeats(board);
            }
            Ok(())
        };
        run_threaded_observed(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers: 8,
                priority_enabled: true,
            },
            Some(CheckpointHook {
                every_steps: every,
                f: &mut hook_fn,
            }),
            telemetry,
        )
        .expect("threaded dist city run")
    };
    let wall_s = started.elapsed().as_secs_f64();
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok(), "validity violated");
    sched.graph_mut().check_invariants();
    let stats = sched.stats();
    let keys = (0..shards)
        .map(|i| sched.graph().worker_db(i).stats().keys as u64)
        .sum();
    let village = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    Cell {
        agents: cfg.agents,
        shards,
        wall_s,
        steps_per_s: (cfg.agents as u64 * steps as u64) as f64 / wall_s,
        resident: sched.graph().history_records(),
        keys,
        evicted,
        max_cluster: stats.max_cluster_size,
        skew: stats.max_step_skew,
        events: village.events().len(),
        telemetry: report.telemetry,
    }
}
