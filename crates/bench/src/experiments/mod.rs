//! One module per paper artifact. Each `run(env)` prints its tables and
//! writes CSVs under `env.out_dir`.

pub mod ablate;
pub mod calibrate;
pub mod city;
pub mod city_fleet;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fleet;
pub mod hybrid;
pub mod longrun;
pub mod scaling;
pub mod smoke;
pub mod spec;
pub mod tab1;
