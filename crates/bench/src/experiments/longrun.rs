//! Long-horizon bounded-memory run (the ROADMAP's ScaleSim-style memory
//! management direction): a 1000-agent village driven for 10× the bench
//! horizon under the threaded runtime, with the checkpoint subsystem
//! snapshotting every K committed steps and evicting dependency-graph
//! history below the deepest legal rollback at each checkpoint.
//!
//! The table tracks, at every checkpoint, the store's resident record
//! count against the O(agents × horizon) count an eviction-free run
//! would hold — the demonstration that resident state is O(agents ×
//! window). In `--quick` mode a second, eviction-free arm *measures*
//! the unbounded growth instead of deriving it.
//!
//! Resume workflow (`repro longrun --resume <snap>`): restores the last
//! snapshot — store, scheduler, world — and drives the run to its
//! original target, printing what was restored. Interrupt a long run
//! with ^C and hand its newest `ckpt-*.aimsnap` back to `--resume`.

use std::sync::Arc;
use std::time::Instant;

use aim_core::checkpoint::{self, SECTION_WORLD};
use aim_core::exec::threaded::{run_threaded_with_checkpoints, CheckpointHook, ThreadedConfig};
use aim_core::policy::DependencyPolicy;
use aim_core::prelude::*;
use aim_llm::InstantBackend;
use aim_store::{Checkpointer, Db, Snapshot};
use aim_world::program::VillageProgram;
use aim_world::{clock_to_step, Village, VillageConfig};

use crate::harness::RunEnv;
use crate::table::Table;

/// One checkpoint row of the bounded-memory log.
struct Sample {
    step: u32,
    keys: u64,
    resident_hist: u64,
    evicted_total: u64,
    snap_bytes: u64,
    wall_s: f64,
}

/// Runs the experiment; prints the table and writes `longrun.csv`.
///
/// # Panics
///
/// Panics if the bounded-memory acceptance bound is violated or on
/// internal engine errors.
pub fn run(env: &RunEnv) {
    if let Some(path) = &env.resume {
        resume_from(path, env);
        return;
    }
    // Full size: 1000 agents for 600 steps — 10× the 60-step horizon of
    // the `scheduler/replay_10min_1000agents` bench target.
    let (villes, steps) = if env.quick { (4, 120) } else { (40, 600) };
    let every = env
        .checkpoint_every
        .unwrap_or(if env.quick { 30 } else { 60 });
    let agents = villes * 25;

    let mut table = Table::new(
        "long-horizon bounded memory",
        &[
            "arm",
            "ckpt step",
            "store keys",
            "resident hist",
            "evicted (cum)",
            "no-evict hist",
            "snap KB",
            "wall s",
        ],
    );

    let arms: &[bool] = if env.quick { &[true, false] } else { &[true] };
    for &evict in arms {
        let arm = if evict { "evict" } else { "no-evict" };
        println!("longrun[{arm}]: {agents} agents × {steps} steps, checkpoint every {every}…");
        let samples = drive(env, arm, villes, steps, every, evict);
        for s in &samples {
            table.push_row(vec![
                arm.to_string(),
                s.step.to_string(),
                s.keys.to_string(),
                s.resident_hist.to_string(),
                s.evicted_total.to_string(),
                (agents as u64 * (s.step as u64 + 1)).to_string(),
                format!("{:.1}", s.snap_bytes as f64 / 1024.0),
                format!("{:.1}", s.wall_s),
            ]);
        }
        if evict {
            // The acceptance bound: resident history stays within
            // O(agents × window); the store's total resident record
            // count is that plus one authoritative record per agent
            // and two counters.
            let max_resident = samples.iter().map(|s| s.resident_hist).max().unwrap();
            let max_keys = samples.iter().map(|s| s.keys).max().unwrap();
            // Window = cadence + skew; skew is bounded by the cadence's
            // drain plus the rules' slack, so 2×cadence is generous and
            // still ~5× under the horizon.
            let window_bound = agents as u64 * (2 * every as u64 + 1);
            assert!(
                max_resident <= window_bound,
                "resident history {max_resident} exceeded O(agents × window) bound {window_bound}"
            );
            assert!(
                max_keys <= window_bound + agents as u64 + 2,
                "store keys {max_keys} not bounded by history window"
            );
            println!(
                "bounded: ≤{max_resident} resident history records \
                 (O(agents×window) bound {window_bound}, horizon would be {})",
                agents as u64 * (steps as u64 + 1)
            );
        }
    }
    print!("{}", table.render());
    if let Ok(path) = table.write_csv(&env.out_dir) {
        println!("wrote {}", path.display());
    }
}

/// Drives one checkpointed arm to completion, returning the per-
/// checkpoint log.
fn drive(env: &RunEnv, arm: &str, villes: u32, steps: u32, every: u32, evict: bool) -> Vec<Sample> {
    let start = clock_to_step(8, 0);
    let mut village = Village::generate(&VillageConfig {
        villes,
        agents_per_ville: 25,
        seed: 7,
    });
    village.run_lockstep(0, start, |_, _, _, _| {});
    let space = village.space();
    let program = Arc::new(VillageProgram::with_step_offset(village, start));
    let initial = program.initial_positions();
    let db = Arc::new(Db::new());
    let mut sched = Scheduler::new_with_history(
        Arc::new(space),
        RuleParams::genagent(),
        DependencyPolicy::Spatiotemporal,
        Arc::clone(&db),
        &initial,
        Step(steps),
        true,
    )
    .expect("scheduler");
    // Per-arm directory, cleared up front: rotation keys on the step in
    // the file name, so stale files from a previous arm would shadow
    // fresh ones.
    let dir = env.out_dir.join("longrun").join(arm);
    std::fs::remove_dir_all(&dir).ok();
    let mut ckpt = Checkpointer::new(&dir, every, 2);
    let started = Instant::now();
    let mut samples: Vec<Sample> = Vec::new();
    let mut evicted_total = 0u64;
    {
        let world_src = Arc::clone(&program);
        let db = Arc::clone(&db);
        let samples = &mut samples;
        let ckpt = &mut ckpt;
        let evicted_total = &mut evicted_total;
        let mut hook_fn = move |sched: &mut Scheduler<GridSpace>| -> Result<(), EngineError> {
            if evict {
                *evicted_total += sched.evict_history()?;
            }
            let committed = sched.graph().min_step().0;
            let builder = checkpoint::snapshot_run(sched, start, Some(world_src.capture_state()));
            let path = ckpt.write(committed, &builder)?;
            let snap_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            samples.push(Sample {
                step: committed,
                keys: db.stats().keys as u64,
                resident_hist: sched.graph().history_records(),
                evicted_total: *evicted_total,
                snap_bytes,
                wall_s: started.elapsed().as_secs_f64(),
            });
            Ok(())
        };
        let report = run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers: env.workers.unwrap_or(8).min(16),
                priority_enabled: true,
            },
            Some(CheckpointHook {
                every_steps: every,
                f: &mut hook_fn,
            }),
        )
        .expect("checkpointed threaded run");
        print!("{report}");
    }
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok());
    println!("  {} checkpoints under {}", ckpt.written(), dir.display());
    samples
}

/// The `--resume <snap>` workflow: restore and finish an interrupted
/// run — *still checkpointing*, into the snapshot's own directory, so a
/// resumed run can itself be interrupted and resumed again.
fn resume_from(path: &std::path::Path, env: &RunEnv) {
    println!("resuming from {}…", path.display());
    let snap = Snapshot::load(path).expect("snapshot loads");
    let (meta, mut sched) = checkpoint::resume(&snap, None, None).expect("resume");
    println!(
        "restored {} agents at steps {}..{} (target {}, {} store records)",
        meta.num_agents,
        meta.min_step,
        meta.max_step,
        meta.target_step,
        snap.info().db_records
    );
    let world = snap
        .section(SECTION_WORLD)
        .expect("run snapshots carry world state");
    let village = Village::restore(world).expect("village restores");
    let program = Arc::new(VillageProgram::with_step_offset(village, meta.step_offset));
    let started = Instant::now();
    // Keep the original checkpoint chain going: write into the directory
    // the snapshot came from, at the operator's cadence (or the full-run
    // default), so ^C during the resumed run loses at most one window.
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let every = env.checkpoint_every.unwrap_or(60);
    let mut ckpt = Checkpointer::new(dir.unwrap_or(std::path::Path::new(".")), every, 2);
    let step_offset = meta.step_offset;
    {
        let world_src = Arc::clone(&program);
        let ckpt = &mut ckpt;
        let mut hook_fn = move |sched: &mut Scheduler<GridSpace>| -> Result<(), EngineError> {
            sched.evict_history()?;
            let committed = sched.graph().min_step().0;
            let builder =
                checkpoint::snapshot_run(sched, step_offset, Some(world_src.capture_state()));
            ckpt.write(committed, &builder)?;
            Ok(())
        };
        run_threaded_with_checkpoints(
            &mut sched,
            Arc::clone(&program),
            Arc::new(InstantBackend::new()),
            ThreadedConfig {
                workers: env.workers.unwrap_or(8).min(16),
                priority_enabled: true,
            },
            Some(CheckpointHook {
                every_steps: every,
                f: &mut hook_fn,
            }),
        )
        .expect("resumed run");
    }
    assert!(sched.is_done());
    assert!(sched.graph().validate().is_ok());
    let village = Arc::try_unwrap(program)
        .expect("workers joined")
        .into_village();
    println!(
        "finished remaining {} steps in {:.1}s ({} further checkpoints); \
         {} world events total",
        meta.target_step - meta.min_step,
        started.elapsed().as_secs_f64(),
        ckpt.written(),
        village.events().len()
    );
}
