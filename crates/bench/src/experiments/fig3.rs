//! Figure 3: an example spatiotemporal dependency graph.
//!
//! The paper's figure shows six agents at two time steps with blocked
//! edges (single arrows), coupled pairs (double arrows), clusters (boxes),
//! and ready/blocked coloring. We reconstruct an equivalent state in a
//! live [`aim_core::depgraph::DepGraph`] and dump it.

use std::sync::Arc;

use aim_core::depgraph::DepGraph;
use aim_core::prelude::*;
use aim_core::space::{GridSpace, Point};
use aim_store::Db;

use crate::harness::RunEnv;
use crate::table::Table;

/// Runs the Fig. 3 reconstruction.
pub fn run(env: &RunEnv) {
    let space = Arc::new(GridSpace::new(100, 140));
    let params = RuleParams::genagent();
    // Six agents: A,B coupled at step x+1; C,D,E around the cafe at step x
    // (C,D coupled); F far away at step x+1.
    let initial = vec![
        Point::new(50, 50),  // A
        Point::new(54, 50),  // B
        Point::new(50, 56),  // C (6 south of A: blocks A/B's next advance)
        Point::new(53, 57),  // D
        Point::new(70, 50),  // E
        Point::new(90, 120), // F
    ];
    let mut graph =
        DepGraph::new(Arc::clone(&space), params, Arc::new(Db::new()), &initial).unwrap();
    // Advance A, B (they advance together as a coupled cluster) and F.
    graph
        .advance(&[
            (AgentId(0), Point::new(50, 50)),
            (AgentId(1), Point::new(54, 50)),
        ])
        .unwrap();
    graph.advance(&[(AgentId(5), Point::new(90, 120))]).unwrap();

    let snap = graph.snapshot();
    let names = ["A", "B", "C", "D", "E", "F"];
    let mut t = Table::new(
        "Fig 3: spatiotemporal dependency graph",
        &["node", "step", "pos", "blocked by", "coupled with", "state"],
    );
    for (agent, step, pos) in &snap.nodes {
        let blockers: Vec<&str> = snap
            .blocked
            .iter()
            .filter(|(_, to)| to == agent)
            .map(|(from, _)| names[from.index()])
            .collect();
        let coupled: Vec<&str> = snap
            .coupled
            .iter()
            .filter(|(x, y)| x == agent || y == agent)
            .map(|(x, y)| {
                if x == agent {
                    names[y.index()]
                } else {
                    names[x.index()]
                }
            })
            .collect();
        t.push_row(vec![
            names[agent.index()].to_string(),
            format!("{}", step.0),
            pos.clone(),
            if blockers.is_empty() {
                "-".into()
            } else {
                blockers.join(",")
            },
            if coupled.is_empty() {
                "-".into()
            } else {
                coupled.join(",")
            },
            if blockers.is_empty() {
                "ready".into()
            } else {
                "blocked".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();

    // The figure's invariants, asserted.
    assert!(
        snap.coupled.contains(&(AgentId(0), AgentId(1))),
        "A <-> B coupled"
    );
    assert!(
        snap.coupled.contains(&(AgentId(2), AgentId(3))),
        "C <-> D coupled"
    );
    assert!(
        snap.blocked.contains(&(AgentId(2), AgentId(0))),
        "A (ahead) is blocked by lagging nearby C"
    );
    assert!(
        !snap.blocked.iter().any(|(_, to)| *to == AgentId(5)),
        "distant F is not blocked by anyone"
    );
    assert!(
        graph.validate().is_ok(),
        "state satisfies the validity condition"
    );
    println!("Single arrows = blocked-by; double = coupled. F ran ahead freely;");
    println!("A/B advanced one step but now wait for the lagging C cluster.");
}
