//! Figure 4: full-day SmallVille simulation (25 agents).
//!
//! * **4a** — Llama-3-8B on 1–8 NVIDIA L4 GPUs (data parallel): completion
//!   time for `single-thread`, `parallel-sync`, `metropolis`, `oracle`,
//!   plus the `critical` lower bound. Paper headline: metropolis beats
//!   single-thread 2.38× and parallel-sync 1.44× on one GPU, growing to
//!   3.25× / 1.67× on eight; achieved parallelism 0.95 / 1.94 / 3.46;
//!   74.7–82.9% of oracle.
//! * **4b** — Llama-3-70B TP4 on A100s (4 GPUs = 1 replica, 8 = 2):
//!   2.45× / 1.45×, ≈82% of oracle on 8 GPUs.
//! * **4c** — LLM calls per simulated hour (the diurnal histogram).

use aim_llm::presets;
use aim_trace::{critical, gen, stats};

use crate::harness::{run_modes, Mode, RunEnv};
use crate::table::{pct, secs, speedup, Table};

fn day_cfg(env: &RunEnv) -> gen::GenConfig {
    let mut cfg = gen::GenConfig::full_day(42);
    if env.quick {
        // Quick mode: two busy hours instead of a whole day.
        cfg.window_start = gen::hour(11);
        cfg.window_len = gen::hour(2);
    }
    cfg
}

fn run_fig4(env: &RunEnv, title: &str, preset: &aim_llm::Preset, gpu_counts: &[u32]) {
    let trace = env.trace(&day_cfg(env));
    let cp = critical::critical_path(
        &trace,
        &preset.cost,
        preset.prefill_chunk,
        env.step_cpu_us,
        env.commit_cpu_us,
    );
    let mut t = Table::new(
        title,
        &[
            "gpus",
            "mode",
            "time (s)",
            "vs single-thread",
            "vs parallel-sync",
            "% of oracle",
            "parallelism",
            "gpu util",
        ],
    );
    for &gpus in gpu_counts {
        let runs = run_modes(env, &trace, &Mode::figure4(), preset, gpus, true);
        let get = |m: Mode| &runs.iter().find(|(mm, _)| *mm == m).expect("ran").1;
        let st = get(Mode::SingleThread).makespan.as_secs_f64();
        let ps = get(Mode::ParallelSync).makespan.as_secs_f64();
        let or = get(Mode::Oracle).makespan.as_secs_f64();
        for (mode, r) in &runs {
            let m = r.makespan.as_secs_f64();
            t.push_row(vec![
                gpus.to_string(),
                mode.label().to_string(),
                secs(r.makespan),
                speedup(st / m),
                speedup(ps / m),
                pct(or / m),
                format!("{:.2}", r.achieved_parallelism),
                pct(r.gpu_utilization),
            ]);
        }
        t.push_row(vec![
            gpus.to_string(),
            "critical (bound)".into(),
            secs(cp.time),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();
}

/// Fig. 4a: Llama-3-8B on L4s.
pub fn run_a(env: &RunEnv) {
    let gpus: &[u32] = if env.quick { &[1, 8] } else { &[1, 2, 4, 8] };
    run_fig4(
        env,
        "Fig 4a: full day, Llama-3-8B on L4 GPUs",
        &presets::l4_llama3_8b(),
        gpus,
    );
}

/// Fig. 4b: Llama-3-70B TP4 on A100s.
pub fn run_b(env: &RunEnv) {
    run_fig4(
        env,
        "Fig 4b: full day, Llama-3-70B TP4 on A100 GPUs",
        &presets::a100_tp4_llama3_70b(),
        &[4, 8],
    );
}

/// Fig. 4c: query distribution over simulated hours.
pub fn run_c(env: &RunEnv) {
    let trace = env.trace(&gen::GenConfig::full_day(42));
    let s = stats::compute(&trace);
    let mut t = Table::new("Fig 4c: LLM calls per simulated hour", &["hour", "calls"]);
    for (h, &c) in s.calls_per_hour.iter().enumerate() {
        t.push_row(vec![format!("{h:02}:00"), c.to_string()]);
    }
    println!("{}", stats::render_hourly(&s, 50));
    t.write_csv(&env.out_dir).ok();
    println!(
        "total calls: {} | mean input: {:.1} tok | mean output: {:.1} tok | avg deps/agent: {:.2}",
        s.total_calls, s.mean_input_tokens, s.mean_output_tokens, s.avg_dependencies
    );
}
