//! Ablations of the engine's design choices (DESIGN.md §4):
//!
//! * **worker-pool size** — §3.6 maps clusters onto a bounded pool of
//!   worker processes; too few workers throttle the released parallelism.
//! * **prefix caching** — the serving-engine feature the paper disabled
//!   for stable numbers, quoting ≈20% throughput when on (§4.1).
//! * **clustering granularity** — coupling radius sensitivity: larger
//!   `radius_p` merges more agents per cluster (safer, slower).

use std::sync::Arc;

use aim_core::exec::sim::{run_sim, SimConfig};
use aim_core::prelude::*;
use aim_core::workload::Workload;
use aim_llm::{presets, ServerConfig, SimServer};
use aim_store::Db;
use aim_trace::{gen, Trace};

use crate::harness::RunEnv;
use crate::table::{pct, secs, Table};

fn replay(
    trace: &Trace,
    radius_p: u32,
    workers: Option<usize>,
    caching: bool,
    replicas: u32,
) -> aim_core::metrics::RunReport {
    let meta = trace.meta();
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut sched = Scheduler::new(
        Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
        RuleParams::new(radius_p, meta.max_vel),
        DependencyPolicy::Spatiotemporal,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .expect("scheduler");
    let mut cfg = ServerConfig::from_preset(presets::l4_llama3_8b(), replicas, true);
    cfg.prefix_caching = caching;
    let mut server = SimServer::new(cfg);
    let sim = SimConfig {
        max_concurrent_clusters: workers,
        ..SimConfig::default()
    };
    run_sim(&mut sched, trace, &mut server, &sim).expect("replay")
}

/// Runs all three ablations.
pub fn run(env: &RunEnv) {
    let villes = if env.quick { 4 } else { 8 };
    let trace = env.trace(&gen::GenConfig::busy_hour(villes, 42));
    let base = replay(&trace, trace.meta().radius_p, Some(48), false, 8);

    let mut t = Table::new(
        format!(
            "Ablations ({} agents, busy hour, 8 L4s)",
            trace.meta().num_agents
        ),
        &["knob", "setting", "time (s)", "vs base", "parallelism"],
    );
    let mut row = |knob: &str, setting: String, r: &aim_core::metrics::RunReport| {
        t.push_row(vec![
            knob.into(),
            setting,
            secs(r.makespan),
            pct(base.makespan.as_secs_f64() / r.makespan.as_secs_f64()),
            format!("{:.1}", r.achieved_parallelism),
        ]);
    };
    row("base", "48 workers, cache off, radius 4".into(), &base);

    for workers in [Some(8), Some(16), None] {
        let r = replay(&trace, trace.meta().radius_p, workers, false, 8);
        let label = workers
            .map(|w| w.to_string())
            .unwrap_or_else(|| "unbounded".into());
        row("workers", label, &r);
    }
    let cached = replay(&trace, trace.meta().radius_p, Some(48), true, 8);
    row("prefix cache", "on".into(), &cached);
    for radius in [2u32, 8, 16] {
        // NOTE: replaying with a larger radius than the trace was recorded
        // with is safe (more conservative); smaller would be unsound for a
        // real world but is fine on a fixed trace — it shows the knob's
        // performance sensitivity, not a correctness configuration.
        let r = replay(&trace, radius, Some(48), false, 8);
        row("radius_p", radius.to_string(), &r);
    }
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();
    println!(
        "Prefix caching gain here: {:.1}% (paper quotes ~20% for SGLang's cache).",
        (base.makespan.as_secs_f64() / cached.makespan.as_secs_f64() - 1.0) * 100.0
    );
}
