//! Heterogeneous serving fleet: routing-policy comparison on a live
//! village (the ROADMAP's multi-backend serving direction; OpenCity-style
//! horizontally scaled deployments).
//!
//! One threaded-runtime village run per [`RoutePolicyKind`], all against
//! the same two-replica fleet:
//!
//! * replica 0 — a virtual-time simulated engine (`test/tiny` preset)
//!   paced against the wall clock;
//! * replica 1 — a [`aim_llm::ReplayBackend`] whose latency distribution
//!   was mined from a trace replay (`aim_trace::latency::mine`) — i.e. a
//!   replica that behaves like the measured reference deployment. It is
//!   tagged *interactive*.
//!
//! While the village simulates, a synthetic "player" thread issues
//! interactive chat turns through the same fleet. The table shows what
//! each policy does with that mix: round-robin splits blindly,
//! least-outstanding follows load, and lane-aware gives the player a
//! dedicated replica while background work keeps the other saturated.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aim_core::exec::threaded::{run_threaded, ThreadedConfig};
use aim_core::policy::DependencyPolicy;
use aim_core::prelude::*;
use aim_llm::presets;
use aim_llm::{
    CallKind, FleetConfig, LlmBackend, LlmRequest, ReplicaSpec, RequestId, RoutePolicyKind,
    ServerConfig,
};
use aim_store::Db;
use aim_trace::{gen, latency};
use aim_world::program::VillageProgram;
use aim_world::{clock_to_step, Village, VillageConfig};

use crate::harness::RunEnv;
use crate::table::{pct, Table};

/// Virtual time simulated per wall-clock unit — fast enough that a full
/// policy sweep stays in the low seconds, but low enough that call wall
/// latencies dwarf thread-scheduling noise (least-outstanding routing
/// only spreads load when calls genuinely overlap).
const TIME_SCALE: f64 = 2_000.0;

fn fleet_for(policy: RoutePolicyKind, profile: &aim_llm::LatencyProfile) -> Arc<aim_llm::Fleet> {
    let sim = ServerConfig::from_preset(presets::tiny_test(), 1, true);
    Arc::new(
        FleetConfig::new("tiny+replay", policy)
            .with_replica(ReplicaSpec::sim(sim, TIME_SCALE))
            .with_replica(ReplicaSpec::replay(profile.clone(), 7, Some(TIME_SCALE)).interactive())
            .build(),
    )
}

/// Runs the experiment; prints the table and writes `fleet_policies.csv`.
pub fn run(env: &RunEnv) {
    let (agents, steps, chat_turns) = if env.quick {
        (10, 30, 20)
    } else {
        (20, 60, 60)
    };
    let start = clock_to_step(12, 0);

    // Mine the replay replica's latency distribution from a trace replay
    // of the same world shape (the trace_tool latency pipeline, inlined).
    let trace = gen::generate(&gen::GenConfig {
        villes: 1,
        agents_per_ville: agents,
        seed: 17,
        window_start: start,
        window_len: steps,
    });
    let profile = latency::mine(
        &trace,
        ServerConfig::from_preset(presets::tiny_test(), 1, true),
        50_000,
    );
    println!(
        "replay replica profile: {} samples, mean {:.1} ms virtual\n",
        profile.len(),
        profile.mean_us() / 1e3
    );

    let mut table = Table::new(
        "fleet policies",
        &[
            "policy",
            "wall ms",
            "calls",
            "replica",
            "backend",
            "served",
            "share",
            "interactive",
            "peak",
        ],
    );

    for policy in RoutePolicyKind::ALL {
        let mut village = Village::generate(&VillageConfig {
            villes: 1,
            agents_per_ville: agents,
            seed: 17,
        });
        village.run_lockstep(0, start, |_, _, _, _| {});
        let program = Arc::new(VillageProgram::with_step_offset(village, start));
        let initial = program.initial_positions();
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(100, 140)),
            RuleParams::genagent(),
            DependencyPolicy::Spatiotemporal,
            Arc::new(Db::new()),
            &initial,
            Step(steps),
        )
        .expect("scheduler");

        let fleet = fleet_for(policy, &profile);

        // A player chats through the same fleet while the village runs.
        let stop = Arc::new(AtomicBool::new(false));
        let player = {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for i in 0..chat_turns {
                    // As in examples/heterogeneous_fleet.rs: a few turns
                    // always go out, even if the village finishes first.
                    if i >= 5 && stop.load(Ordering::Relaxed) {
                        break;
                    }
                    fleet.call(
                        &LlmRequest::new(
                            RequestId(1_000_000 + i),
                            u32::MAX,
                            0,
                            300,
                            7,
                            CallKind::Converse,
                        )
                        .interactive(),
                    );
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
            })
        };

        let backend: Arc<dyn LlmBackend> = Arc::clone(&fleet) as Arc<dyn LlmBackend>;
        let report = run_threaded(
            &mut sched,
            Arc::clone(&program),
            backend,
            ThreadedConfig {
                workers: 8,
                priority_enabled: true,
            },
        )
        .expect("threaded fleet run");
        stop.store(true, Ordering::Relaxed);
        player.join().expect("player thread");

        let m = fleet.metrics();
        let total = m.total_served().max(1);
        for r in &m.replicas {
            table.push_row(vec![
                policy.as_str().to_string(),
                format!("{:.0}", report.wall.as_secs_f64() * 1e3),
                m.total_served().to_string(),
                format!("{}{}", r.replica, if r.interactive { "*" } else { "" }),
                r.description.chars().take(34).collect(),
                r.served.to_string(),
                pct(r.served as f64 / total as f64),
                r.interactive_served.to_string(),
                r.peak_outstanding.to_string(),
            ]);
        }
    }

    print!("{}", table.render());
    println!("(*) replica tagged interactive — only lane-aware routing honors it.");
    match table.write_csv(&env.out_dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_keeps_both_replicas_busy() {
        // The fleet experiment's core claim, in miniature: a threaded
        // village run over the mixed fleet serves traffic on both
        // replicas under every shipped policy.
        let profile = aim_llm::LatencyProfile::constant("test", 5_000);
        for policy in RoutePolicyKind::ALL {
            let mut village = Village::generate(&VillageConfig {
                villes: 1,
                agents_per_ville: 8,
                seed: 4,
            });
            let start = clock_to_step(12, 0);
            village.run_lockstep(0, start, |_, _, _, _| {});
            let program = Arc::new(VillageProgram::with_step_offset(village, start));
            let initial = program.initial_positions();
            let mut sched = Scheduler::new(
                Arc::new(GridSpace::new(100, 140)),
                RuleParams::genagent(),
                DependencyPolicy::Spatiotemporal,
                Arc::new(Db::new()),
                &initial,
                Step(20),
            )
            .unwrap();
            let fleet = fleet_for(policy, &profile);
            // Interactive traffic so the lane-aware partition is exercised.
            for i in 0..8 {
                fleet.call(
                    &LlmRequest::new(RequestId(900 + i), u32::MAX, 0, 100, 4, CallKind::Converse)
                        .interactive(),
                );
            }
            let backend: Arc<dyn LlmBackend> = Arc::clone(&fleet) as Arc<dyn LlmBackend>;
            run_threaded(
                &mut sched,
                program,
                backend,
                ThreadedConfig {
                    workers: 4,
                    priority_enabled: true,
                },
            )
            .unwrap();
            let m = fleet.metrics();
            assert!(
                m.all_replicas_served(),
                "{policy}: every replica must see traffic: {m:?}"
            );
        }
    }
}
