//! Speculative execution (paper §6 "Conservative or Speculative
//! Execution") — the future-work design, measured.
//!
//! The paper observes a gap between AI Metropolis and the `oracle` arm
//! caused by the conservative §3.2 rules, and suggests speculative
//! execution with race detection could bridge it, at the price of wasted
//! work and scalability risk. This experiment quantifies that trade:
//!
//! * **Arms table** — `parallel-sync`, conservative `metropolis`,
//!   `spec(k)` for increasing run-ahead budgets, and `oracle`, over the
//!   busy-hour workload. Speculation should land between metropolis and
//!   oracle, converging toward oracle as the budget grows.
//! * **Waste table** — per budget: discarded executions, wasted tokens,
//!   and the fraction of oracle's remaining headroom recovered.
//!
//! Where the gap is already small (large agent counts, §4.3), speculation
//! buys little — matching the paper's argument for staying conservative.

use std::sync::Arc;

use aim_llm::presets;
use aim_trace::{gen, oracle};

use crate::harness::{run_one, run_one_spec, Mode, RunEnv};
use crate::table::{pct, secs, Table};

const BUDGETS: [u32; 4] = [1, 2, 4, 8];

/// Runs the speculation comparison and the run-ahead sweep.
pub fn run(env: &RunEnv) {
    let preset = presets::l4_llama3_8b();
    let scales: &[(u32, u32)] = if env.quick {
        &[(1, 4)] // (villes, gpus)
    } else {
        &[(1, 4), (1, 8), (4, 8)]
    };

    for &(villes, gpus) in scales {
        let trace = env.trace(&gen::GenConfig::busy_hour(villes, 42));
        let agents = trace.meta().num_agents;
        let graph = Arc::new(oracle::mine(&trace));

        let sync = run_one(env, &trace, Mode::ParallelSync, &preset, gpus, true, None);
        let cons = run_one(env, &trace, Mode::Metropolis, &preset, gpus, true, None);
        let orac = run_one(env, &trace, Mode::Oracle, &preset, gpus, true, Some(&graph));

        let mut t = Table::new(
            format!("Speculation vs conservative ({agents} agents, busy hour, {gpus} L4s)"),
            &[
                "mode",
                "time (s)",
                "vs parallel-sync",
                "% of oracle",
                "parallelism",
                "waste tok%",
                "squashed",
            ],
        );
        let gap = |makespan: f64| {
            // Fraction of oracle performance, as the paper reports it.
            orac.makespan.as_secs_f64() / makespan
        };
        t.push_row(vec![
            "parallel-sync".into(),
            secs(sync.makespan),
            pct(1.0),
            pct(gap(sync.makespan.as_secs_f64())),
            format!("{:.2}", sync.achieved_parallelism),
            "-".into(),
            "-".into(),
        ]);
        t.push_row(vec![
            "metropolis".into(),
            secs(cons.makespan),
            pct(sync.makespan.as_secs_f64() / cons.makespan.as_secs_f64()),
            pct(gap(cons.makespan.as_secs_f64())),
            format!("{:.2}", cons.achieved_parallelism),
            "-".into(),
            "-".into(),
        ]);
        for budget in BUDGETS {
            let r = run_one_spec(env, &trace, budget, &preset, gpus, true);
            let sr = r.spec.as_ref().expect("speculative run reports spec stats");
            t.push_row(vec![
                format!("spec({budget})"),
                secs(r.makespan),
                pct(sync.makespan.as_secs_f64() / r.makespan.as_secs_f64()),
                pct(gap(r.makespan.as_secs_f64())),
                format!("{:.2}", r.achieved_parallelism),
                pct(sr.waste_fraction(r.total_input_tokens, r.total_output_tokens)),
                format!("{}", sr.stats.squashed_steps + sr.stats.poisoned_steps),
            ]);
        }
        t.push_row(vec![
            "oracle".into(),
            secs(orac.makespan),
            pct(sync.makespan.as_secs_f64() / orac.makespan.as_secs_f64()),
            pct(1.0),
            format!("{:.2}", orac.achieved_parallelism),
            "-".into(),
            "-".into(),
        ]);
        println!("{}", t.render());
        t.write_csv(&env.out_dir).ok();

        // Headroom recovery: how much of the metropolis→oracle gap the
        // best budget closes.
        let best = BUDGETS
            .iter()
            .map(|&b| run_one_spec(env, &trace, b, &preset, gpus, true).makespan)
            .min()
            .expect("budgets non-empty");
        let gap_total = cons.makespan.as_secs_f64() - orac.makespan.as_secs_f64();
        if gap_total > 1e-9 {
            let recovered = (cons.makespan.as_secs_f64() - best.as_secs_f64()) / gap_total;
            println!(
                "Oracle headroom at {agents} agents / {gpus} GPUs: {:.1}s; speculation \
                 recovers {:.0}% of it.\n",
                gap_total,
                recovered * 100.0
            );
        } else {
            println!(
                "No oracle headroom left at {agents} agents / {gpus} GPUs — speculation \
                 cannot help (the paper's large-scale regime).\n"
            );
        }
    }

    // Table 1 revisited under speculation. For the conservative engine,
    // §4.4 reports priority as a modest contention win. For the
    // speculative engine it turns out to be *load-bearing*: without
    // lowest-step-first serving, run-ahead requests crowd laggards out
    // of the engine, laggards commit late, their commits squash the
    // run-ahead work that delayed them, and the re-executions flood the
    // queue again — a waste feedback loop (~5x completion time and ~17%
    // wasted tokens at 500 agents, vs a 1.9% priority effect for the
    // conservative engine). Priority serves laggards first and caps the
    // loop. Needs Table 1's 500-agent contention to show (quick runs
    // reuse the small trace and print ~0%).
    let (villes, gpus) = if env.quick { scales[0] } else { (20, 8) };
    let trace = env.trace(&gen::GenConfig::busy_hour(villes, 42));
    let agents = trace.meta().num_agents;
    let mut t = Table::new(
        format!("Priority × speculation ({agents} agents, busy hour, {gpus} L4s)"),
        &[
            "engine",
            "w/ priority (s)",
            "w/o priority (s)",
            "priority gain",
            "waste w/o",
        ],
    );
    let cons_on = run_one(env, &trace, Mode::Metropolis, &preset, gpus, true, None);
    let cons_off = run_one(env, &trace, Mode::Metropolis, &preset, gpus, false, None);
    t.push_row(vec![
        "metropolis".into(),
        secs(cons_on.makespan),
        secs(cons_off.makespan),
        pct(cons_off.makespan.as_secs_f64() / cons_on.makespan.as_secs_f64() - 1.0),
        "-".into(),
    ]);
    let spec_on = run_one_spec(env, &trace, 4, &preset, gpus, true);
    let spec_off = run_one_spec(env, &trace, 4, &preset, gpus, false);
    let sr_off = spec_off.spec.as_ref().expect("spec stats");
    t.push_row(vec![
        "spec(4)".into(),
        secs(spec_on.makespan),
        secs(spec_off.makespan),
        pct(spec_off.makespan.as_secs_f64() / spec_on.makespan.as_secs_f64() - 1.0),
        pct(sr_off.waste_fraction(spec_off.total_input_tokens, spec_off.total_output_tokens)),
    ]);
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_world::clock_to_step;

    #[test]
    fn speculation_lands_between_conservative_and_oracle() {
        let env = RunEnv {
            out_dir: std::env::temp_dir().join("aim-bench-spec-test"),
            ..RunEnv::default()
        };
        let trace = env.trace(&gen::GenConfig {
            villes: 1,
            agents_per_ville: 12,
            seed: 9,
            window_start: clock_to_step(12, 0),
            window_len: 60,
        });
        let preset = presets::tiny_test();
        let graph = Arc::new(oracle::mine(&trace));
        let cons = run_one(&env, &trace, Mode::Metropolis, &preset, 2, true, None);
        let orac = run_one(&env, &trace, Mode::Oracle, &preset, 2, true, Some(&graph));
        let spec = run_one_spec(&env, &trace, 4, &preset, 2, true);
        assert!(
            spec.makespan <= cons.makespan,
            "speculation must not lose to conservative: {} vs {}",
            spec.makespan,
            cons.makespan
        );
        // The oracle bound may be beaten slightly only through measurement
        // artifacts of CPU costs; allow equality-with-slack.
        assert!(
            spec.makespan.as_secs_f64() >= orac.makespan.as_secs_f64() * 0.95,
            "speculation cannot meaningfully beat ground-truth dependencies"
        );
        let sr = spec.spec.expect("spec stats present");
        assert_eq!(
            sr.stats.retired_steps,
            trace.meta().num_agents as u64
                * aim_core::workload::Workload::target_step(&trace).0 as u64
        );
    }

    #[test]
    fn runahead_zero_equals_metropolis() {
        let env = RunEnv {
            out_dir: std::env::temp_dir().join("aim-bench-spec-test"),
            ..RunEnv::default()
        };
        let trace = env.trace(&gen::GenConfig {
            villes: 1,
            agents_per_ville: 8,
            seed: 4,
            window_start: clock_to_step(8, 0),
            window_len: 30,
        });
        let preset = presets::tiny_test();
        let cons = run_one(&env, &trace, Mode::Metropolis, &preset, 1, true, None);
        let spec0 = run_one_spec(&env, &trace, 0, &preset, 1, true);
        assert_eq!(cons.makespan, spec0.makespan);
        assert_eq!(cons.total_calls, spec0.total_calls);
    }
}
