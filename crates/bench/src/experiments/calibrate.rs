//! Workload calibration report: compares the synthetic trace generator
//! against the paper's published trace statistics (§4.1, §2.2).
//!
//! | statistic | paper |
//! |---|---|
//! | calls per simulated day (25 agents) | ≈56.7k |
//! | mean input tokens | 642.6 |
//! | mean output tokens | 21.9 |
//! | busy-hour calls (12pm–1pm) | ≈5,000 |
//! | quiet-hour calls (6am–7am) | ≈800 |
//! | avg prior-step dependencies (incl. self) | 1.85 |

use aim_trace::{gen, stats};

use crate::harness::RunEnv;
use crate::table::Table;

/// Runs the calibration report.
pub fn run(env: &RunEnv) {
    let day = env.trace(&gen::GenConfig::full_day(42));
    let s = stats::compute(&day);
    let busy = day.window(gen::hour(12), gen::hour(1), "busy");
    let quiet = day.window(gen::hour(6), gen::hour(1), "quiet");

    let mut t = Table::new(
        "Calibration vs paper trace statistics",
        &["statistic", "paper", "ours"],
    );
    t.push_row(vec![
        "calls/day (25 agents)".into(),
        "56700".into(),
        s.total_calls.to_string(),
    ]);
    t.push_row(vec![
        "mean input tokens".into(),
        "642.6".into(),
        format!("{:.1}", s.mean_input_tokens),
    ]);
    t.push_row(vec![
        "mean output tokens".into(),
        "21.9".into(),
        format!("{:.1}", s.mean_output_tokens),
    ]);
    t.push_row(vec![
        "busy-hour calls".into(),
        "~5000".into(),
        busy.calls().len().to_string(),
    ]);
    t.push_row(vec![
        "quiet-hour calls".into(),
        "~800".into(),
        quiet.calls().len().to_string(),
    ]);
    t.push_row(vec![
        "avg deps/agent (incl self)".into(),
        "1.85".into(),
        format!("{:.2}", s.avg_dependencies),
    ]);
    t.push_row(vec![
        "per-agent imbalance (CV)".into(),
        "high (§2.2)".into(),
        format!("{:.2}", s.agent_cv),
    ]);
    println!("{}", t.render());
    t.write_csv(&env.out_dir).ok();

    let mut mix = Table::new(
        "Call kind mix",
        &["kind", "count", "fraction", "mean in", "mean out"],
    );
    for (kind, count, frac) in stats::kind_mix(&s) {
        let (mut in_sum, mut out_sum, mut n) = (0u64, 0u64, 0u64);
        for c in day.calls().iter().filter(|c| c.kind == kind) {
            in_sum += c.input_tokens as u64;
            out_sum += c.output_tokens as u64;
            n += 1;
        }
        let (mi, mo) = if n == 0 {
            (0.0, 0.0)
        } else {
            (in_sum as f64 / n as f64, out_sum as f64 / n as f64)
        };
        mix.push_row(vec![
            kind.to_string(),
            count.to_string(),
            format!("{frac:.3}"),
            format!("{mi:.0}"),
            format!("{mo:.1}"),
        ]);
    }
    println!("{}", mix.render());
    mix.write_csv(&env.out_dir).ok();

    println!("{}", stats::render_hourly(&s, 50));
}
