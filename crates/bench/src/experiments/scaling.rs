//! Shared runner for the agent-count scaling studies (Figs. 5, 6, 7).
//!
//! The paper concatenates SmallVille copies into one large ville (§4.3)
//! and benchmarks the busy hour (12pm–1pm, conversation-heavy) and quiet
//! hour (6am–7am, wake-up routines) at 25→1000 agents. `gpu-limit` is the
//! lower bound: the shorter of the `critical` path and the
//! `no-dependency` completion time.

use std::sync::Arc;

use aim_llm::Preset;
use aim_trace::{critical, gen, oracle};

use crate::harness::{run_one, Mode, RunEnv};
use crate::table::{pct, secs, speedup, Table};

/// Which hour of the day a scaling run replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// 12pm–1pm (≈5k calls per 25 agents; long conversations).
    Busy,
    /// 6am–7am (≈0.8k calls per 25 agents; wake-up routines).
    Quiet,
}

impl Window {
    fn label(self) -> &'static str {
        match self {
            Window::Busy => "busy",
            Window::Quiet => "quiet",
        }
    }

    fn cfg(self, villes: u32, seed: u64) -> gen::GenConfig {
        match self {
            Window::Busy => gen::GenConfig::busy_hour(villes, seed),
            Window::Quiet => gen::GenConfig::quiet_hour(villes, seed),
        }
    }
}

/// Runs the full scaling sweep for one hardware preset and prints/saves
/// one table per window.
pub fn run_scaling(env: &RunEnv, title: &str, preset: &Preset, gpu_counts: &[u32]) {
    let ville_counts: &[u32] = if env.quick { &[1, 4] } else { &[1, 4, 20, 40] };
    for window in [Window::Busy, Window::Quiet] {
        let mut t = Table::new(
            format!("{title} ({} hour)", window.label()),
            &[
                "agents",
                "gpus",
                "mode",
                "time (s)",
                "vs parallel-sync",
                "% of oracle",
                "parallelism",
            ],
        );
        for &villes in ville_counts {
            let trace = env.trace(&window.cfg(villes, 42));
            let graph = Arc::new(oracle::mine(&trace));
            let agents = trace.meta().num_agents;
            let cp = critical::critical_path(
                &trace,
                &preset.cost,
                preset.prefill_chunk,
                env.step_cpu_us,
                env.commit_cpu_us,
            );
            for &gpus in gpu_counts {
                let modes = [
                    Mode::SingleThread,
                    Mode::ParallelSync,
                    Mode::Metropolis,
                    Mode::Oracle,
                    Mode::NoDependency,
                ];
                let runs: Vec<_> = modes
                    .iter()
                    .map(|&m| (m, run_one(env, &trace, m, preset, gpus, true, Some(&graph))))
                    .collect();
                let get = |m: Mode| {
                    runs.iter()
                        .find(|(mm, _)| *mm == m)
                        .map(|(_, r)| r)
                        .expect("ran")
                };
                let ps = get(Mode::ParallelSync).makespan.as_secs_f64();
                let or = get(Mode::Oracle).makespan.as_secs_f64();
                for (mode, r) in &runs {
                    let m = r.makespan.as_secs_f64();
                    t.push_row(vec![
                        agents.to_string(),
                        gpus.to_string(),
                        mode.label().to_string(),
                        secs(r.makespan),
                        speedup(ps / m),
                        pct(or / m),
                        format!("{:.2}", r.achieved_parallelism),
                    ]);
                }
                // gpu-limit = min(critical, no-dependency makespan).
                let nodep = get(Mode::NoDependency).makespan;
                let limit = nodep.min(cp.time);
                t.push_row(vec![
                    agents.to_string(),
                    gpus.to_string(),
                    "gpu-limit".into(),
                    secs(limit),
                    speedup(ps / limit.as_secs_f64()),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
        println!("{}", t.render());
        t.write_csv(&env.out_dir).ok();
    }
}
