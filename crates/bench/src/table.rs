//! ASCII tables and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple result table: headers plus string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (used for the CSV filename too).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each should match `headers` in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with box-drawing-free ASCII.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        line(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {h:<width$} ", width = widths[i]);
        }
        out.push_str("|\n");
        line(&mut out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "| {cell:<width$} ", width = widths[i]);
            }
            out.push_str("|\n");
        }
        line(&mut out);
        out
    }

    /// Writes the table as CSV into `dir` (named after the title).
    ///
    /// Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let fname = format!(
            "{}.csv",
            self.title
                .to_lowercase()
                .replace(|c: char| !c.is_ascii_alphanumeric(), "_")
        );
        let path = dir.join(fname);
        let mut body = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        body.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        body.push('\n');
        for row in &self.rows {
            body.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            body.push('\n');
        }
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

/// Formats seconds with 1 decimal.
pub fn secs(t: aim_llm::VirtualTime) -> String {
    format!("{:.1}", t.as_secs_f64())
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["mode", "time"]);
        t.push_row(vec!["metropolis".into(), "1.0".into()]);
        t.push_row(vec!["x".into(), "100000.5".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        let widths: Vec<usize> = rows.iter().map(|r| r.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{s}"
        );
    }

    #[test]
    fn csv_escapes_and_writes() {
        let mut t = Table::new("CSV, test", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "plain".into()]);
        let dir = std::env::temp_dir().join("aim-bench-test");
        let path = t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x,y\",plain"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(aim_llm::VirtualTime::from_secs_f64(12.34)), "12.3");
        assert_eq!(speedup(1.444), "1.44x");
        assert_eq!(pct(0.747), "74.7%");
    }
}
