//! Shared experiment machinery: trace caching, mode configuration, and run
//! orchestration.

use std::path::PathBuf;
use std::sync::Arc;

use aim_core::exec::sim::{run_sim, SimConfig};
use aim_core::metrics::RunReport;
use aim_core::policy::{DependencyPolicy, OracleGraph};
use aim_core::prelude::*;
use aim_core::space::GridSpace;
use aim_core::workload::Workload;
use aim_llm::{Preset, ServerConfig, SimServer};
use aim_store::Db;
use aim_trace::{codec, gen, oracle, Trace};

/// The experiment arms of §4.2, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Original-implementation-style fully serialized baseline.
    SingleThread,
    /// Algorithm-1 global synchronization (strong baseline).
    ParallelSync,
    /// AI Metropolis.
    Metropolis,
    /// Ground-truth dependency management (upper bound).
    Oracle,
    /// All agents independent (scaling lower bound).
    NoDependency,
}

impl Mode {
    /// Label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Mode::SingleThread => "single-thread",
            Mode::ParallelSync => "parallel-sync",
            Mode::Metropolis => "metropolis",
            Mode::Oracle => "oracle",
            Mode::NoDependency => "no-dependency",
        }
    }

    /// The standard four arms of the full-day figures.
    pub fn figure4() -> [Mode; 4] {
        [
            Mode::SingleThread,
            Mode::ParallelSync,
            Mode::Metropolis,
            Mode::Oracle,
        ]
    }
}

/// Everything shared across the runs of one experiment.
#[derive(Debug)]
pub struct RunEnv {
    /// Output directory for CSVs (default `target/repro`).
    pub out_dir: PathBuf,
    /// Scale-down factor for `--quick` runs (1 = full size).
    pub quick: bool,
    /// Per-cluster-step dispatch CPU, µs.
    pub step_cpu_us: u64,
    /// Per-cluster commit CPU, µs.
    pub commit_cpu_us: u64,
    /// Worker-pool size: concurrent clusters in flight (the paper's worker
    /// processes, §3.1). Workers hold their slot while blocked on LLM
    /// calls, so at large agent counts the pool is contended and the
    /// priority order of the ready queue matters (Table 1).
    pub workers: Option<usize>,
    /// Checkpoint cadence override in committed steps
    /// (`repro --checkpoint-every K`); experiments that checkpoint pick
    /// their own default when unset.
    pub checkpoint_every: Option<u32>,
    /// Resume an interrupted run from this `AIMSNAP v1` snapshot
    /// (`repro --resume <snap>`), instead of starting fresh.
    pub resume: Option<PathBuf>,
    /// Record runtime telemetry and export it under this directory
    /// (`repro --telemetry <dir>`): per-arm `.telemetry` reports plus
    /// Perfetto `trace.json` files, for experiments that run the threaded
    /// executor (city, city-fleet). `None` leaves the spans subsystem
    /// disabled — a single relaxed atomic load per would-be span.
    pub telemetry: Option<PathBuf>,
    /// Heartbeat period in seconds for the live metrics surface
    /// (`repro --live-stats N`): while an observed threaded run is in
    /// flight, a sampler thread prints a Prometheus-style exposition of
    /// the current [`aim_core::telemetry::MetricsSnapshot`] every `N`
    /// seconds — sampled without quiescing the run. Requires
    /// `--telemetry`; `None` disables the heartbeat.
    pub live_stats: Option<u64>,
    /// Port for the live health plane (`repro --serve PORT`): observed
    /// experiments bind an `aim-serve` [`aim_serve::StatusServer`] on
    /// `127.0.0.1:PORT` for the duration of each observed run, exposing
    /// `/metrics`, `/status`, and `/healthz` plus the stall watchdog.
    /// Requires `--telemetry`; `None` disables the endpoint.
    pub serve: Option<u16>,
}

impl Default for RunEnv {
    fn default() -> Self {
        RunEnv {
            out_dir: PathBuf::from("target/repro"),
            quick: false,
            step_cpu_us: 2_000,
            commit_cpu_us: 1_000,
            workers: Some(48),
            checkpoint_every: None,
            resume: None,
            telemetry: None,
            live_stats: None,
            serve: None,
        }
    }
}

/// A running `--live-stats` heartbeat: samples the observed run's
/// [`aim_core::telemetry::Telemetry`] sink (once immediately, then on a
/// fixed period) and prints the Prometheus-style exposition on stderr.
/// Dropping the guard stops the sampler thread and joins it, so
/// heartbeats never outlive the run they watch.
#[derive(Debug)]
pub struct LiveStats {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for LiveStats {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The wall budget after which a run with no commits is declared
/// stalled by the `--serve` watchdog (30 s: a healthy quick run commits
/// several times a second, so this only trips on genuine wedges).
pub const WATCHDOG_BUDGET_US: u64 = 30_000_000;

/// A running `--serve` health plane: holds the HTTP status server for
/// the duration of one observed run, plus the [`HealthBoard`] that
/// distributed experiments feed from heartbeat polls. Dropping the
/// guard shuts the server down.
///
/// [`HealthBoard`]: aim_core::health::HealthBoard
#[derive(Debug)]
pub struct StatusGuard {
    /// Per-worker liveness board; pass to
    /// `DistTracker::poll_heartbeats` from a checkpoint hook.
    pub board: Arc<aim_core::health::HealthBoard>,
    source: Arc<aim_serve::RunStatus>,
    server: aim_serve::StatusServer,
}

impl StatusGuard {
    /// The bound port (`--serve 0` binds an ephemeral one).
    pub fn port(&self) -> u16 {
        self.server.port()
    }

    /// Whether the stall watchdog has fired during this run.
    pub fn stalled(&self) -> bool {
        self.source.stall_report().is_some()
    }
}

impl RunEnv {
    /// Starts the `--serve` health plane for one observed run,
    /// returning a guard that keeps the HTTP endpoint up until dropped.
    /// `None` when either `--serve` or `--telemetry` is off (the
    /// status page renders the observed sink), or when the bind fails
    /// (reported on stderr — a health plane must never kill the run it
    /// watches).
    pub fn status_guard(
        &self,
        label: &str,
        agents: u32,
        telemetry: Option<&Arc<aim_core::telemetry::Telemetry>>,
        backend: Option<Arc<dyn aim_llm::LlmBackend>>,
    ) -> Option<StatusGuard> {
        use aim_core::health::{HealthBoard, Watchdog};
        let port = self.serve?;
        let t = telemetry?;
        let board = Arc::new(HealthBoard::new());
        let mut status = aim_serve::RunStatus::new(label, agents)
            .with_telemetry(Arc::clone(t))
            .with_board(Arc::clone(&board))
            .with_watchdog(Arc::new(Watchdog::new(WATCHDOG_BUDGET_US)));
        if let Some(b) = backend {
            status = status.with_backend(b);
        }
        let source = Arc::new(status);
        match aim_serve::StatusServer::start(
            port,
            Arc::clone(&source) as Arc<dyn aim_serve::StatusSource>,
        ) {
            Ok(server) => {
                eprintln!(
                    "[serve] {label}: status endpoint on http://127.0.0.1:{}",
                    server.port()
                );
                Some(StatusGuard {
                    board,
                    source,
                    server,
                })
            }
            Err(e) => {
                eprintln!("[serve] {label}: could not bind 127.0.0.1:{port}: {e}");
                None
            }
        }
    }

    /// When `--telemetry <dir>` is set, builds an enabled
    /// [`aim_core::telemetry::Telemetry`] sink to pass to
    /// [`aim_core::exec::threaded::run_threaded_observed`]; `None`
    /// otherwise. One sink per run — do not share across arms.
    pub fn telemetry_sink(&self) -> Option<Arc<aim_core::telemetry::Telemetry>> {
        self.telemetry.as_ref()?;
        Some(Arc::new(aim_core::telemetry::Telemetry::new()))
    }

    /// Starts the `--live-stats` heartbeat over `telemetry`, returning a
    /// guard that stops the sampler when dropped (hold it across the
    /// run). `None` when either `--live-stats` or `--telemetry` is off —
    /// the heartbeat samples the observed sink, so it needs both.
    pub fn live_stats_guard(
        &self,
        telemetry: Option<&Arc<aim_core::telemetry::Telemetry>>,
    ) -> Option<LiveStats> {
        use std::sync::atomic::{AtomicBool, Ordering};
        let period = self.live_stats?;
        let t = Arc::clone(telemetry?);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut beat = 0u64;
            loop {
                // Beat first, then sleep: even a run shorter than one
                // period emits at least one heartbeat.
                beat += 1;
                let snap = t.snapshot();
                // Stderr, not stdout: the tables and CSV paths on stdout
                // must stay machine-consumable even with the heartbeat on.
                eprintln!("--- live stats · beat {beat} ---");
                eprint!("{}", aim_trace::telemetry::prometheus_text(&snap));
                // 100 ms granularity keeps guard drop prompt at run end.
                for _ in 0..period.max(1) * 10 {
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            }
        });
        Some(LiveStats {
            stop,
            handle: Some(handle),
        })
    }

    /// Exports one observed run's report under the `--telemetry` dir as
    /// `<label>.telemetry` (AIMTEL v1) plus `<label>.trace.json`
    /// (Perfetto), and checks the acceptance gate: the four stall
    /// categories must cover ≥95% of the wall budget.
    ///
    /// # Panics
    ///
    /// Panics if the decomposition covers less than 95% of the run or an
    /// export file cannot be written.
    pub fn export_telemetry(&self, label: &str, rt: &aim_core::telemetry::RunTelemetry) {
        let Some(dir) = &self.telemetry else { return };
        assert!(
            rt.decomposition.coverage() >= 0.95,
            "telemetry decomposition covers only {:.1}% of {label}",
            100.0 * rt.decomposition.coverage()
        );
        std::fs::create_dir_all(dir).expect("telemetry dir");
        let tel_path = dir.join(format!("{label}.telemetry"));
        aim_trace::telemetry::save(rt, &tel_path).expect("write .telemetry");
        let json_path = dir.join(format!("{label}.trace.json"));
        let file = std::fs::File::create(&json_path).expect("create trace.json");
        let mut w = std::io::BufWriter::new(file);
        aim_trace::telemetry::write_chrome_trace(rt, &mut w).expect("write trace.json");
        println!(
            "  telemetry: wrote {} and {}",
            tel_path.display(),
            json_path.display()
        );
    }

    /// Returns a cached trace for `cfg`, generating (and saving) it on
    /// first use — generation of big villes takes a while and every
    /// experiment replays the same traces, exactly like the paper reuses
    /// its collected traces.
    pub fn trace(&self, cfg: &gen::GenConfig) -> Trace {
        let dir = self.out_dir.join("traces");
        let name = format!(
            "v{}x{}-seed{}-s{}+{}.trc",
            cfg.villes, cfg.agents_per_ville, cfg.seed, cfg.window_start, cfg.window_len
        );
        let path = dir.join(name);
        if let Ok(t) = codec::load(&path) {
            return t;
        }
        let t = gen::generate(cfg);
        std::fs::create_dir_all(&dir).ok();
        codec::save(&t, &path).ok();
        t
    }
}

/// Executes one mode over `trace` on `gpus` GPUs of `preset` hardware.
///
/// `oracle_graph` is required for [`Mode::Oracle`] (mine once per trace
/// with [`aim_trace::oracle::mine`] and share it across GPU counts).
///
/// # Panics
///
/// Panics if `Mode::Oracle` is requested without an oracle graph, or on
/// internal scheduler errors (which would indicate a bug, not bad input).
pub fn run_one(
    env: &RunEnv,
    trace: &Trace,
    mode: Mode,
    preset: &Preset,
    gpus: u32,
    priority: bool,
    oracle_graph: Option<&Arc<OracleGraph>>,
) -> RunReport {
    let policy = match mode {
        Mode::SingleThread | Mode::ParallelSync => DependencyPolicy::GlobalSync,
        Mode::Metropolis => DependencyPolicy::Spatiotemporal,
        Mode::Oracle => DependencyPolicy::Oracle(Arc::clone(
            oracle_graph.expect("oracle mode needs a mined graph"),
        )),
        Mode::NoDependency => DependencyPolicy::NoDependency,
    };
    let sim = SimConfig {
        step_cpu_us: env.step_cpu_us,
        commit_cpu_us: env.commit_cpu_us,
        serial_agents: mode == Mode::SingleThread,
        max_concurrent_clusters: if mode == Mode::SingleThread {
            Some(1)
        } else {
            env.workers
        },
        priority_ready_queue: priority,
        record_timeline: false,
    };
    let replicas = preset.replicas_for_gpus(gpus);
    let server_cfg = ServerConfig::from_preset(preset.clone(), replicas, priority);
    let meta = trace.meta();
    let space = Arc::new(GridSpace::new(meta.map_width, meta.map_height));
    let params = RuleParams::new(meta.radius_p, meta.max_vel);
    let initial: Vec<_> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut scheduler = Scheduler::new(
        space,
        params,
        policy,
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .expect("scheduler construction");
    let mut server = SimServer::new(server_cfg);
    let mut report = run_sim(&mut scheduler, trace, &mut server, &sim).expect("replay run");
    report.mode = mode.label().to_string();
    report
}

/// Executes the *speculative* engine (paper §6, `aim_core::spec`) over
/// `trace` with the given run-ahead budget. `runahead == 0` reproduces
/// [`Mode::Metropolis`] exactly.
///
/// # Panics
///
/// Panics on internal scheduler errors (a bug, not bad input).
pub fn run_one_spec(
    env: &RunEnv,
    trace: &Trace,
    runahead: u32,
    preset: &Preset,
    gpus: u32,
    priority: bool,
) -> RunReport {
    use aim_core::spec::{run_spec_sim, SpecParams, SpecScheduler};
    let sim = SimConfig {
        step_cpu_us: env.step_cpu_us,
        commit_cpu_us: env.commit_cpu_us,
        serial_agents: false,
        max_concurrent_clusters: env.workers,
        priority_ready_queue: priority,
        record_timeline: false,
    };
    let replicas = preset.replicas_for_gpus(gpus);
    let server_cfg = ServerConfig::from_preset(preset.clone(), replicas, priority);
    let meta = trace.meta();
    let space = Arc::new(GridSpace::new(meta.map_width, meta.map_height));
    let params = RuleParams::new(meta.radius_p, meta.max_vel);
    let initial: Vec<_> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let mut scheduler = SpecScheduler::new(
        space,
        params,
        SpecParams::new(runahead),
        Arc::new(Db::new()),
        &initial,
        Workload::target_step(trace),
    )
    .expect("spec scheduler construction");
    let mut server = SimServer::new(server_cfg);
    run_spec_sim(&mut scheduler, trace, &mut server, &sim).expect("speculative replay run")
}

/// Runs several modes over the same trace, returning `(mode, report)`
/// pairs. The oracle graph is mined once if any mode needs it.
pub fn run_modes(
    env: &RunEnv,
    trace: &Trace,
    modes: &[Mode],
    preset: &Preset,
    gpus: u32,
    priority: bool,
) -> Vec<(Mode, RunReport)> {
    let needs_oracle = modes.contains(&Mode::Oracle);
    let graph = needs_oracle.then(|| Arc::new(oracle::mine(trace)));
    modes
        .iter()
        .map(|&m| {
            (
                m,
                run_one(env, trace, m, preset, gpus, priority, graph.as_ref()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_llm::presets;
    use aim_world::clock_to_step;

    fn small_trace(env: &RunEnv) -> Trace {
        env.trace(&gen::GenConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 3,
            window_start: clock_to_step(9, 0),
            window_len: 60,
        })
    }

    #[test]
    fn ordering_of_modes_holds_on_small_run() {
        let env = RunEnv {
            out_dir: std::env::temp_dir().join("aim-bench-harness-test"),
            ..RunEnv::default()
        };
        let trace = small_trace(&env);
        let preset = presets::tiny_test();
        let runs = run_modes(
            &env,
            &trace,
            &[
                Mode::SingleThread,
                Mode::ParallelSync,
                Mode::Metropolis,
                Mode::Oracle,
            ],
            &preset,
            1,
            true,
        );
        let t = |m: Mode| {
            runs.iter()
                .find(|(mm, _)| *mm == m)
                .map(|(_, r)| r.makespan)
                .expect("mode ran")
        };
        assert!(t(Mode::Metropolis) <= t(Mode::ParallelSync));
        assert!(t(Mode::ParallelSync) <= t(Mode::SingleThread));
        assert!(t(Mode::Oracle) <= t(Mode::ParallelSync));
    }

    #[test]
    fn trace_cache_roundtrips() {
        let env = RunEnv {
            out_dir: std::env::temp_dir().join("aim-bench-cache-test"),
            ..RunEnv::default()
        };
        std::fs::remove_dir_all(&env.out_dir).ok();
        let a = small_trace(&env);
        let b = small_trace(&env); // second call loads from disk
        assert_eq!(a, b);
    }
}
