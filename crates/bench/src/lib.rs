//! # aim-bench
//!
//! The reproduction harness: one experiment per table/figure of the AI
//! Metropolis paper, plus shared machinery (trace caching, run
//! orchestration, ASCII tables, CSV output).
//!
//! Run experiments with the `repro` binary:
//!
//! ```text
//! cargo run --release -p aim-bench --bin repro -- fig4a
//! cargo run --release -p aim-bench --bin repro -- all --quick
//! ```
//!
//! Results print as tables and are also written as CSV under
//! `target/repro/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{run_modes, run_one, Mode, RunEnv};
pub use table::Table;

/// Fixed CPU-bound calibration workload shared by the gated bench
/// targets (`calibration/spin` in `scheduler`, `depgraph`,
/// `clustering`).
///
/// Its measured time depends only on the machine's effective speed at
/// bench time — never on this repository's code — so `bench_gate` uses
/// the ratio of fresh to baseline calibration to normalize every other
/// benchmark before applying the regression threshold. That cancels
/// uniform machine drift (thermal throttling, a noisy neighbor on the
/// runner, a different CI machine class) which would otherwise make a
/// 5% gate flaky.
#[inline(never)]
pub fn calibration_spin() -> u64 {
    // ~100k xorshift64* steps: pure register arithmetic, no memory
    // traffic, deterministic instruction count.
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut acc = 0u64;
    for _ in 0..100_000 {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        acc = acc.wrapping_add(x.wrapping_mul(0x2545f4914f6cdd1d));
    }
    acc
}
