//! # aim-bench
//!
//! The reproduction harness: one experiment per table/figure of the AI
//! Metropolis paper, plus shared machinery (trace caching, run
//! orchestration, ASCII tables, CSV output).
//!
//! Run experiments with the `repro` binary:
//!
//! ```text
//! cargo run --release -p aim-bench --bin repro -- fig4a
//! cargo run --release -p aim-bench --bin repro -- all --quick
//! ```
//!
//! Results print as tables and are also written as CSV under
//! `target/repro/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{run_modes, run_one, Mode, RunEnv};
pub use table::Table;
