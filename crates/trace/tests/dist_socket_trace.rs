//! End-to-end merged Perfetto export for a **two-OS-process** socket
//! run: the controller (this test) drives a [`ShardWorker`] living in a
//! separate process over `AIMMSG v1` TCP, records its own send/wait
//! spans, harvests the worker's apply spans over the wire, and exports
//! ONE validated `trace.json` in which both processes appear on
//! distinct, named tracks.
//!
//! Same re-exec topology as `aim-core`'s `dist_socket.rs` smoke test:
//! the controller binds a loopback listener and re-executes its own test
//! binary filtered to [`trace_worker_child`] with the address in an
//! environment variable. A plain `cargo test` pass sees the child test
//! as a no-op.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::process::Command;
use std::sync::Arc;

use aim_core::dist::socket::{serve_connection, SocketLink};
use aim_core::dist::{CtrlMsg, NodeRecord, ShardMsg, ShardWorker, WorkerLink};
use aim_core::prelude::*;
use aim_core::scheduler::SchedStats;
use aim_core::space::GridSpace;
use aim_core::telemetry::{BoundaryOp, SpanKind, Telemetry};
use aim_store::Db;
use aim_trace::telemetry::{
    read_telemetry, validate_chrome_trace, write_chrome_trace, write_telemetry,
};

const ADDR_VAR: &str = "AIM_TRACE_WORKER_ADDR";

fn space() -> Arc<GridSpace> {
    Arc::new(GridSpace::new(64, 64))
}

/// The worker half; only active when re-executed with [`ADDR_VAR`] set.
#[test]
fn trace_worker_child() {
    let Ok(addr) = std::env::var(ADDR_VAR) else {
        return;
    };
    let stream = TcpStream::connect(addr).expect("child connects to controller");
    let mut worker = ShardWorker::new(
        3,
        space(),
        RuleParams::new(2, 1),
        Arc::new(Db::new()),
        true,
        Arc::default(),
    );
    serve_connection(stream, &mut worker).expect("serve loop");
}

#[test]
fn two_process_run_exports_one_merged_validated_trace() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["--exact", "trace_worker_child", "--nocapture"])
        .env(ADDR_VAR, &addr)
        .spawn()
        .expect("spawn worker process");

    let (stream, _) = listener.accept().expect("worker connects");
    let mut link = SocketLink::connect(3, space(), stream).expect("AIMMSG handshake");

    let telemetry = Telemetry::new();
    let start = telemetry.now_us();

    // Arming harvest: the process boundary hides the in-process sink, so
    // the first harvest switches on worker-side recording.
    link.send(CtrlMsg::HarvestTelemetry {
        now_us: telemetry.now_us(),
    })
    .unwrap();
    assert!(matches!(
        link.recv().unwrap(),
        ShardMsg::Telemetry { worker: 3, .. }
    ));

    // Controller-side spans: bracket each request with the same
    // send/wait accounting DistTracker keeps, so the shared track has
    // something to interleave with the remote applies.
    let records: Vec<NodeRecord<Point>> = [(0, 8, 8), (1, 9, 8), (2, 40, 40)]
        .into_iter()
        .map(|(agent, x, y)| NodeRecord {
            agent,
            step: 0,
            pos: Point::new(x, y),
            history: vec![(0, Point::new(x, y))],
        })
        .collect();
    let requests: Vec<CtrlMsg<Point>> = vec![
        CtrlMsg::Arrive { records },
        CtrlMsg::Commit {
            updates: vec![(0, Point::new(8, 9))],
        },
        CtrlMsg::Quiesce,
        CtrlMsg::EvictHistory { floor: 1 },
    ];
    for msg in requests {
        let t0 = telemetry.start();
        link.send(msg).unwrap();
        if let Some(t0) = t0 {
            telemetry.record(
                t0,
                SpanKind::Boundary {
                    worker: 3,
                    op: BoundaryOp::Send,
                    messages: 1,
                },
            );
        }
        let t1 = telemetry.start();
        let reply = link.recv().unwrap();
        assert!(
            !matches!(reply, ShardMsg::Failed { .. }),
            "protocol failure: {reply:?}"
        );
        if let Some(t1) = t1 {
            telemetry.record(
                t1,
                SpanKind::Boundary {
                    worker: 3,
                    op: BoundaryOp::Wait,
                    messages: 1,
                },
            );
        }
    }

    // Harvest the worker's applies with the clock-offset handshake.
    let t_send = telemetry.now_us();
    link.send(CtrlMsg::HarvestTelemetry { now_us: t_send })
        .unwrap();
    let reply = link.recv().unwrap();
    let t_recv = telemetry.now_us();
    let ShardMsg::Telemetry {
        worker: 3,
        now_us,
        spans,
        counters,
        dropped,
    } = reply
    else {
        panic!("expected Telemetry, got {reply:?}");
    };
    assert!(!spans.is_empty(), "armed worker recorded its applies");
    let midpoint = t_send + (t_recv - t_send) / 2;
    let offset = midpoint as i64 - now_us as i64;
    let track = telemetry.remote_track("worker 3 (remote)");
    telemetry.ingest(track, &spans, offset);
    telemetry.set_remote_dropped(track, dropped);
    for (c, n) in counters {
        telemetry.counter_add(c, n);
    }

    link.send(CtrlMsg::Shutdown).unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Done);
    let status = child.wait().expect("child exit status");
    assert!(status.success(), "worker process failed: {status}");

    let end = telemetry.now_us();
    let rt = telemetry.finish(start, end, 3, SchedStats::default(), None);

    // The merged report round-trips through AIMTEL v1 with its worker
    // track intact before it is exported.
    let mut text = Vec::new();
    write_telemetry(&rt, &mut text).expect("AIMTEL write");
    let rt = read_telemetry(&mut BufReader::new(text.as_slice())).expect("AIMTEL read");
    assert_eq!(rt.track_name(track), Some("worker 3 (remote)"));

    // ONE trace.json, Perfetto-loadable, with spans from both processes
    // on distinct named tracks.
    let mut json = Vec::new();
    write_chrome_trace(&rt, &mut json).expect("chrome trace write");
    let json = String::from_utf8(json).expect("utf8");
    let events = validate_chrome_trace(&json).expect("trace.json validates");
    assert!(events > 0);
    assert!(
        json.contains("\"worker 3 (remote)\""),
        "remote worker track is named in the export"
    );
    assert!(
        json.contains("\"shared (controller/backend/fleet)\""),
        "controller track is named in the export"
    );

    let controller_spans = rt.spans.iter().filter(|s| s.track != track).count();
    let remote_spans = rt.spans.iter().filter(|s| s.track == track).count();
    assert!(
        controller_spans > 0 && remote_spans > 0,
        "both processes contribute spans ({controller_spans} local, {remote_spans} remote)"
    );
}
