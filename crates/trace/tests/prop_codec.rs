//! Property tests: arbitrary well-formed traces round-trip through the
//! codec bit-exactly, and windowing composes.

use aim_core::space::Point;
use aim_llm::CallKind;
use aim_trace::{codec, Trace, TraceBuilder, TraceMeta};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ArbTrace {
    agents: u32,
    steps: u32,
    calls: Vec<(u32, u32, u8, u32, u32)>, // agent, step, kind idx, in, out
    moves: Vec<(u32, u32, i8, i8)>,       // agent, step, dx, dy
}

fn arb_trace() -> impl Strategy<Value = ArbTrace> {
    (2u32..6, 2u32..10).prop_flat_map(|(agents, steps)| {
        let calls =
            proptest::collection::vec((0..agents, 0..steps, 0u8..7, 1u32..3000, 1u32..200), 0..40);
        let moves = proptest::collection::vec((0..agents, 0..steps, -1i8..=1, -1i8..=1), 0..60);
        (Just(agents), Just(steps), calls, moves).prop_map(|(agents, steps, calls, moves)| {
            ArbTrace {
                agents,
                steps,
                calls,
                moves,
            }
        })
    })
}

fn build(t: &ArbTrace) -> Trace {
    let meta = TraceMeta {
        name: "prop trace".into(),
        num_agents: t.agents,
        start_step: 100,
        num_steps: t.steps,
        map_width: 64,
        map_height: 64,
        radius_p: 4,
        max_vel: 1,
        seed: 5,
    };
    let initial: Vec<Point> = (0..t.agents)
        .map(|a| Point::new(a as i32 * 3 + 5, 10))
        .collect();
    let mut b = TraceBuilder::new(meta, &initial);
    for (agent, step, kind, input, output) in &t.calls {
        b.push_call(
            *agent,
            *step,
            CallKind::ALL[*kind as usize],
            *input,
            *output,
        );
    }
    // Apply moves cumulatively per step, clamped to the map.
    let mut pos = initial;
    let mut moves = t.moves.clone();
    moves.sort_by_key(|&(a, s, _, _)| (s, a));
    for step in 0..t.steps {
        for &(a, s, dx, dy) in &moves {
            if s == step {
                let p = &mut pos[a as usize];
                p.x = (p.x + dx as i32).clamp(0, 63);
                p.y = (p.y + dy as i32).clamp(0, 63);
            }
        }
        b.push_positions(&pos);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn codec_roundtrips_arbitrary_traces(t in arb_trace()) {
        let trace = build(&t);
        let mut buf = Vec::new();
        codec::write_trace(&trace, &mut buf).unwrap();
        let back = codec::read_trace(&mut std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn windows_compose(t in arb_trace()) {
        let trace = build(&t);
        prop_assume!(trace.meta().num_steps >= 4);
        let half = trace.meta().num_steps / 2;
        // window(0, n) == identity on calls/positions.
        let full = trace.window(0, trace.meta().num_steps, "full");
        prop_assert_eq!(full.calls().len(), trace.calls().len());
        // window of a window == direct window.
        let w1 = trace.window(1, trace.meta().num_steps - 1, "w1");
        let w2 = w1.window(half - 1, 2, "w2");
        let direct = trace.window(half, 2, "direct");
        prop_assert_eq!(w2.calls().len(), direct.calls().len());
        for a in 0..trace.meta().num_agents {
            prop_assert_eq!(w2.initial_position(a), direct.initial_position(a));
            prop_assert_eq!(w2.position_after(a, 1), direct.position_after(a, 1));
        }
    }

    #[test]
    fn oracle_mining_is_deterministic_and_bounded(t in arb_trace()) {
        let trace = build(&t);
        let a = aim_trace::oracle::mine(&trace);
        let b = aim_trace::oracle::mine(&trace);
        prop_assert_eq!(&a, &b);
        let avg = a.avg_dependencies();
        prop_assert!(avg >= 1.0);
        prop_assert!(avg <= trace.meta().num_agents as f64);
    }
}
