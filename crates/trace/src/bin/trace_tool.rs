//! `trace_tool` — inspect, generate, slice, and replay AI Metropolis
//! trace files.
//!
//! ```text
//! trace_tool gen out.trc --villes 1 --seed 42 --start-hour 12 --hours 1
//! trace_tool info out.trc
//! trace_tool stats out.trc
//! trace_tool hourly out.trc
//! trace_tool window out.trc 0 60 sliced.trc
//! trace_tool replay out.trc --mode metropolis --gpus 4
//! trace_tool replay out.trc --mode spec:4 --gpus 8 --preset l4
//! trace_tool latency out.trc out.lat --preset l4 --gpus 2 --step-us 500000
//! trace_tool snapshot ckpt-00000040.aimsnap --validate
//! trace_tool timeline run.telemetry --out traces/ --validate
//! trace_tool stalls run.telemetry --top 10
//! trace_tool stalls --diff before.telemetry after.telemetry --fail-over 5
//! trace_tool top http://127.0.0.1:18080 --interval 2
//! trace_tool top target/telemetry --count 1
//! ```
//!
//! `latency` exports the serving-latency distribution the trace induces
//! on a deployment as an `AIMLAT v1` profile, ready to be imported by
//! `aim_llm::ReplayBackend` (e.g. as a fleet replica).
//!
//! `snapshot` inspects an `AIMSNAP v1` checkpoint file (sections, record
//! counts, run metadata; the checksum is always verified on load);
//! `--validate` additionally restores the store, recovers the scheduler
//! from it, and checks the §3.2 validity condition plus the history
//! eviction invariant over the recovered graph.
//!
//! `timeline` loads an `AIMTEL v1` telemetry report (written by
//! `repro … --telemetry <dir>`), prints its summary (wall-clock
//! decomposition, per-phase histograms), and exports `trace.json`
//! (Perfetto / `chrome://tracing`) plus `spans.jsonl` next to the input
//! (or under `--out`); `--validate` re-reads the exported `trace.json`
//! and checks it parses as a well-formed trace-event file.
//!
//! `stalls` prints the top-K aggregated blocking edges — who waited on
//! whom, how often, for how long — the paper's blocked-time story for one
//! run. `stalls --diff` compares two runs; with `--fail-over PCT` it
//! exits nonzero when the blocked share regressed by more than PCT
//! percentage points — a CI tripwire for synchronization regressions.
//!
//! `top` is the live-operations dashboard: given an `http://` URL it
//! polls a running simulation's `/status` endpoint (the `aim-serve`
//! health plane, `repro … --serve PORT`); given a directory it digests
//! the newest `.telemetry` export there. It refreshes every
//! `--interval` seconds until `--count` renders have been printed
//! (default: forever).

use aim_trace::{codec, gen, stats, Trace};

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool gen <out.trc> [--villes N] [--agents N] [--seed S] \
         [--start-hour H] [--hours H]\n  trace_tool info <file>\n  trace_tool stats <file>\n  \
         trace_tool hourly <file>\n  trace_tool window <file> <from-step> <len> <out.trc>\n  \
         trace_tool replay <file> [--mode single-thread|parallel-sync|metropolis|oracle|\
         no-dependency|spec:<k>] [--gpus N] [--preset l4|a100|mixtral|game|tiny] [--no-priority]\n  \
         trace_tool latency <file> <out.lat> [--preset l4|a100|mixtral|game|tiny] [--gpus N] \
         [--step-us U] [--no-priority]\n  \
         trace_tool snapshot <file.aimsnap> [--validate]\n  \
         trace_tool timeline <run.telemetry> [--out <dir>] [--validate]\n  \
         trace_tool stalls <run.telemetry> [--top K]\n  \
         trace_tool stalls --diff <a.telemetry> <b.telemetry> [--fail-over PCT]\n  \
         trace_tool top <http://host:port | telemetry-dir> [--interval S] [--count N]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Trace {
    match codec::load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The one preset table shared by `replay` and `latency`.
fn parse_preset(name: &str) -> aim_llm::Preset {
    use aim_llm::presets;
    match name {
        "l4" => presets::l4_llama3_8b(),
        "a100" => presets::a100_tp4_llama3_70b(),
        "mixtral" => presets::a100_tp2_mixtral_8x7b(),
        "game" => presets::l4_game_server(),
        "tiny" => presets::tiny_test(),
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") if args.len() == 2 => cmd_info(&load(&args[1])),
        Some("stats") if args.len() == 2 => cmd_stats(&load(&args[1])),
        Some("hourly") if args.len() == 2 => cmd_hourly(&load(&args[1])),
        Some("window") if args.len() == 5 => cmd_window(&args[1..]),
        Some("replay") if args.len() >= 2 => cmd_replay(&args[1..]),
        Some("latency") if args.len() >= 3 => cmd_latency(&args[1..]),
        Some("snapshot") if args.len() >= 2 => cmd_snapshot(&args[1..]),
        Some("timeline") if args.len() >= 2 => cmd_timeline(&args[1..]),
        Some("stalls") if args.len() >= 2 => cmd_stalls(&args[1..]),
        Some("top") if args.len() >= 2 => cmd_top(&args[1..]),
        _ => usage(),
    }
}

fn load_telemetry(path: &str) -> aim_core::telemetry::RunTelemetry {
    match aim_trace::telemetry::load(path) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_timeline(args: &[String]) {
    use aim_trace::telemetry as tel;

    let path = &args[0];
    let mut out_dir: Option<&str> = None;
    let mut validate = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_dir = Some(it.next().map(String::as_str).unwrap_or_else(|| usage())),
            "--validate" => validate = true,
            _ => usage(),
        }
    }
    let rt = load_telemetry(path);
    let dir = out_dir.map_or_else(
        || {
            std::path::Path::new(path)
                .parent()
                .unwrap_or_else(|| std::path::Path::new("."))
                .to_path_buf()
        },
        std::path::PathBuf::from,
    );
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error creating {}: {e}", dir.display());
        std::process::exit(1);
    }

    println!("run         : {path}");
    println!(
        "wall        : {:.3} s · {} agents · {} spans ({} dropped)",
        rt.wall_us as f64 / 1e6,
        rt.agents,
        rt.spans.len(),
        rt.dropped
    );
    println!(
        "sched       : {} clusters · {} agent-steps · skew {} · max cluster {}",
        rt.sched.clusters_emitted,
        rt.sched.agent_steps,
        rt.sched.max_step_skew,
        rt.sched.max_cluster_size
    );
    for (c, n) in &rt.counters {
        if *n > 0 {
            println!("counter     : {} = {n}", c.as_str());
        }
    }
    println!(
        "decompose   : {} (coverage {:.1}%)",
        rt.decomposition,
        100.0 * rt.decomposition.coverage()
    );
    if let Some(slowdown) = rt.slowdown_vs_critical() {
        println!("wall vs lb  : {slowdown:.2}×");
    }
    println!("phases      :");
    for (phase, h) in &rt.phases {
        println!(
            "  {:<11} {:>8} spans · mean {:>8} µs · p99 {:>8} µs · max {:>8} µs",
            phase.as_str(),
            h.count,
            h.mean_us(),
            h.p99_us(),
            h.max_us
        );
    }

    let json_path = dir.join("trace.json");
    let jsonl_path = dir.join("spans.jsonl");
    let write = |f: &dyn Fn(
        &mut std::io::BufWriter<std::fs::File>,
    ) -> Result<(), aim_trace::TraceError>,
                 p: &std::path::Path| {
        let file = match std::fs::File::create(p) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error creating {}: {e}", p.display());
                std::process::exit(1);
            }
        };
        let mut w = std::io::BufWriter::new(file);
        if let Err(e) = f(&mut w) {
            eprintln!("error writing {}: {e}", p.display());
            std::process::exit(1);
        }
    };
    write(&|w| tel::write_chrome_trace(&rt, w), &json_path);
    write(&|w| tel::write_jsonl(&rt, w), &jsonl_path);
    eprintln!(
        "wrote {} (open in Perfetto) and {}",
        json_path.display(),
        jsonl_path.display()
    );

    if validate {
        let text = match std::fs::read_to_string(&json_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error re-reading {}: {e}", json_path.display());
                std::process::exit(1);
            }
        };
        match tel::validate_chrome_trace(&text) {
            Ok(events) => println!("validate    : OK ({events} complete events)"),
            Err(e) => {
                eprintln!("VALIDATE FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_stalls(args: &[String]) {
    if args[0] == "--diff" {
        if args.len() < 3 {
            usage();
        }
        let mut fail_over: Option<f64> = None;
        let mut it = args[3..].iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--fail-over" => {
                    fail_over = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|p: &f64| *p >= 0.0)
                            .unwrap_or_else(|| usage()),
                    );
                }
                _ => usage(),
            }
        }
        cmd_stalls_diff(&args[1], &args[2], fail_over);
        return;
    }
    let path = &args[0];
    let mut top = 10usize;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--top" => {
                top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let rt = load_telemetry(path);
    println!(
        "blocked     : {:.1}% of agent time ({} agents over {:.3} s)",
        100.0 * rt.decomposition.blocked_frac(),
        rt.agents,
        rt.wall_us as f64 / 1e6
    );
    if let Some(h) = rt.phase(aim_core::telemetry::Phase::Boundary) {
        println!(
            "boundary    : {} µs over {} message-boundary spans (dist workers)",
            h.total_us, h.count
        );
    }
    for t in &rt.worker_tracks {
        println!(
            "worker      : {} (track {}) · {} spans overflowed worker-side",
            t.name, t.track, t.dropped
        );
    }
    let edges = rt.stall_edges(top);
    if edges.is_empty() {
        println!("no blocking edges recorded — nothing ever waited");
        return;
    }
    println!(
        "{:<9} {:<9} {:<11} {:>7} {:>12}",
        "agent", "blocker", "reason", "waits", "total µs"
    );
    for e in edges {
        let fmt_id = |id: u32| {
            if id == u32::MAX {
                "*".to_string()
            } else {
                format!("a{id}")
            }
        };
        println!(
            "{:<9} {:<9} {:<11} {:>7} {:>12}",
            fmt_id(e.agent),
            fmt_id(e.blocker),
            e.reason.as_str(),
            e.count,
            e.total_us
        );
    }
}

/// `stalls --diff a b`: side-by-side stall decomposition of two runs for
/// regression triage — which phase grew, which counters moved. With
/// `--fail-over PCT`, exits nonzero when the blocked share grew by more
/// than PCT percentage points from `a` to `b`.
fn cmd_stalls_diff(path_a: &str, path_b: &str, fail_over: Option<f64>) {
    use aim_core::telemetry::Phase;

    let a = load_telemetry(path_a);
    let b = load_telemetry(path_b);
    println!("a           : {path_a}");
    println!("b           : {path_b}");
    let pct = |x: f64| 100.0 * x;
    let row = |label: &str, va: f64, vb: f64| {
        println!(
            "{label:<11} : {va:>7.1}% -> {vb:>7.1}%  ({:+.1} pp)",
            vb - va
        );
    };
    row(
        "llm",
        pct(a.decomposition.llm_frac()),
        pct(b.decomposition.llm_frac()),
    );
    row(
        "blocked",
        pct(a.decomposition.blocked_frac()),
        pct(b.decomposition.blocked_frac()),
    );
    row(
        "overhead",
        pct(a.decomposition.overhead_frac()),
        pct(b.decomposition.overhead_frac()),
    );
    row(
        "checkpoint",
        pct(a.decomposition.checkpoint_frac()),
        pct(b.decomposition.checkpoint_frac()),
    );
    println!(
        "wall        : {:>9.3} s -> {:>9.3} s  ({:+.1}%)",
        a.wall_us as f64 / 1e6,
        b.wall_us as f64 / 1e6,
        100.0 * (b.wall_us as f64 - a.wall_us as f64) / a.wall_us.max(1) as f64
    );
    println!("dropped     : {:>9} -> {:>9}", a.dropped, b.dropped);
    println!("phases      : (total µs per phase)");
    for phase in Phase::ALL {
        let ta = a.phase(phase).map_or(0, |h| h.total_us);
        let tb = b.phase(phase).map_or(0, |h| h.total_us);
        if ta == 0 && tb == 0 {
            continue;
        }
        println!(
            "  {:<11} {ta:>12} -> {tb:>12}  ({:+})",
            phase.as_str(),
            tb as i64 - ta as i64
        );
    }
    let counters: std::collections::BTreeSet<&str> = a
        .counters
        .iter()
        .chain(b.counters.iter())
        .map(|(c, _)| c.as_str())
        .collect();
    if !counters.is_empty() {
        println!("counters    :");
        for name in counters {
            let find = |rt: &aim_core::telemetry::RunTelemetry| {
                rt.counters
                    .iter()
                    .find(|(c, _)| c.as_str() == name)
                    .map_or(0, |(_, n)| *n)
            };
            let (na, nb) = (find(&a), find(&b));
            println!(
                "  {name:<18} {na:>12} -> {nb:>12}  ({:+})",
                nb as i64 - na as i64
            );
        }
    }
    if let Some(limit) = fail_over {
        let drift = pct(b.decomposition.blocked_frac()) - pct(a.decomposition.blocked_frac());
        if drift > limit {
            eprintln!("FAIL: blocked share regressed by {drift:+.1} pp (limit {limit:.1} pp)");
            std::process::exit(1);
        }
        println!("gate        : blocked drift {drift:+.1} pp within {limit:.1} pp");
    }
}

/// `top <url-or-dir>`: the live-operations dashboard. A URL polls a
/// running simulation's `/status` endpoint; a directory digests its
/// newest `.telemetry` export. Refreshes every `--interval` seconds,
/// `--count` times (default: forever).
fn cmd_top(args: &[String]) {
    let target = &args[0];
    let mut interval = 2u64;
    let mut count: Option<u64> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--interval" => {
                interval = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--count" => {
                count = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            _ => usage(),
        }
    }
    let mut rendered = 0u64;
    loop {
        if target.starts_with("http://") {
            top_live(target);
        } else {
            top_dir(target);
        }
        rendered += 1;
        if count == Some(rendered) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

/// Fetches `url`'s `/status` JSON over a plain TCP GET (the status
/// server speaks `Connection: close` HTTP/1.1) and prints a digest.
fn top_live(url: &str) {
    use std::io::{Read, Write};

    let host = url.trim_start_matches("http://");
    let host = host.split('/').next().unwrap_or(host);
    let mut stream = match std::net::TcpStream::connect(host) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error connecting to {host}: {e}");
            std::process::exit(1);
        }
    };
    let request = format!("GET /status HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n");
    let mut body = String::new();
    let ok = stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.read_to_string(&mut body));
    if let Err(e) = ok {
        eprintln!("error talking to {host}: {e}");
        std::process::exit(1);
    }
    let body = body.split_once("\r\n\r\n").map_or("", |(_, b)| b);
    // The digest scans scalar fields out of the JSON; anything missing
    // (a run without that subsystem attached) just doesn't print.
    let field = |key: &str| -> Option<String> {
        let pat = format!("\"{key}\":");
        let i = body.find(&pat)? + pat.len();
        let rest = &body[i..];
        let end = rest.find(|c| c == ',' || c == '}').unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    println!("--- {url} ---");
    if let (Some(label), Some(healthy)) = (field("label"), field("healthy")) {
        println!(
            "run         : {label} ({})",
            if healthy == "true" {
                "healthy"
            } else {
                "STALLED"
            }
        );
    }
    if let Some(uptime) = field("uptime_us").and_then(|v| v.parse::<u64>().ok()) {
        println!("uptime      : {:.1} s", uptime as f64 / 1e6);
    }
    if let (Some(spans), Some(dropped)) = (field("spans"), field("dropped")) {
        println!("spans       : {spans} recorded · {dropped} dropped");
    }
    let frac = |key: &str| field(key).and_then(|v| v.parse::<f64>().ok());
    if let (Some(llm), Some(blocked), Some(overhead), Some(ckpt)) = (
        frac("llm"),
        frac("blocked"),
        frac("overhead"),
        frac("checkpoint"),
    ) {
        println!(
            "decompose   : llm {:.1}% · blocked {:.1}% · overhead {:.1}% · checkpoint {:.1}%",
            100.0 * llm,
            100.0 * blocked,
            100.0 * overhead,
            100.0 * ckpt
        );
    }
    let alive = body.matches("\"alive\":true").count();
    let dead = body.matches("\"alive\":false").count();
    if alive + dead > 0 {
        println!("workers     : {alive} alive · {dead} severed");
    }
    if let Some(stalled) = field("stalled_us").and_then(|v| v.parse::<u64>().ok()) {
        println!(
            "STALL       : no commit for {:.1} s — see /status edges",
            stalled as f64 / 1e6
        );
    }
}

/// Digests the newest `.telemetry` export under `dir`.
fn top_dir(dir: &str) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error reading {dir}: {e}");
            std::process::exit(1);
        }
    };
    let newest = entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "telemetry"))
        .max_by_key(|e| e.metadata().and_then(|m| m.modified()).ok());
    let Some(newest) = newest else {
        eprintln!("no .telemetry files under {dir}");
        std::process::exit(1);
    };
    let path = newest.path();
    let rt = load_telemetry(&path.display().to_string());
    println!("--- {} ---", path.display());
    println!(
        "wall        : {:.3} s · {} agents · {} spans ({} dropped)",
        rt.wall_us as f64 / 1e6,
        rt.agents,
        rt.spans.len(),
        rt.dropped
    );
    println!("decompose   : {}", rt.decomposition);
    for e in rt.stall_edges(5) {
        let fmt_id = |id: u32| {
            if id == u32::MAX {
                "*".to_string()
            } else {
                format!("a{id}")
            }
        };
        println!(
            "edge        : {} waited on {} ({}) ×{} for {} µs",
            fmt_id(e.agent),
            fmt_id(e.blocker),
            e.reason.as_str(),
            e.count,
            e.total_us
        );
    }
}

fn cmd_snapshot(args: &[String]) {
    use aim_core::checkpoint::{self, CheckpointMeta, PolicyTag, SECTION_META, SECTION_WORLD};
    use aim_core::policy::DependencyPolicy;
    use aim_store::Snapshot;

    let path = &args[0];
    let mut validate = false;
    for flag in &args[1..] {
        match flag.as_str() {
            "--validate" => validate = true,
            _ => usage(),
        }
    }
    // Parsing verifies the magic and checksum unconditionally.
    let snap = match Snapshot::load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            std::process::exit(1);
        }
    };
    let info = snap.info();
    println!("file        : {path}");
    println!("size        : {} bytes", info.total_bytes);
    println!("checksum    : {:#018x} (verified)", info.checksum);
    println!("db records  : {}", info.db_records);
    for (name, len) in &info.sections {
        println!("section     : {name} ({len} bytes)");
    }
    let meta = snap
        .section(SECTION_META)
        .cloned()
        .map(CheckpointMeta::decode);
    match &meta {
        None => println!("meta        : absent (raw store snapshot)"),
        Some(Err(e)) => {
            eprintln!("error decoding meta section: {e}");
            std::process::exit(1);
        }
        Some(Ok(m)) => {
            println!("agents      : {}", m.num_agents);
            println!("space       : {}x{}", m.width, m.height);
            println!(
                "rules       : radius_p={} max_vel={}",
                m.radius_p, m.max_vel
            );
            println!(
                "steps       : min={} max={} target={} (world offset {})",
                m.min_step, m.max_step, m.target_step, m.step_offset
            );
            println!("history     : {}", if m.history { "on" } else { "off" });
            println!("policy      : {:?}", m.policy);
            match m.shards {
                0 => println!("shards      : unsharded"),
                n => println!(
                    "shards      : {n} (membership sections: {})",
                    snap.sections_with_prefix("shard/").count()
                ),
            }
            println!(
                "world state : {}",
                if snap.section(SECTION_WORLD).is_some() {
                    "present"
                } else {
                    "absent"
                }
            );
        }
    }
    if !validate {
        return;
    }
    let Some(Ok(m)) = meta else {
        eprintln!("cannot --validate: snapshot has no run metadata");
        std::process::exit(1);
    };
    // Restore the store and recover the scheduler from it; any missing or
    // malformed record surfaces here. The recorded policy drives the
    // recovery; oracle snapshots carry no mined graph, so recover their
    // node table under a dependency-free stand-in.
    let policy_override = match m.policy {
        PolicyTag::Oracle => Some(DependencyPolicy::NoDependency),
        _ => None,
    };
    // Sharded snapshots recover through the membership sections (which
    // also cross-checks that they partition the agents); unsharded ones
    // through the plain path. Either way the downstream checks read the
    // same quantities.
    let (valid, floor, min_step, hist_records) = if m.shards > 0 {
        match checkpoint::resume_sharded(&snap, policy_override, None) {
            Ok((_, sched)) => (
                sched.graph().validate(),
                sched.graph().history_floor(),
                sched.graph().min_step(),
                sched.graph().history_records(),
            ),
            Err(e) => {
                eprintln!("VALIDATE FAILED: sharded scheduler recovery: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match checkpoint::resume(&snap, policy_override, None) {
            Ok((_, sched)) => (
                sched.graph().validate(),
                sched.graph().history_floor(),
                sched.graph().min_step(),
                sched.graph().history_records(),
            ),
            Err(e) => {
                eprintln!("VALIDATE FAILED: scheduler recovery: {e}");
                std::process::exit(1);
            }
        }
    };
    // The §3.2 validity condition is an invariant only of schedules that
    // respect the spatiotemporal rules; the ablation policies (oracle,
    // no-dependency) legitimately violate it.
    match m.policy {
        PolicyTag::Spatiotemporal | PolicyTag::GlobalSync => {
            if let Err(e) = valid {
                eprintln!("VALIDATE FAILED: {e}");
                std::process::exit(1);
            }
        }
        tag => println!("validity    : skipped ({tag:?} schedules are not bound by §3.2)"),
    }
    if m.history {
        if floor > min_step {
            eprintln!(
                "VALIDATE FAILED: history floor {floor} above min step {min_step} — \
                 a record a legal rollback could read was evicted"
            );
            std::process::exit(1);
        }
        println!("history     : {hist_records} resident records, floor {floor}");
    }
    println!("validate    : OK (store restored, scheduler recovered)");
}

fn cmd_latency(args: &[String]) {
    use aim_llm::ServerConfig;
    use aim_trace::latency;

    let out = &args[1];
    if out.starts_with('-') {
        // A forgotten <out.lat> would otherwise silently create a file
        // named after the next flag.
        usage();
    }
    let trace = load(&args[0]);
    let mut gpus = 1u32;
    let mut preset_name = "l4".to_string();
    let mut priority = true;
    let mut step_us = 1_000_000u64;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--gpus" => {
                gpus = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--step-us" => {
                step_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--preset" => preset_name = it.next().cloned().unwrap_or_else(|| usage()),
            "--no-priority" => priority = false,
            _ => usage(),
        }
    }
    let preset = parse_preset(&preset_name);
    let replicas = preset.replicas_for_gpus(gpus);
    let cfg = ServerConfig::from_preset(preset, replicas, priority);
    let profile = latency::mine(&trace, cfg, step_us);
    if let Err(e) = profile.save(out) {
        eprintln!("error writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {} latency samples (mean {:.1} ms) to {out}",
        profile.len(),
        profile.mean_us() / 1e3
    );
}

fn cmd_replay(args: &[String]) {
    use aim_core::exec::sim::{run_sim, SimConfig};
    use aim_core::policy::DependencyPolicy;
    use aim_core::prelude::*;
    use aim_core::spec::{run_spec_sim, SpecParams, SpecScheduler};
    use aim_core::workload::Workload;
    use aim_llm::{ServerConfig, SimServer};
    use aim_store::Db;
    use std::sync::Arc;

    let trace = load(&args[0]);
    let mut mode = "metropolis".to_string();
    let mut gpus = 1u32;
    let mut preset_name = "l4".to_string();
    let mut priority = true;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => mode = it.next().cloned().unwrap_or_else(|| usage()),
            "--gpus" => {
                gpus = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--preset" => preset_name = it.next().cloned().unwrap_or_else(|| usage()),
            "--no-priority" => priority = false,
            _ => usage(),
        }
    }
    let preset = parse_preset(&preset_name);
    let meta = trace.meta();
    let space = Arc::new(GridSpace::new(meta.map_width, meta.map_height));
    let params = RuleParams::new(meta.radius_p, meta.max_vel);
    let initial: Vec<Point> = (0..meta.num_agents)
        .map(|a| trace.initial_position(a))
        .collect();
    let replicas = preset.replicas_for_gpus(gpus);
    let server_cfg = ServerConfig::from_preset(preset, replicas, priority);
    let target = Workload::target_step(&trace);
    let single_thread = mode == "single-thread";
    let sim = SimConfig {
        serial_agents: single_thread,
        max_concurrent_clusters: if single_thread { Some(1) } else { Some(48) },
        priority_ready_queue: priority,
        ..SimConfig::default()
    };

    let report = if let Some(budget) = mode.strip_prefix("spec:") {
        let budget: u32 = budget.parse().unwrap_or_else(|_| usage());
        let mut sched = SpecScheduler::new(
            space,
            params,
            SpecParams::new(budget),
            Arc::new(Db::new()),
            &initial,
            target,
        )
        .expect("scheduler");
        let mut server = SimServer::new(server_cfg);
        run_spec_sim(&mut sched, &trace, &mut server, &sim).expect("replay")
    } else {
        let policy = match mode.as_str() {
            "single-thread" | "parallel-sync" => DependencyPolicy::GlobalSync,
            "metropolis" => DependencyPolicy::Spatiotemporal,
            "oracle" => DependencyPolicy::Oracle(Arc::new(aim_trace::oracle::mine(&trace))),
            "no-dependency" => DependencyPolicy::NoDependency,
            _ => usage(),
        };
        let mut sched =
            Scheduler::new(space, params, policy, Arc::new(Db::new()), &initial, target)
                .expect("scheduler");
        let mut server = SimServer::new(server_cfg);
        let mut r = run_sim(&mut sched, &trace, &mut server, &sim).expect("replay");
        r.mode = mode.clone();
        r
    };

    println!("mode             : {}", report.mode);
    println!("deployment       : {gpus} GPU(s), {replicas} replica(s) of {preset_name}");
    println!("completion time  : {:.1}s", report.makespan.as_secs_f64());
    println!("llm calls issued : {}", report.total_calls);
    println!(
        "tokens           : {} in / {} out",
        report.total_input_tokens, report.total_output_tokens
    );
    println!("parallelism      : {:.2}", report.achieved_parallelism);
    println!("gpu utilization  : {:.1}%", report.gpu_utilization * 100.0);
    println!("max step skew    : {}", report.sched.max_step_skew);
    if let Some(sr) = &report.spec {
        println!(
            "speculation      : {} run-ahead, {} squashed, {} poisoned, {:.2}% tokens wasted",
            sr.stats.emitted_spec,
            sr.stats.squashed_steps,
            sr.stats.poisoned_clusters,
            100.0 * sr.waste_fraction(report.total_input_tokens, report.total_output_tokens)
        );
    }
}

fn cmd_gen(args: &[String]) {
    let Some(out) = args.first() else { usage() };
    let mut cfg = gen::GenConfig {
        villes: 1,
        agents_per_ville: 25,
        seed: 42,
        window_start: gen::hour(12),
        window_len: gen::hour(1),
    };
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let val = || -> u64 {
            it.clone()
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--villes" => cfg.villes = val() as u32,
            "--agents" => cfg.agents_per_ville = val() as u32,
            "--seed" => cfg.seed = val(),
            "--start-hour" => cfg.window_start = gen::hour(val() as u32),
            "--hours" => cfg.window_len = gen::hour(val() as u32),
            _ => usage(),
        }
        it.next();
    }
    eprintln!(
        "generating {} agents, steps {}..{} (seed {})…",
        cfg.num_agents(),
        cfg.window_start,
        cfg.window_start + cfg.window_len,
        cfg.seed
    );
    let t = gen::generate(&cfg);
    if let Err(e) = codec::save(&t, out) {
        eprintln!("error writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {} calls to {out}", t.calls().len());
}

fn cmd_info(t: &Trace) {
    let m = t.meta();
    println!("name        : {}", m.name);
    println!("agents      : {}", m.num_agents);
    println!(
        "steps       : {} (absolute {}..{})",
        m.num_steps,
        m.start_step,
        m.start_step + m.num_steps
    );
    println!("map         : {}x{}", m.map_width, m.map_height);
    println!(
        "rules       : radius_p={} max_vel={}",
        m.radius_p, m.max_vel
    );
    println!("seed        : {}", m.seed);
    println!("llm calls   : {}", t.calls().len());
}

fn cmd_stats(t: &Trace) {
    let s = stats::compute(t);
    println!("total calls      : {}", s.total_calls);
    println!("mean input toks  : {:.1}", s.mean_input_tokens);
    println!("mean output toks : {:.1}", s.mean_output_tokens);
    println!("mean chain len   : {:.2}", s.mean_chain_len);
    println!("agent CV         : {:.2}", s.agent_cv);
    println!("avg deps/agent   : {:.2} (incl. self)", s.avg_dependencies);
    println!("by kind:");
    for (kind, count, frac) in stats::kind_mix(&s) {
        if count > 0 {
            println!("  {kind:<10} {count:>8}  ({:.1}%)", frac * 100.0);
        }
    }
}

fn cmd_hourly(t: &Trace) {
    let s = stats::compute(t);
    print!("{}", stats::render_hourly(&s, 50));
}

fn cmd_window(args: &[String]) {
    let t = load(&args[0]);
    let (Ok(from), Ok(len)) = (args[1].parse::<u32>(), args[2].parse::<u32>()) else {
        usage()
    };
    if from + len > t.meta().num_steps || len == 0 {
        eprintln!(
            "window {from}+{len} out of range (trace has {} steps)",
            t.meta().num_steps
        );
        std::process::exit(1);
    }
    let w = t.window(from, len, format!("{}[{from}+{len}]", t.meta().name));
    if let Err(e) = codec::save(&w, &args[3]) {
        eprintln!("error writing {}: {e}", args[3]);
        std::process::exit(1);
    }
    eprintln!("wrote {} calls to {}", w.calls().len(), args[3]);
}
