//! Telemetry export: the `.telemetry` file format, Chrome/Perfetto
//! `trace.json`, and span JSONL.
//!
//! [`aim_core::telemetry::RunTelemetry`] is the in-memory unified report;
//! this module moves it across process boundaries:
//!
//! * [`save`]/[`load`] — the `AIMTEL v1` line-oriented file format, same
//!   philosophy as [`crate::codec`]: inspectable with a pager, parseable
//!   without external dependencies, exact round-trip of spans, counters,
//!   and scheduler stats. (Live-only fields — fleet and server metric
//!   structs — are not persisted; everything derived from spans, including
//!   the decomposition and per-phase histograms, is recomputed on load.)
//! * [`write_chrome_trace`] — Perfetto/`chrome://tracing` complete events
//!   (`"ph":"X"`, µs timestamps), one trace row per telemetry track:
//!   track 0 is the shared cross-thread buffer (controller, scheduler,
//!   backend, fleet), tracks 1.. are worker threads.
//! * [`write_jsonl`] — one flat JSON object per span, for ad-hoc
//!   `jq`-style analysis.
//! * [`validate_chrome_trace`] — a minimal JSON parser (no serde_json in
//!   the workspace) that checks an exported `trace.json` is well-formed
//!   and shaped like a trace-event file; CI runs this on the `repro`
//!   telemetry arm.

use std::io::{BufRead, Write};

use aim_core::telemetry::{
    BlockReason, BoundaryOp, Counter, MetricsSnapshot, RunTelemetry, Span, SpanKind, WorkerTrack,
};
use aim_llm::{AttemptOutcome, CallKind};

use crate::TraceError;

const MAGIC: &str = "AIMTEL v1";

/// Serializes `rt` to `w` in the `AIMTEL v1` format.
///
/// ```text
/// AIMTEL v1
/// M wall_us=<u64> agents=<u32> dropped=<u64> critical_us=<u64|none>
/// K <counter-name> <u64>
/// D <clusters_emitted> <agent_steps> <watcher_wakes> <blocked_evals> <max_step_skew> <max_cluster_size>
/// W <track> <dropped> <name…>
/// S <track> <start_us> <end_us> <kind> <kind-fields…>
/// ```
///
/// `W` records name the per-worker tracks of a merged distributed run
/// and carry each worker's span-buffer overflow count (the name runs to
/// end of line).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_telemetry(rt: &RunTelemetry, w: &mut impl Write) -> Result<(), TraceError> {
    writeln!(w, "{MAGIC}")?;
    write!(
        w,
        "M wall_us={} agents={} dropped={} critical_us=",
        rt.wall_us, rt.agents, rt.dropped
    )?;
    match rt.critical_path_us {
        Some(us) => writeln!(w, "{us}")?,
        None => writeln!(w, "none")?,
    }
    for (c, n) in &rt.counters {
        writeln!(w, "K {} {n}", c.as_str())?;
    }
    let d = &rt.sched;
    writeln!(
        w,
        "D {} {} {} {} {} {}",
        d.clusters_emitted,
        d.agent_steps,
        d.watcher_wakes,
        d.blocked_evals,
        d.max_step_skew,
        d.max_cluster_size
    )?;
    for t in &rt.worker_tracks {
        writeln!(w, "W {} {} {}", t.track, t.dropped, t.name)?;
    }
    for s in &rt.spans {
        write!(w, "S {} {} {} ", s.track, s.start_us, s.end_us)?;
        match s.kind {
            SpanKind::Cluster {
                cluster,
                step,
                members,
            } => writeln!(w, "cluster {cluster} {step} {members}")?,
            SpanKind::LlmCall {
                agent,
                step,
                request,
                kind,
            } => writeln!(w, "llm {agent} {step} {request} {}", kind.as_str())?,
            SpanKind::Commit {
                cluster,
                step,
                members,
            } => writeln!(w, "commit {cluster} {step} {members}")?,
            SpanKind::Blocked {
                agent,
                blocker,
                step,
                reason,
            } => writeln!(w, "blocked {agent} {blocker} {step} {}", reason.as_str())?,
            SpanKind::Relink { agents, workers } => writeln!(w, "relink {agents} {workers}")?,
            SpanKind::Migrate { agents, crossings } => {
                writeln!(w, "migrate {agents} {crossings}")?;
            }
            SpanKind::Checkpoint { step } => writeln!(w, "checkpoint {step}")?,
            SpanKind::FleetAttempt {
                request,
                replica,
                hedge,
                outcome,
            } => writeln!(
                w,
                "attempt {request} {replica} {} {}",
                u8::from(hedge),
                outcome.as_str()
            )?,
            SpanKind::Control { cluster, members } => {
                writeln!(w, "control {cluster} {members}")?;
            }
            SpanKind::Boundary {
                worker,
                op,
                messages,
            } => writeln!(w, "boundary {worker} {} {messages}", op.as_str())?,
        }
    }
    Ok(())
}

fn parse_err(line_no: usize, msg: impl std::fmt::Display) -> TraceError {
    TraceError::Parse(format!("line {line_no}: {msg}"))
}

fn next_u64_from<'a>(
    f: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    what: &str,
) -> Result<u64, TraceError> {
    f.next()
        .ok_or_else(|| parse_err(line_no, format!("missing {what}")))?
        .parse::<u64>()
        .map_err(|e| parse_err(line_no, format!("bad {what}: {e}")))
}

fn outcome_from_str(s: &str) -> Option<AttemptOutcome> {
    match s {
        "served" => Some(AttemptOutcome::Served),
        "failed" => Some(AttemptOutcome::Failed),
        "refused" => Some(AttemptOutcome::Refused),
        _ => None,
    }
}

fn reason_from_str(s: &str) -> Option<BlockReason> {
    match s {
        "dependency" => Some(BlockReason::Dependency),
        "barrier" => Some(BlockReason::Barrier),
        _ => None,
    }
}

/// Deserializes a report written by [`write_telemetry`].
///
/// The decomposition, per-phase histograms, and span ordering are
/// recomputed through [`RunTelemetry::from_spans`], so a loaded report
/// answers the same queries as the live one (minus fleet/server structs).
///
/// # Errors
///
/// Returns [`TraceError::Parse`] on any malformed line and
/// [`TraceError::Io`] on read failures.
pub fn read_telemetry(r: &mut impl BufRead) -> Result<RunTelemetry, TraceError> {
    let mut lines = r.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    if first?.trim() != MAGIC {
        return Err(parse_err(1, "bad magic (expected AIMTEL v1)"));
    }
    let mut wall_us = 0u64;
    let mut agents = 0u32;
    let mut dropped = 0u64;
    let mut critical: Option<u64> = None;
    let mut seen_meta = false;
    let mut counters: Vec<(Counter, u64)> = Vec::new();
    let mut sched = aim_core::scheduler::SchedStats::default();
    let mut worker_tracks: Vec<WorkerTrack> = Vec::new();
    let mut spans: Vec<Span> = Vec::new();

    for (no, line) in lines {
        let no = no + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_ascii_whitespace();
        let tag = f.next().expect("nonempty line has a tag");
        match tag {
            "M" => {
                seen_meta = true;
                for kv in line[2..].split_ascii_whitespace() {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| parse_err(no, format!("bad meta field {kv}")))?;
                    let parse = |v: &str| -> Result<u64, TraceError> {
                        v.parse()
                            .map_err(|e| parse_err(no, format!("bad meta field {k}: {e}")))
                    };
                    match k {
                        "wall_us" => wall_us = parse(v)?,
                        "agents" => agents = parse(v)? as u32,
                        "dropped" => dropped = parse(v)?,
                        "critical_us" => {
                            critical = if v == "none" { None } else { Some(parse(v)?) };
                        }
                        other => return Err(parse_err(no, format!("unknown meta field {other}"))),
                    }
                }
            }
            "K" => {
                let name = f.next().ok_or_else(|| parse_err(no, "missing counter"))?;
                let c = Counter::from_str(name)
                    .ok_or_else(|| parse_err(no, format!("unknown counter {name}")))?;
                let n = next_u64_from(&mut f, no, "counter value")?;
                counters.push((c, n));
            }
            "D" => {
                sched.clusters_emitted = next_u64_from(&mut f, no, "clusters_emitted")?;
                sched.agent_steps = next_u64_from(&mut f, no, "agent_steps")?;
                sched.watcher_wakes = next_u64_from(&mut f, no, "watcher_wakes")?;
                sched.blocked_evals = next_u64_from(&mut f, no, "blocked_evals")?;
                sched.max_step_skew = next_u64_from(&mut f, no, "max_step_skew")? as u32;
                sched.max_cluster_size = next_u64_from(&mut f, no, "max_cluster_size")? as u32;
            }
            "W" => {
                // The track name runs to end of line (it may contain
                // spaces), so split the fixed fields off by hand.
                let mut parts = line.splitn(4, ' ');
                parts.next(); // "W"
                let track = parts
                    .next()
                    .ok_or_else(|| parse_err(no, "missing track"))?
                    .parse::<u32>()
                    .map_err(|e| parse_err(no, format!("bad track: {e}")))?;
                let dropped = parts
                    .next()
                    .ok_or_else(|| parse_err(no, "missing dropped"))?
                    .parse::<u64>()
                    .map_err(|e| parse_err(no, format!("bad dropped: {e}")))?;
                let name = parts
                    .next()
                    .ok_or_else(|| parse_err(no, "missing track name"))?
                    .to_string();
                worker_tracks.push(WorkerTrack {
                    track,
                    name,
                    dropped,
                });
            }
            "S" => {
                let track = next_u64_from(&mut f, no, "track")? as u32;
                let start_us = next_u64_from(&mut f, no, "start_us")?;
                let end_us = next_u64_from(&mut f, no, "end_us")?;
                if end_us < start_us {
                    return Err(parse_err(no, "span ends before it starts"));
                }
                let kind_s = f.next().ok_or_else(|| parse_err(no, "missing span kind"))?;
                let kind = match kind_s {
                    "cluster" => SpanKind::Cluster {
                        cluster: next_u64_from(&mut f, no, "cluster")?,
                        step: next_u64_from(&mut f, no, "step")? as u32,
                        members: next_u64_from(&mut f, no, "members")? as u32,
                    },
                    "llm" => {
                        let agent = next_u64_from(&mut f, no, "agent")? as u32;
                        let step = next_u64_from(&mut f, no, "step")? as u32;
                        let request = next_u64_from(&mut f, no, "request")?;
                        let k = f.next().ok_or_else(|| parse_err(no, "missing call kind"))?;
                        SpanKind::LlmCall {
                            agent,
                            step,
                            request,
                            kind: CallKind::from_str_opt(k)
                                .ok_or_else(|| parse_err(no, format!("unknown call kind {k}")))?,
                        }
                    }
                    "commit" => SpanKind::Commit {
                        cluster: next_u64_from(&mut f, no, "cluster")?,
                        step: next_u64_from(&mut f, no, "step")? as u32,
                        members: next_u64_from(&mut f, no, "members")? as u32,
                    },
                    "blocked" => {
                        let agent = next_u64_from(&mut f, no, "agent")? as u32;
                        let blocker = next_u64_from(&mut f, no, "blocker")? as u32;
                        let step = next_u64_from(&mut f, no, "step")? as u32;
                        let r = f.next().ok_or_else(|| parse_err(no, "missing reason"))?;
                        SpanKind::Blocked {
                            agent,
                            blocker,
                            step,
                            reason: reason_from_str(r)
                                .ok_or_else(|| parse_err(no, format!("unknown reason {r}")))?,
                        }
                    }
                    "relink" => SpanKind::Relink {
                        agents: next_u64_from(&mut f, no, "agents")? as u32,
                        workers: next_u64_from(&mut f, no, "workers")? as u32,
                    },
                    "migrate" => SpanKind::Migrate {
                        agents: next_u64_from(&mut f, no, "agents")? as u32,
                        crossings: next_u64_from(&mut f, no, "crossings")? as u32,
                    },
                    "checkpoint" => SpanKind::Checkpoint {
                        step: next_u64_from(&mut f, no, "step")? as u32,
                    },
                    "attempt" => {
                        let request = next_u64_from(&mut f, no, "request")?;
                        let replica = next_u64_from(&mut f, no, "replica")? as u32;
                        let hedge = next_u64_from(&mut f, no, "hedge")? != 0;
                        let o = f.next().ok_or_else(|| parse_err(no, "missing outcome"))?;
                        SpanKind::FleetAttempt {
                            request,
                            replica,
                            hedge,
                            outcome: outcome_from_str(o)
                                .ok_or_else(|| parse_err(no, format!("unknown outcome {o}")))?,
                        }
                    }
                    "control" => SpanKind::Control {
                        cluster: next_u64_from(&mut f, no, "cluster")?,
                        members: next_u64_from(&mut f, no, "members")? as u32,
                    },
                    "boundary" => {
                        let worker = next_u64_from(&mut f, no, "worker")? as u32;
                        let o = f
                            .next()
                            .ok_or_else(|| parse_err(no, "missing boundary op"))?;
                        let op = BoundaryOp::from_str(o)
                            .ok_or_else(|| parse_err(no, format!("unknown boundary op {o}")))?;
                        SpanKind::Boundary {
                            worker,
                            op,
                            messages: next_u64_from(&mut f, no, "messages")? as u32,
                        }
                    }
                    other => return Err(parse_err(no, format!("unknown span kind {other}"))),
                };
                spans.push(Span {
                    start_us,
                    end_us,
                    track,
                    kind,
                });
            }
            other => return Err(parse_err(no, format!("unknown record tag {other}"))),
        }
    }
    if !seen_meta {
        return Err(TraceError::Parse("missing M meta line".to_string()));
    }
    let mut rt = RunTelemetry::from_spans(spans, wall_us, agents, dropped, counters, sched, None);
    if let Some(us) = critical {
        rt.set_critical_path(us);
    }
    rt.set_worker_tracks(worker_tracks);
    Ok(rt)
}

/// Writes `rt` to a `.telemetry` file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save(rt: &RunTelemetry, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_telemetry(rt, &mut w)
}

/// Reads a `.telemetry` file written by [`save`].
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<RunTelemetry, TraceError> {
    let file = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(file);
    read_telemetry(&mut r)
}

/// Escapes `s` for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters; the result is safe to embed
/// between double quotes). Used by every JSON exporter here and by the
/// live `/status` endpoint in `aim-serve`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-facing event name and `args` payload for one span.
fn span_name_args(kind: &SpanKind) -> (String, String) {
    match *kind {
        SpanKind::Cluster {
            cluster,
            step,
            members,
        } => (
            format!("cluster {cluster} @{step}"),
            format!("{{\"cluster\":{cluster},\"step\":{step},\"members\":{members}}}"),
        ),
        SpanKind::LlmCall {
            agent,
            step,
            request,
            kind,
        } => (
            format!("llm {} a{agent}", kind.as_str()),
            format!(
                "{{\"agent\":{agent},\"step\":{step},\"request\":{request},\"call\":\"{}\"}}",
                kind.as_str()
            ),
        ),
        SpanKind::Commit {
            cluster,
            step,
            members,
        } => (
            format!("commit {cluster} @{step}"),
            format!("{{\"cluster\":{cluster},\"step\":{step},\"members\":{members}}}"),
        ),
        SpanKind::Blocked {
            agent,
            blocker,
            step,
            reason,
        } => (
            format!("a{agent} blocked on a{blocker}"),
            format!(
                "{{\"agent\":{agent},\"blocker\":{blocker},\"step\":{step},\"reason\":\"{}\"}}",
                reason.as_str()
            ),
        ),
        SpanKind::Relink { agents, workers } => (
            format!("relink ×{agents}"),
            format!("{{\"agents\":{agents},\"workers\":{workers}}}"),
        ),
        SpanKind::Migrate { agents, crossings } => (
            format!("migrate ×{agents}"),
            format!("{{\"agents\":{agents},\"crossings\":{crossings}}}"),
        ),
        SpanKind::Checkpoint { step } => (
            format!("checkpoint @{step}"),
            format!("{{\"step\":{step}}}"),
        ),
        SpanKind::FleetAttempt {
            request,
            replica,
            hedge,
            outcome,
        } => (
            format!("attempt r{replica} req{request}"),
            format!(
                "{{\"request\":{request},\"replica\":{replica},\"hedge\":{hedge},\"outcome\":\"{}\"}}",
                outcome.as_str()
            ),
        ),
        SpanKind::Control { cluster, members } => (
            format!("control {cluster}"),
            format!("{{\"cluster\":{cluster},\"members\":{members}}}"),
        ),
        SpanKind::Boundary {
            worker,
            op,
            messages,
        } => (
            format!("boundary {} w{worker}", op.as_str()),
            format!(
                "{{\"worker\":{worker},\"op\":\"{}\",\"messages\":{messages}}}",
                op.as_str()
            ),
        ),
    }
}

/// Writes `rt` as a Chrome trace-event file (Perfetto,
/// `chrome://tracing`, and Speedscope all load it).
///
/// Every span becomes a complete event (`"ph":"X"`) with µs `ts`/`dur`;
/// `tid` is the telemetry track (0 = shared cross-thread buffer, 1.. =
/// workers), labeled via metadata events. The phase name goes in `cat`,
/// so Perfetto can filter by phase.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace(rt: &RunTelemetry, w: &mut impl Write) -> Result<(), TraceError> {
    writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut tracks: std::collections::BTreeSet<u32> = rt.spans.iter().map(|s| s.track).collect();
    // Registered worker tracks get a name row even if they shipped no
    // spans this run (their drop count may still be the story).
    tracks.extend(rt.worker_tracks.iter().map(|t| t.track));
    let mut first = true;
    let mut sep = |w: &mut dyn Write| -> std::io::Result<()> {
        if first {
            first = false;
            Ok(())
        } else {
            writeln!(w, ",")
        }
    };
    for t in tracks {
        let name = match rt.track_name(t) {
            Some(n) => n.to_string(),
            None if t == 0 => "shared (controller/backend/fleet)".to_string(),
            None => format!("worker {t}"),
        };
        sep(w)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&name)
        )?;
    }
    for s in &rt.spans {
        let (name, args) = span_name_args(&s.kind);
        sep(w)?;
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{},\"args\":{args}}}",
            json_escape(&name),
            s.kind.phase().as_str(),
            s.start_us,
            s.end_us.saturating_sub(s.start_us),
            s.track,
        )?;
    }
    writeln!(w, "\n]}}")?;
    Ok(())
}

/// Writes one flat JSON object per span (JSONL) — `track`, `start_us`,
/// `end_us`, `phase`, plus the kind payload of [`write_chrome_trace`].
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl(rt: &RunTelemetry, w: &mut impl Write) -> Result<(), TraceError> {
    for s in &rt.spans {
        let (_, args) = span_name_args(&s.kind);
        writeln!(
            w,
            "{{\"track\":{},\"start_us\":{},\"end_us\":{},\"phase\":\"{}\",\"args\":{args}}}",
            s.track,
            s.start_us,
            s.end_us,
            s.kind.phase().as_str(),
        )?;
    }
    Ok(())
}

/// Renders a live [`MetricsSnapshot`] in the Prometheus text exposition
/// format (version 0.0.4): one `# TYPE` line per series, counters
/// suffixed `_total`. The snapshot is sampled without quiescing, so the
/// values are monotone but may lag each other by a few microseconds —
/// fine for a heartbeat, not for invariant checks.
#[must_use]
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut series = |name: &str, kind: &str, value: u64| {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    };
    series("aim_uptime_microseconds", "gauge", snap.at_us);
    series("aim_spans_total", "counter", snap.spans);
    series("aim_spans_dropped_total", "counter", snap.dropped);
    series("aim_span_buffers", "gauge", u64::from(snap.buffers));
    for &(c, n) in &snap.counters {
        let name = format!("aim_{}_total", c.as_str());
        series(&name, "counter", n);
    }
    out
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote, and line feed must be escaped (`\\`, `\"`,
/// `\n`); everything else passes through verbatim.
#[must_use]
pub fn prometheus_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders one labeled Prometheus sample line,
/// `name{key="value",...} value`, escaping every label value with
/// [`prometheus_escape_label`]. Label *names* are the caller's static
/// identifiers and are not escaped.
#[must_use]
pub fn prometheus_sample(name: &str, labels: &[(&str, &str)], value: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", prometheus_escape_label(v));
        }
        out.push('}');
    }
    let _ = write!(out, " {value}");
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Minimal JSON validation (the workspace has no serde_json).
// ---------------------------------------------------------------------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json offset {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    /// Parses one JSON value, returning how many values it contained
    /// (itself plus descendants); object keys are validated as strings.
    fn value(&mut self) -> Result<u64, String> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut n = 1;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(n);
                }
                loop {
                    self.string()?;
                    self.expect(b':')?;
                    n += self.value()?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(n);
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut n = 1;
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(n);
                }
                loop {
                    n += self.value()?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(n);
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => {
                self.string()?;
                Ok(1)
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => {
                self.number()?;
                Ok(1)
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<u64, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(1)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 2; // escape + escaped byte
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            Err(self.err("expected a number"))
        } else {
            Ok(())
        }
    }
}

/// Validates that `text` is one complete well-formed JSON value with no
/// trailing data (the workspace has no serde_json; this is the same
/// hand-rolled parser behind [`validate_chrome_trace`]). Used by the
/// `aim-serve` tests to prove the `/status` payload parses.
///
/// # Errors
///
/// Returns a description with byte offset of the first problem.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut p = JsonParser::new(text);
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(())
}

/// Validates that `text` is well-formed JSON shaped like a Chrome
/// trace-event file: a top-level object with a `"traceEvents"` array whose
/// complete events carry `ts`/`dur`/`pid`/`tid`. Returns the event count.
///
/// # Errors
///
/// Returns a description with byte offset of the first problem.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let mut p = JsonParser::new(text);
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    if !text.contains("\"traceEvents\"") {
        return Err("no \"traceEvents\" key".to_string());
    }
    // Count complete events and spot-check their required keys with a
    // cheap scan (structure already proven well-formed above).
    let mut events = 0usize;
    for chunk in text.split("\"ph\":\"X\"").skip(1) {
        events += 1;
        let head = &chunk[..chunk.len().min(160)];
        for key in ["\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":"] {
            if !head.contains(key) {
                return Err(format!("complete event #{events} missing {key}"));
            }
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_core::scheduler::SchedStats;

    fn sample() -> RunTelemetry {
        let spans = vec![
            Span {
                start_us: 0,
                end_us: 50,
                track: 1,
                kind: SpanKind::Cluster {
                    cluster: 7,
                    step: 2,
                    members: 3,
                },
            },
            Span {
                start_us: 5,
                end_us: 25,
                track: 1,
                kind: SpanKind::LlmCall {
                    agent: 4,
                    step: 2,
                    request: 99,
                    kind: CallKind::Plan,
                },
            },
            Span {
                start_us: 25,
                end_us: 40,
                track: 1,
                kind: SpanKind::Blocked {
                    agent: 4,
                    blocker: 5,
                    step: 2,
                    reason: BlockReason::Barrier,
                },
            },
            Span {
                start_us: 40,
                end_us: 48,
                track: 1,
                kind: SpanKind::Commit {
                    cluster: 7,
                    step: 2,
                    members: 3,
                },
            },
            Span {
                start_us: 10,
                end_us: 22,
                track: 0,
                kind: SpanKind::FleetAttempt {
                    request: 99,
                    replica: 1,
                    hedge: true,
                    outcome: AttemptOutcome::Served,
                },
            },
            Span {
                start_us: 50,
                end_us: 55,
                track: 0,
                kind: SpanKind::Control {
                    cluster: 7,
                    members: 3,
                },
            },
            Span {
                start_us: 60,
                end_us: 80,
                track: 0,
                kind: SpanKind::Checkpoint { step: 3 },
            },
            Span {
                start_us: 56,
                end_us: 59,
                track: 0,
                kind: SpanKind::Relink {
                    agents: 12,
                    workers: 2,
                },
            },
            Span {
                start_us: 55,
                end_us: 56,
                track: 0,
                kind: SpanKind::Migrate {
                    agents: 12,
                    crossings: 1,
                },
            },
            Span {
                start_us: 81,
                end_us: 90,
                track: 0,
                kind: SpanKind::Boundary {
                    worker: 3,
                    op: BoundaryOp::Wait,
                    messages: 4,
                },
            },
        ];
        let mut sched = SchedStats::default();
        sched.clusters_emitted = 1;
        sched.agent_steps = 3;
        sched.watcher_wakes = 2;
        sched.blocked_evals = 4;
        sched.max_step_skew = 1;
        sched.max_cluster_size = 3;
        let counters = vec![(Counter::LlmCalls, 1), (Counter::FleetHedges, 1)];
        let mut rt = RunTelemetry::from_spans(spans, 100, 6, 2, counters, sched, None);
        rt.set_critical_path(42);
        rt.set_worker_tracks(vec![WorkerTrack {
            track: 1,
            name: "worker 0 (remote)".to_string(),
            dropped: 2,
        }]);
        rt
    }

    #[test]
    fn telemetry_roundtrip_exact() {
        let rt = sample();
        let mut buf = Vec::new();
        write_telemetry(&rt, &mut buf).unwrap();
        let back = read_telemetry(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(rt, back);
    }

    #[test]
    fn telemetry_text_is_human_readable() {
        let rt = sample();
        let mut buf = Vec::new();
        write_telemetry(&rt, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("AIMTEL v1\n"), "{text}");
        assert!(text.contains("K llm_calls 1"), "{text}");
        assert!(text.contains("blocked 4 5 2 barrier"), "{text}");
        assert!(text.contains("attempt 99 1 1 served"), "{text}");
        assert!(text.contains("boundary 3 wait 4"), "{text}");
        assert!(text.contains("W 1 2 worker 0 (remote)"), "{text}");
    }

    #[test]
    fn worker_track_names_reach_chrome_trace() {
        let rt = sample();
        let mut buf = Vec::new();
        write_chrome_trace(&rt, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("worker 0 (remote)"), "{text}");
        assert!(text.contains("shared (controller/backend/fleet)"), "{text}");
    }

    #[test]
    fn prometheus_exposition_is_typed_and_complete() {
        let snap = MetricsSnapshot {
            at_us: 1_234,
            spans: 10,
            dropped: 1,
            buffers: 3,
            counters: vec![(Counter::LlmCalls, 5), (Counter::BoundaryMessages, 7)],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE aim_spans_total counter"), "{text}");
        assert!(text.contains("aim_spans_total 10"), "{text}");
        assert!(text.contains("aim_spans_dropped_total 1"), "{text}");
        assert!(text.contains("aim_llm_calls_total 5"), "{text}");
        assert!(text.contains("aim_boundary_messages_total 7"), "{text}");
        // Every series line is `name value` and every value parses.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(!name.is_empty());
            value.parse::<u64>().expect("numeric value");
        }
    }

    #[test]
    fn hostile_label_values_are_escaped() {
        // Per the exposition format, only \, ", and newline are escaped
        // in label values; everything else passes through.
        assert_eq!(prometheus_escape_label("worker 3"), "worker 3");
        assert_eq!(
            prometheus_escape_label("worker \"3\" (remote)"),
            "worker \\\"3\\\" (remote)"
        );
        assert_eq!(prometheus_escape_label("a\\b"), "a\\\\b");
        assert_eq!(prometheus_escape_label("line\nbreak"), "line\\nbreak");
        let line = prometheus_sample(
            "aim_worker_spans_dropped_total",
            &[("worker", "evil\"name\\with\nnewline")],
            7,
        );
        assert_eq!(
            line,
            "aim_worker_spans_dropped_total{worker=\"evil\\\"name\\\\with\\nnewline\"} 7\n"
        );
        // The rendered line stays a single physical line: the raw
        // newline never survives into the exposition.
        assert_eq!(line.matches('\n').count(), 1);
        // No labels → no braces.
        assert_eq!(prometheus_sample("aim_up", &[], 1), "aim_up 1\n");
    }

    #[test]
    fn corrupt_lines_are_located() {
        let rt = sample();
        let mut buf = Vec::new();
        write_telemetry(&rt, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("S 0 5 3 checkpoint 1\n"); // ends before it starts
        let err = read_telemetry(&mut std::io::Cursor::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("line"), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut cur = std::io::Cursor::new(b"NOTTEL\n".to_vec());
        assert!(matches!(
            read_telemetry(&mut cur),
            Err(TraceError::Parse(_))
        ));
    }

    #[test]
    fn chrome_trace_validates_and_counts_events() {
        let rt = sample();
        let mut buf = Vec::new();
        write_chrome_trace(&rt, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let events = validate_chrome_trace(&text).expect("well-formed");
        assert_eq!(events, rt.spans.len());
    }

    #[test]
    fn chrome_trace_rejects_garbage() {
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_trace("[]").is_err(), "no traceEvents key");
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }

    #[test]
    fn jsonl_one_line_per_span() {
        let rt = sample();
        let mut buf = Vec::new();
        write_jsonl(&rt, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), rt.spans.len());
        for line in text.lines() {
            let mut p = JsonParser::new(line);
            p.value().expect("each line is one json object");
        }
    }

    #[test]
    fn file_roundtrip() {
        let rt = sample();
        let dir = std::env::temp_dir().join("aim-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.telemetry");
        save(&rt, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(rt, back);
        std::fs::remove_file(&path).ok();
    }
}
