//! The in-memory trace representation and its [`Workload`] replay impl.

use std::collections::HashMap;

use aim_core::space::Point;
use aim_core::workload::{CallSpec, Workload};
use aim_core::{AgentId, Step};
use aim_llm::CallKind;
use serde::{Deserialize, Serialize};

/// Trace header: everything needed to interpret the body and to configure
/// a matching scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable label, e.g. `"smallville-day-seed42"`.
    pub name: String,
    /// Number of agents (ids `0..num_agents`).
    pub num_agents: u32,
    /// Absolute step (since midnight of day 0) the trace starts at.
    pub start_step: u32,
    /// Number of steps covered (replay target).
    pub num_steps: u32,
    /// Map width in tiles (for reports).
    pub map_width: u32,
    /// Map height in tiles.
    pub map_height: u32,
    /// Perception radius the world was generated with.
    pub radius_p: u32,
    /// Movement/information speed limit per step.
    pub max_vel: u32,
    /// Generator seed.
    pub seed: u64,
}

/// One recorded LLM call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallEvent {
    /// Issuing agent.
    pub agent: u32,
    /// Step *relative to the trace start* (0-based).
    pub step: u32,
    /// Position within the agent's chain for that step.
    pub seq: u32,
    /// Agent function that issued the call.
    pub kind: CallKind,
    /// Prompt tokens.
    pub input_tokens: u32,
    /// Generation tokens.
    pub output_tokens: u32,
}

/// A complete recorded workload: call chains plus a dense position matrix.
///
/// Positions are stored for the trace start (`pos_matrix[0]`) and after
/// every step (`pos_matrix[s + 1]`), each row holding `num_agents` points.
/// `Trace` implements [`Workload`] so it can be handed straight to the
/// engine's executors — this is the paper's replay mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    meta: TraceMeta,
    calls: Vec<CallEvent>,
    /// `(num_steps + 1) × num_agents`, row-major by step.
    positions: Vec<Point>,
    /// `(agent, step)` → `(offset, len)` into `calls`.
    #[serde(skip)]
    index: HashMap<(u32, u32), (u32, u32)>,
}

impl Trace {
    /// The trace header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// All calls, sorted by `(step, agent, seq)`.
    pub fn calls(&self) -> &[CallEvent] {
        &self.calls
    }

    /// Position of `agent` at the start of the trace.
    pub fn initial_position(&self, agent: u32) -> Point {
        self.positions[agent as usize]
    }

    /// Position of `agent` after committing relative step `step`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` or `step` is out of range.
    pub fn position_after(&self, agent: u32, step: u32) -> Point {
        let row = (step + 1) as usize;
        assert!(
            row <= self.meta.num_steps as usize,
            "step {step} out of range"
        );
        self.positions[row * self.meta.num_agents as usize + agent as usize]
    }

    /// The call chain of `(agent, step)` (possibly empty).
    pub fn chain(&self, agent: u32, step: u32) -> &[CallEvent] {
        match self.index.get(&(agent, step)) {
            Some(&(off, len)) => &self.calls[off as usize..(off + len) as usize],
            None => &[],
        }
    }

    /// Extracts the sub-trace covering relative steps
    /// `[from, from + len)` — e.g. the paper's busy (12pm–1pm) and quiet
    /// (6am–7am) hour windows out of a full-day trace.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the trace bounds or `len` is zero.
    pub fn window(&self, from: u32, len: u32, name: impl Into<String>) -> Trace {
        assert!(len > 0, "window must be non-empty");
        assert!(
            from + len <= self.meta.num_steps,
            "window {from}+{len} out of {} steps",
            self.meta.num_steps
        );
        let meta = TraceMeta {
            name: name.into(),
            start_step: self.meta.start_step + from,
            num_steps: len,
            ..self.meta.clone()
        };
        let n = self.meta.num_agents as usize;
        let positions = self.positions[from as usize * n..(from + len + 1) as usize * n].to_vec();
        let calls: Vec<CallEvent> = self
            .calls
            .iter()
            .filter(|c| c.step >= from && c.step < from + len)
            .map(|c| CallEvent {
                step: c.step - from,
                ..*c
            })
            .collect();
        let mut t = Trace {
            meta,
            calls,
            positions,
            index: HashMap::new(),
        };
        t.rebuild_index();
        t
    }

    pub(crate) fn rebuild_index(&mut self) {
        self.index.clear();
        let mut i = 0usize;
        while i < self.calls.len() {
            let key = (self.calls[i].agent, self.calls[i].step);
            let start = i;
            while i < self.calls.len() && (self.calls[i].agent, self.calls[i].step) == key {
                i += 1;
            }
            self.index.insert(key, (start as u32, (i - start) as u32));
        }
    }

    pub(crate) fn from_parts(
        meta: TraceMeta,
        mut calls: Vec<CallEvent>,
        positions: Vec<Point>,
    ) -> Trace {
        assert_eq!(
            positions.len(),
            ((meta.num_steps + 1) * meta.num_agents) as usize,
            "position matrix size mismatch"
        );
        calls.sort_by_key(|c| (c.step, c.agent, c.seq));
        let mut t = Trace {
            meta,
            calls,
            positions,
            index: HashMap::new(),
        };
        t.rebuild_index();
        t
    }
}

impl Workload<Point> for Trace {
    fn num_agents(&self) -> usize {
        self.meta.num_agents as usize
    }

    fn target_step(&self) -> Step {
        Step(self.meta.num_steps)
    }

    fn initial_pos(&self, agent: AgentId) -> Point {
        self.initial_position(agent.0)
    }

    fn calls(&self, agent: AgentId, step: Step) -> Vec<CallSpec> {
        self.chain(agent.0, step.0)
            .iter()
            .map(|c| CallSpec::new(c.input_tokens, c.output_tokens, c.kind))
            .collect()
    }

    fn pos_after(&self, agent: AgentId, step: Step) -> Point {
        self.position_after(agent.0, step.0)
    }

    fn total_calls(&self) -> u64 {
        self.calls.len() as u64
    }
}

/// Incrementally builds a [`Trace`] (used by the generator and the codec).
#[derive(Debug)]
pub struct TraceBuilder {
    meta: TraceMeta,
    calls: Vec<CallEvent>,
    positions: Vec<Point>,
    seq_counter: HashMap<(u32, u32), u32>,
}

impl TraceBuilder {
    /// Starts a trace with the given header and initial positions.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != meta.num_agents`.
    pub fn new(meta: TraceMeta, initial: &[Point]) -> Self {
        assert_eq!(
            initial.len(),
            meta.num_agents as usize,
            "initial positions mismatch"
        );
        let mut positions = Vec::with_capacity(((meta.num_steps + 1) * meta.num_agents) as usize);
        positions.extend_from_slice(initial);
        TraceBuilder {
            meta,
            calls: Vec::new(),
            positions,
            seq_counter: HashMap::new(),
        }
    }

    /// Appends one call to `(agent, step)`'s chain (seq auto-assigned).
    pub fn push_call(&mut self, agent: u32, step: u32, kind: CallKind, input: u32, output: u32) {
        let seq = self.seq_counter.entry((agent, step)).or_insert(0);
        self.calls.push(CallEvent {
            agent,
            step,
            seq: *seq,
            kind,
            input_tokens: input,
            output_tokens: output,
        });
        *seq += 1;
    }

    /// Appends the position row for the step that just committed; rows must
    /// arrive in step order, `num_agents` points at a time.
    pub fn push_positions(&mut self, row: &[Point]) {
        assert_eq!(
            row.len(),
            self.meta.num_agents as usize,
            "position row size mismatch"
        );
        self.positions.extend_from_slice(row);
    }

    /// Finalizes the trace.
    ///
    /// # Panics
    ///
    /// Panics if the number of position rows does not match
    /// `meta.num_steps`.
    pub fn finish(self) -> Trace {
        Trace::from_parts(self.meta, self.calls, self.positions)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A tiny hand-built trace: 2 agents, 3 steps.
    pub fn tiny() -> Trace {
        let meta = TraceMeta {
            name: "tiny".into(),
            num_agents: 2,
            start_step: 100,
            num_steps: 3,
            map_width: 10,
            map_height: 10,
            radius_p: 4,
            max_vel: 1,
            seed: 1,
        };
        let mut b = TraceBuilder::new(meta, &[Point::new(0, 0), Point::new(9, 9)]);
        b.push_call(0, 0, CallKind::Plan, 100, 10);
        b.push_call(0, 0, CallKind::Perceive, 50, 5);
        b.push_call(1, 1, CallKind::Converse, 200, 20);
        b.push_positions(&[Point::new(1, 0), Point::new(9, 9)]); // after step 0
        b.push_positions(&[Point::new(2, 0), Point::new(9, 8)]); // after step 1
        b.push_positions(&[Point::new(3, 0), Point::new(9, 7)]); // after step 2
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::tiny;
    use super::*;

    #[test]
    fn builder_assigns_chain_seq() {
        let t = tiny();
        let chain = t.chain(0, 0);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].seq, 0);
        assert_eq!(chain[0].kind, CallKind::Plan);
        assert_eq!(chain[1].seq, 1);
        assert!(t.chain(0, 1).is_empty());
        assert!(t.chain(5, 0).is_empty(), "unknown agent yields empty chain");
    }

    #[test]
    fn positions_by_step() {
        let t = tiny();
        assert_eq!(t.initial_position(0), Point::new(0, 0));
        assert_eq!(t.position_after(0, 0), Point::new(1, 0));
        assert_eq!(t.position_after(1, 2), Point::new(9, 7));
    }

    #[test]
    fn workload_impl_replays() {
        let t = tiny();
        assert_eq!(Workload::num_agents(&t), 2);
        assert_eq!(Workload::target_step(&t), Step(3));
        assert_eq!(t.total_calls(), 3);
        let specs = Workload::calls(&t, AgentId(0), Step(0));
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].input_tokens, 100);
        assert_eq!(
            Workload::pos_after(&t, AgentId(1), Step(1)),
            Point::new(9, 8)
        );
    }

    #[test]
    fn window_rebases_steps_and_positions() {
        let t = tiny();
        let w = t.window(1, 2, "tiny-window");
        assert_eq!(w.meta().start_step, 101);
        assert_eq!(w.meta().num_steps, 2);
        assert_eq!(
            w.initial_position(0),
            Point::new(1, 0),
            "window starts after step 0"
        );
        let chain = w.chain(1, 0);
        assert_eq!(
            chain.len(),
            1,
            "agent 1's step-1 call lands at window step 0"
        );
        assert_eq!(chain[0].kind, CallKind::Converse);
        assert_eq!(w.position_after(0, 1), Point::new(3, 0));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn window_bounds_checked() {
        tiny().window(2, 5, "bad");
    }

    #[test]
    #[should_panic(expected = "position matrix size mismatch")]
    fn mismatched_positions_rejected() {
        let t = tiny();
        let meta = t.meta().clone();
        let _ = Trace::from_parts(meta, vec![], vec![Point::new(0, 0)]);
    }
}
