//! Mining ground-truth dependencies from finished traces (§4.2's `oracle`).
//!
//! With the whole trajectory in hand, the *real* dependencies are known:
//! two agents depend on each other around step `s` only if they actually
//! appeared in each other's observation space during `s` ("if two agents
//! appear in each other's observation space, they synchronize before and
//! after the step"). Everything else the conservative §3.2 rules enforce
//! is a false dependency the oracle removes — making it the upper bound on
//! dependency management quality. The same mining also yields the paper's
//! §2.2 statistic: each GenAgent agent depends on only ≈1.85 prior-step
//! agents (self included) versus the all-to-all 25 of global sync.

use aim_core::policy::OracleGraph;
use aim_core::space::Point;

use crate::format::Trace;

/// Positions of all agents at the *start* of relative step `s` (what they
/// observe during `s`).
fn start_positions(trace: &Trace, step: u32) -> Vec<Point> {
    (0..trace.meta().num_agents)
        .map(|a| {
            if step == 0 {
                trace.initial_position(a)
            } else {
                trace.position_after(a, step - 1)
            }
        })
        .collect()
}

/// Interaction pairs (within `radius_p`) for every step of the trace.
pub fn interaction_pairs(trace: &Trace) -> Vec<Vec<(u32, u32)>> {
    let r = trace.meta().radius_p as u64;
    let r2 = r * r;
    let mut out = Vec::with_capacity(trace.meta().num_steps as usize);
    for step in 0..trace.meta().num_steps {
        let pos = start_positions(trace, step);
        // Spatial hash so 1000-agent traces stay fast.
        use std::collections::HashMap;
        let cell = r.max(1) as i64;
        let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in pos.iter().enumerate() {
            buckets
                .entry(((p.x as i64).div_euclid(cell), (p.y as i64).div_euclid(cell)))
                .or_default()
                .push(i as u32);
        }
        let mut pairs = Vec::new();
        for (i, p) in pos.iter().enumerate() {
            let (cx, cy) = ((p.x as i64).div_euclid(cell), (p.y as i64).div_euclid(cell));
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(cand) = buckets.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in cand {
                        if j as usize > i && p.dist2(pos[j as usize]) <= r2 {
                            pairs.push((i as u32, j));
                        }
                    }
                }
            }
        }
        pairs.sort_unstable();
        out.push(pairs);
    }
    out
}

/// Mines the [`OracleGraph`] for `trace`.
///
/// # Example
///
/// ```no_run
/// use aim_trace::{gen, oracle};
///
/// let trace = gen::generate(&gen::GenConfig::full_day(42));
/// let g = oracle::mine(&trace);
/// // GenAgent's measured average is 1.85 — far below all-to-all 25.
/// assert!(g.avg_dependencies() < 5.0);
/// ```
pub fn mine(trace: &Trace) -> OracleGraph {
    OracleGraph::from_interactions(trace.meta().num_agents as usize, &interaction_pairs(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use aim_core::{AgentId, Step};
    use aim_world::clock_to_step;

    fn work_hour_trace() -> Trace {
        generate(&GenConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 11,
            window_start: clock_to_step(9, 0),
            window_len: 120,
        })
    }

    #[test]
    fn pairs_are_sorted_unique_and_in_range() {
        let t = work_hour_trace();
        let pairs = interaction_pairs(&t);
        assert_eq!(pairs.len(), 120);
        for step_pairs in &pairs {
            for w in step_pairs.windows(2) {
                assert!(w[0] < w[1], "pairs must be sorted and unique");
            }
            for &(a, b) in step_pairs {
                assert!(a < b && b < 10);
            }
        }
    }

    #[test]
    fn oracle_matches_pair_distances() {
        let t = work_hour_trace();
        let pairs = interaction_pairs(&t);
        // Every mined pair must genuinely be within radius_p at step start.
        for (step, step_pairs) in pairs.iter().enumerate() {
            for &(a, b) in step_pairs {
                let pa = if step == 0 {
                    t.initial_position(a)
                } else {
                    t.position_after(a, step as u32 - 1)
                };
                let pb = if step == 0 {
                    t.initial_position(b)
                } else {
                    t.position_after(b, step as u32 - 1)
                };
                assert!(pa.dist2(pb) <= 16, "pair ({a},{b}) at step {step} too far");
            }
        }
    }

    #[test]
    fn mined_graph_has_sane_dependency_stat() {
        let t = work_hour_trace();
        let g = mine(&t);
        let avg = g.avg_dependencies();
        // Sparse (≪ all-to-all): for 10 agents, all-to-all would be 10.
        assert!((1.0..5.0).contains(&avg), "avg deps {avg} implausible");
    }

    #[test]
    fn conversing_agents_share_components() {
        // Generate a lunch window where conversations are likely; any
        // conversation implies proximity < radius, hence same component.
        let t = generate(&GenConfig {
            villes: 1,
            agents_per_ville: 25,
            seed: 21,
            window_start: clock_to_step(12, 0),
            window_len: 120,
        });
        let g = mine(&t);
        // Find a step where a Converse call happened; issuer must share a
        // component with someone.
        let conv = t
            .calls()
            .iter()
            .find(|c| c.kind == aim_llm::CallKind::Converse);
        if let Some(c) = conv {
            let comp = g.component_of(Step(c.step), AgentId(c.agent));
            assert!(
                comp.len() >= 2,
                "a conversing agent cannot be alone: {comp:?}"
            );
        }
    }
}
