//! Mine **latency profiles** from traces: the export half of the
//! trace ↔ replay-serving loop.
//!
//! A [`aim_llm::ReplayBackend`] replays service latencies from a
//! [`LatencyProfile`]; this module produces such profiles from a workload
//! trace by replaying the trace's calls through the virtual-time
//! [`SimServer`] and recording each completion's end-to-end latency per
//! [`aim_llm::CallKind`]. `trace_tool latency` wraps [`mine`] on the
//! command line, and the resulting `.lat` file feeds straight back into a
//! fleet's replay replicas — so a heterogeneous fleet can mix simulated
//! engines with replicas that serve exactly the latency distribution a
//! reference deployment exhibited on this very workload.

use aim_llm::{LatencyProfile, LlmRequest, RequestId, ServerConfig, SimServer, VirtualTime};

use crate::format::Trace;

/// Replays `trace`'s calls through a [`SimServer`] configured by `cfg`
/// and collects per-kind completion latencies.
///
/// Calls arrive grouped by simulation step, `step_gap_us` apart — an
/// open-loop arrival process that exercises the server's queueing and
/// batching without needing a scheduler. A small gap models a saturated
/// out-of-order engine (latencies dominated by queueing), a large one an
/// idle engine (pure service latency).
///
/// # Panics
///
/// Panics if `cfg` is invalid for [`SimServer::new`].
pub fn mine(trace: &Trace, cfg: ServerConfig, step_gap_us: u64) -> LatencyProfile {
    let mut profile = LatencyProfile::new(format!(
        "{} @ {}",
        trace.meta().name.as_str(),
        cfg.name.as_str()
    ));
    let mut server = SimServer::new(cfg);
    let mut calls: Vec<_> = trace.calls().to_vec();
    calls.sort_by_key(|c| (c.step, c.agent, c.seq));
    for (i, c) in calls.iter().enumerate() {
        let at = VirtualTime::from_micros(c.step as u64 * step_gap_us);
        // Deliver completions due before this arrival.
        while let Some(t) = server.next_event() {
            if t > at {
                break;
            }
            for done in server.advance(t) {
                profile.push(done.req.kind, done.latency().as_micros());
            }
        }
        server.submit(
            at,
            LlmRequest::new(
                RequestId(i as u64),
                c.agent,
                c.step as u64,
                c.input_tokens,
                c.output_tokens,
                c.kind,
            ),
        );
    }
    for done in server.drain() {
        profile.push(done.req.kind, done.latency().as_micros());
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, GenConfig};
    use aim_llm::{presets, ReplayBackend};

    fn small_trace() -> Trace {
        gen::generate(&GenConfig {
            villes: 1,
            agents_per_ville: 8,
            seed: 11,
            window_start: gen::hour(12),
            window_len: 30,
        })
    }

    fn cfg() -> ServerConfig {
        ServerConfig::from_preset(presets::tiny_test(), 2, true)
    }

    #[test]
    fn mined_profile_covers_every_call() {
        let trace = small_trace();
        let profile = mine(&trace, cfg(), 1_000);
        assert_eq!(profile.len(), trace.calls().len(), "one sample per call");
        assert!(profile.mean_us() > 0.0, "tiny preset still takes time");
        assert!(profile.name().contains("test/tiny"));
    }

    #[test]
    fn mining_is_deterministic() {
        let trace = small_trace();
        assert_eq!(mine(&trace, cfg(), 1_000), mine(&trace, cfg(), 1_000));
    }

    #[test]
    fn tighter_arrivals_mean_more_queueing() {
        let trace = small_trace();
        let saturated = mine(&trace, cfg(), 10);
        let idle = mine(&trace, cfg(), 10_000_000);
        assert!(
            saturated.mean_us() > idle.mean_us(),
            "queueing must show up: {} vs {}",
            saturated.mean_us(),
            idle.mean_us()
        );
    }

    #[test]
    fn mined_profile_drives_a_replay_backend() {
        let trace = small_trace();
        let profile = mine(&trace, cfg(), 1_000);
        let backend = ReplayBackend::unpaced(profile.clone(), 42);
        let c = &trace.calls()[0];
        let req = LlmRequest::new(RequestId(0), c.agent, c.step as u64, 100, 5, c.kind);
        let drawn = backend.planned_latency_us(&req);
        assert!(
            profile.samples_for(c.kind).contains(&drawn),
            "replayed latency must come from the mined distribution"
        );
    }
}
