//! Critical-path analysis (§4.2's `critical` lower bound).
//!
//! The simulation's dependency DAG contains chains of LLM calls that can
//! never be parallelized: an agent's calls within a step are sequential,
//! its steps are sequential, and (under the oracle's ground truth)
//! interacting agents barrier around the step where they meet. The longest
//! chain — "the path containing the most LLM input and output tokens" —
//! bounds completion time from below **regardless of available resources**.
//!
//! Two weights are provided: token-weighted (as the paper phrases it) and
//! time-weighted under a serving [`CostModel`] (what a run can actually be
//! compared against). The DAG is processed step-by-step with dynamic
//! programming, so mining a full 8640-step day is linear in calls + pairs.

use aim_llm::{CostModel, VirtualTime};

use crate::format::Trace;
use crate::oracle;

/// The computed critical path of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct CriticalPath {
    /// Input + output tokens along the heaviest chain.
    pub tokens: u64,
    /// Unloaded service time of that chain under the given cost model
    /// (includes the per-step CPU overheads supplied by the caller).
    pub time: VirtualTime,
}

/// Computes the critical path of `trace` under `cost`.
///
/// `step_cpu_us`/`commit_cpu_us` are the per-cluster-step dispatch and
/// commit overheads the executor also charges, so the bound stays
/// comparable with measured makespans; pass 0 for the pure-LLM bound.
///
/// # Example
///
/// ```no_run
/// use aim_llm::presets;
/// use aim_trace::{critical, gen};
///
/// let t = gen::generate(&gen::GenConfig::full_day(1));
/// let p = presets::l4_llama3_8b();
/// let cp = critical::critical_path(&t, &p.cost, p.prefill_chunk, 2_000, 1_000);
/// assert!(cp.tokens > 0);
/// ```
pub fn critical_path(
    trace: &Trace,
    cost: &CostModel,
    prefill_chunk: u32,
    step_cpu_us: u64,
    commit_cpu_us: u64,
) -> CriticalPath {
    let n = trace.meta().num_agents as usize;
    let steps = trace.meta().num_steps;
    let pairs = oracle::interaction_pairs(trace);
    // dp over "completed step s" per agent; interacting agents barrier
    // around the step, so each step merges per connected component:
    // finish(c, s) = max_prev(component) + max_chain(component).
    let mut dp_time = vec![0u64; n]; // µs
    let mut dp_tokens = vec![0u64; n];
    let overhead = step_cpu_us + commit_cpu_us;
    let mut chain_t = vec![0u64; n];
    let mut chain_k = vec![0u64; n];
    for s in 0..steps {
        for a in 0..n {
            let mut t = overhead;
            let mut k = 0u64;
            for c in trace.chain(a as u32, s) {
                t += cost
                    .isolated_latency(c.input_tokens, c.output_tokens, prefill_chunk)
                    .as_micros();
                k += c.input_tokens as u64 + c.output_tokens as u64;
            }
            chain_t[a] = t;
            chain_k[a] = k;
        }
        let mut ds = aim_core::cluster::DisjointSets::new(n);
        for &(x, y) in &pairs[s as usize] {
            ds.union(x as usize, y as usize);
        }
        for comp in ds.groups() {
            let base_t = comp.iter().map(|&m| dp_time[m]).max().expect("nonempty");
            let base_k = comp.iter().map(|&m| dp_tokens[m]).max().expect("nonempty");
            let ct = comp.iter().map(|&m| chain_t[m]).max().expect("nonempty");
            let ck = comp.iter().map(|&m| chain_k[m]).max().expect("nonempty");
            for &m in &comp {
                dp_time[m] = base_t + ct;
                dp_tokens[m] = base_k + ck;
            }
        }
    }
    CriticalPath {
        tokens: dp_tokens.iter().copied().max().unwrap_or(0),
        time: VirtualTime::from_micros(dp_time.iter().copied().max().unwrap_or(0)),
    }
}

/// The `no-dependency` lower bound (§4.3): all calls issued at once; the
/// bound is total work divided by aggregate peak throughput, plus the
/// longest single call (which cannot be split).
///
/// Used as `gpu-limit = min(makespan(critical), no_dependency_bound)` in
/// the scaling figures.
pub fn no_dependency_bound(
    trace: &Trace,
    cost: &CostModel,
    prefill_chunk: u32,
    replicas: u32,
) -> VirtualTime {
    let mut total_us = 0.0f64;
    let mut longest = VirtualTime::ZERO;
    for c in trace.calls() {
        let t = cost.isolated_latency(c.input_tokens, c.output_tokens, prefill_chunk);
        longest = longest.max(t);
        // Work at full batching efficiency: prefill at peak, decode at peak.
        total_us += c.input_tokens as f64 * cost.prefill_us_per_token
            + c.output_tokens as f64 * cost.decode_us_per_seq;
    }
    let spread = VirtualTime::from_micros_f64_ceil(total_us / replicas.max(1) as f64);
    spread.max(longest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use aim_llm::presets;
    use aim_world::clock_to_step;

    fn hour_trace() -> Trace {
        generate(&GenConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 17,
            window_start: clock_to_step(9, 0),
            window_len: 90,
        })
    }

    #[test]
    fn critical_is_positive_and_below_serial_sum() {
        let t = hour_trace();
        let p = presets::tiny_test();
        let cp = critical_path(&t, &p.cost, p.prefill_chunk, 2_000, 1_000);
        assert!(cp.tokens > 0);
        // Serial sum of all chains strictly exceeds the critical path when
        // more than one agent does work.
        let serial: u64 = t
            .calls()
            .iter()
            .map(|c| {
                p.cost
                    .isolated_latency(c.input_tokens, c.output_tokens, p.prefill_chunk)
                    .as_micros()
            })
            .sum::<u64>()
            + (t.meta().num_steps as u64 * t.meta().num_agents as u64 * 3_000);
        assert!(
            cp.time.as_micros() < serial,
            "critical must beat full serialization"
        );
        // And it is at least the heaviest single agent's own serial chain.
        let agent0: u64 = (0..t.meta().num_steps)
            .flat_map(|s| t.chain(0, s))
            .map(|c| {
                p.cost
                    .isolated_latency(c.input_tokens, c.output_tokens, p.prefill_chunk)
                    .as_micros()
            })
            .sum::<u64>()
            + t.meta().num_steps as u64 * 3_000;
        assert!(cp.time.as_micros() >= agent0);
    }

    #[test]
    fn zero_overhead_reduces_bound() {
        let t = hour_trace();
        let p = presets::tiny_test();
        let with = critical_path(&t, &p.cost, p.prefill_chunk, 2_000, 1_000);
        let without = critical_path(&t, &p.cost, p.prefill_chunk, 0, 0);
        assert!(without.time < with.time);
        assert_eq!(without.tokens, with.tokens, "tokens ignore CPU overheads");
    }

    #[test]
    fn no_dependency_bound_scales_with_replicas() {
        let t = hour_trace();
        let p = presets::tiny_test();
        let b1 = no_dependency_bound(&t, &p.cost, p.prefill_chunk, 1);
        let b4 = no_dependency_bound(&t, &p.cost, p.prefill_chunk, 4);
        assert!(b4 < b1);
        assert!(b4 > VirtualTime::ZERO);
    }

    #[test]
    fn empty_trace_bounds_are_zero() {
        let t = generate(&GenConfig {
            villes: 1,
            agents_per_ville: 3,
            seed: 5,
            window_start: clock_to_step(2, 0), // everyone asleep
            window_len: 10,
        });
        assert_eq!(t.calls().len(), 0);
        let p = presets::tiny_test();
        let cp = critical_path(&t, &p.cost, p.prefill_chunk, 0, 0);
        assert_eq!(cp.tokens, 0);
        assert_eq!(
            no_dependency_bound(&t, &p.cost, p.prefill_chunk, 1),
            VirtualTime::ZERO
        );
    }
}
