//! Synthetic GenAgent-style trace generation by world self-play.
//!
//! The paper's methodology (§4.1) replays traces collected from the
//! original GenAgent implementation; we synthesize equivalent traces by
//! running the [`aim_world`] substrate in lock-step with its scripted
//! decision model and recording every call and movement. Scaling
//! experiments concatenate multiple independent villes (§4.3) — here that
//! falls out of generating one world with `villes > 1`, whose per-ville
//! populations never interact by construction (homes, jobs and friends are
//! ville-local).

use aim_world::{Village, VillageConfig, STEPS_PER_DAY};

use crate::format::{Trace, TraceBuilder, TraceMeta};

/// What part of the day to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// SmallVille copies (25 agents each).
    pub villes: u32,
    /// Agents per ville.
    pub agents_per_ville: u32,
    /// World seed (different seeds = the paper's independently collected
    /// traces).
    pub seed: u64,
    /// First step to record (absolute, 0 = midnight).
    pub window_start: u32,
    /// Steps to record.
    pub window_len: u32,
}

impl GenConfig {
    /// A full simulated day of the standard 25-agent SmallVille.
    pub fn full_day(seed: u64) -> Self {
        GenConfig {
            villes: 1,
            agents_per_ville: 25,
            seed,
            window_start: 0,
            window_len: STEPS_PER_DAY,
        }
    }

    /// The paper's busy hour: 12 pm – 1 pm.
    pub fn busy_hour(villes: u32, seed: u64) -> Self {
        GenConfig {
            villes,
            agents_per_ville: 25,
            seed,
            window_start: crate::gen::hour(12),
            window_len: crate::gen::hour(1),
        }
    }

    /// The paper's quiet hour: 6 am – 7 am.
    pub fn quiet_hour(villes: u32, seed: u64) -> Self {
        GenConfig {
            villes,
            agents_per_ville: 25,
            seed,
            window_start: crate::gen::hour(6),
            window_len: crate::gen::hour(1),
        }
    }

    /// Total agents.
    pub fn num_agents(&self) -> u32 {
        self.villes * self.agents_per_ville
    }
}

/// Steps in `h` hours.
pub fn hour(h: u32) -> u32 {
    h * aim_world::STEPS_PER_HOUR
}

/// Runs self-play and records the configured window.
///
/// The world always starts at midnight (everyone asleep, deterministic),
/// warms up silently until `window_start`, then records `window_len`
/// steps. Warm-up is cheap: sleeping agents plan nothing and trigger no
/// pathfinding.
pub fn generate(cfg: &GenConfig) -> Trace {
    let vcfg = VillageConfig {
        villes: cfg.villes,
        agents_per_ville: cfg.agents_per_ville,
        seed: cfg.seed,
    };
    let mut village = Village::generate(&vcfg);
    // Silent warm-up.
    if cfg.window_start > 0 {
        village.run_lockstep(0, cfg.window_start, |_, _, _, _| {});
    }
    let meta = TraceMeta {
        name: format!(
            "smallville-x{}-seed{}-s{}+{}",
            cfg.villes, cfg.seed, cfg.window_start, cfg.window_len
        ),
        num_agents: cfg.num_agents(),
        start_step: cfg.window_start,
        num_steps: cfg.window_len,
        map_width: village.map().width(),
        map_height: village.map().height(),
        radius_p: 4,
        max_vel: 1,
        seed: cfg.seed,
    };
    let mut builder = TraceBuilder::new(meta, &village.positions());
    let n = cfg.num_agents();
    let mut row = vec![aim_core::space::Point::new(0, 0); n as usize];
    let mut row_step = cfg.window_start;
    let mut filled = 0u32;
    village.run_lockstep(
        cfg.window_start,
        cfg.window_start + cfg.window_len,
        |step, agent, plan, new_pos| {
            debug_assert_eq!(step, row_step);
            for call in &plan.calls {
                builder.push_call(
                    agent,
                    step - cfg.window_start,
                    call.kind,
                    call.input_tokens,
                    call.output_tokens,
                );
            }
            row[agent as usize] = new_pos;
            filled += 1;
            if filled == n {
                builder.push_positions(&row);
                filled = 0;
                row_step += 1;
            }
        },
    );
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aim_core::workload::Workload;
    use aim_world::clock_to_step;

    #[test]
    fn generated_hour_is_well_formed() {
        let cfg = GenConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 3,
            window_start: clock_to_step(8, 0),
            window_len: 60,
        };
        let t = generate(&cfg);
        assert_eq!(t.meta().num_agents, 10);
        assert_eq!(t.meta().num_steps, 60);
        assert!(t.total_calls() > 0, "working hour must produce calls");
        // Movement bounded by max_vel = 1 between consecutive rows.
        for agent in 0..10 {
            let mut prev = t.initial_position(agent);
            for step in 0..60 {
                let cur = t.position_after(agent, step);
                assert!(
                    prev.manhattan(cur) <= 1,
                    "agent {agent} teleported at {step}"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig {
            villes: 1,
            agents_per_ville: 5,
            seed: 9,
            window_start: clock_to_step(7, 0),
            window_len: 30,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            generate(&GenConfig {
                villes: 1,
                agents_per_ville: 5,
                seed,
                window_start: clock_to_step(9, 0),
                window_len: 30,
            })
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn multi_ville_offsets_positions() {
        let cfg = GenConfig {
            villes: 2,
            agents_per_ville: 5,
            seed: 4,
            window_start: 0,
            window_len: 5,
        };
        let t = generate(&cfg);
        assert_eq!(t.meta().num_agents, 10);
        assert_eq!(t.meta().map_width, 200);
        // Second ville's agents start in the second copy (x >= 100).
        for agent in 5..10 {
            assert!(
                t.initial_position(agent).x >= 100,
                "ville-1 agent in ville-0 space"
            );
        }
    }
}
