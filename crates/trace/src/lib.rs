//! # aim-trace
//!
//! Workload traces for LLM multi-agent simulation.
//!
//! The AI Metropolis paper benchmarks in **replay mode** (§4.1): traces
//! collected from the original GenAgent implementation (56.7k LLM calls per
//! simulated day, mean 642.6 input / 21.9 output tokens, plus an agent
//! movement log) are replayed so that every scheduler processes identical
//! work. Those GPT-3.5 traces are not public, so this crate also *produces*
//! statistically matching traces via [`gen`] — self-play of the
//! [`aim_world`] substrate with its scripted decision model.
//!
//! * [`Trace`] — the in-memory format: per-`(agent, step)` call chains plus
//!   a dense position matrix; implements
//!   [`aim_core::workload::Workload`] so executors replay it directly.
//! * [`codec`] — a self-contained line-oriented file format (no external
//!   parser dependencies) with exact round-tripping.
//! * [`gen`] — synthetic GenAgent-style trace generation (whole days,
//!   busy/quiet hour windows, multi-ville concatenation).
//! * [`stats`] — aggregate statistics: hourly call histogram (Fig. 4c),
//!   token means, per-kind mix, imbalance.
//! * [`oracle`] — mining ground-truth dependencies from trajectories
//!   (the `oracle` baseline of §4.2) and the §2.2 "1.85 dependencies per
//!   agent" statistic.
//! * [`critical`] — token- and time-weighted critical paths (the
//!   `critical` lower bound of §4.2).
//! * [`latency`] — mining [`aim_llm::LatencyProfile`]s from traces so a
//!   [`aim_llm::ReplayBackend`] (or a whole heterogeneous fleet replica)
//!   can serve the latency distribution a reference deployment measured.
//! * [`telemetry`] — exporting [`aim_core::telemetry::RunTelemetry`]
//!   reports: the `AIMTEL v1` `.telemetry` file format, Perfetto/Chrome
//!   `trace.json`, and span JSONL (see `trace_tool timeline` / `stalls`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod critical;
mod format;
pub mod gen;
pub mod latency;
pub mod oracle;
pub mod serving;
pub mod stats;
pub mod telemetry;

pub use format::{CallEvent, Trace, TraceBuilder, TraceMeta};

/// Errors reading or writing trace files.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid trace (message explains where).
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse(msg) => write!(f, "trace parse error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
