//! Export scheduled runs as standalone **LLM-serving benchmark traces**.
//!
//! The paper's closing promise is to "release the collected traces to fill
//! a critical gap in LLM serving benchmarks, particularly given the unique
//! and complex dependency patterns among LLM calls" (§1). This module is
//! that artifact: replay a workload under any scheduling policy with the
//! timeline recorder on, and export the resulting *request arrival
//! process* — arrival time, prompt/generation lengths, priority, issuer —
//! in a simple CSV any serving engine harness can consume. The dependency
//! structure of the simulation is what shapes the arrivals, so different
//! policies yield very different serving workloads from the same agents.

use std::io::Write;

use aim_core::metrics::Timeline;

use crate::TraceError;

/// One exported serving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingRequest {
    /// Arrival time in microseconds from run start.
    pub arrival_us: u64,
    /// Issuing agent.
    pub agent: u32,
    /// Simulation step (doubles as scheduling priority; lower = urgent).
    pub step: u32,
    /// Prompt tokens.
    pub input_tokens: u32,
    /// Generation tokens (replay with ignore-eos semantics).
    pub output_tokens: u32,
}

/// Extracts the serving-request arrival process from a recorded timeline.
///
/// `spans` must come from a run with `record_timeline` enabled; arrivals
/// are the span starts, sorted ascending (ties broken by agent then step
/// for determinism). Token counts are carried per call.
pub fn requests_from_timeline(timeline: &Timeline, workload: &crate::Trace) -> Vec<ServingRequest> {
    // Walk each agent-step chain in the trace alongside the timeline's
    // spans so token counts can be recovered: the nth span of a given
    // (agent, step) corresponds to the nth chain entry.
    use std::collections::HashMap;
    let mut seen: HashMap<(u32, u32), usize> = HashMap::new();
    let mut out: Vec<ServingRequest> = timeline
        .spans
        .iter()
        .map(|span| {
            let key = (span.agent.0, span.step.0);
            let idx = seen.entry(key).or_insert(0);
            let chain = workload.chain(span.agent.0, span.step.0);
            let call = chain
                .get(*idx)
                .copied()
                .unwrap_or_else(|| panic!("timeline span without matching trace call at {key:?}"));
            *idx += 1;
            ServingRequest {
                arrival_us: span.start.as_micros(),
                agent: span.agent.0,
                step: span.step.0,
                input_tokens: call.input_tokens,
                output_tokens: call.output_tokens,
            }
        })
        .collect();
    out.sort_by_key(|r| (r.arrival_us, r.agent, r.step));
    out
}

/// Writes requests as CSV: `arrival_us,agent,step,input_tokens,output_tokens`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(requests: &[ServingRequest], w: &mut impl Write) -> Result<(), TraceError> {
    writeln!(w, "arrival_us,agent,step,input_tokens,output_tokens")?;
    for r in requests {
        writeln!(
            w,
            "{},{},{},{},{}",
            r.arrival_us, r.agent, r.step, r.input_tokens, r.output_tokens
        )?;
    }
    Ok(())
}

/// Summary statistics of an arrival process (for EXPERIMENTS-style
/// reporting): request count, duration, mean arrival rate, and burstiness
/// (peak-to-mean over 1-second windows).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ArrivalStats {
    /// Number of requests.
    pub requests: usize,
    /// Last arrival, µs.
    pub span_us: u64,
    /// Mean arrival rate, requests/second.
    pub mean_rate: f64,
    /// Peak 1-second-window rate divided by the mean rate.
    pub burstiness: f64,
}

/// Computes [`ArrivalStats`].
pub fn arrival_stats(requests: &[ServingRequest]) -> ArrivalStats {
    if requests.is_empty() {
        return ArrivalStats {
            requests: 0,
            span_us: 0,
            mean_rate: 0.0,
            burstiness: 0.0,
        };
    }
    let span_us = requests.last().map(|r| r.arrival_us).unwrap_or(0).max(1);
    let mut buckets = vec![0u64; (span_us / 1_000_000 + 1) as usize];
    for r in requests {
        buckets[(r.arrival_us / 1_000_000) as usize] += 1;
    }
    let mean_rate = requests.len() as f64 / (span_us as f64 / 1e6);
    let peak = *buckets.iter().max().expect("nonempty") as f64;
    ArrivalStats {
        requests: requests.len(),
        span_us,
        mean_rate,
        burstiness: peak / mean_rate.max(f64::MIN_POSITIVE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, GenConfig};
    use aim_core::exec::sim::{run_sim, SimConfig};
    use aim_core::prelude::*;
    use aim_core::workload::Workload;
    use aim_llm::{presets, ServerConfig, SimServer};
    use aim_store::Db;
    use std::sync::Arc;

    fn timeline_run(policy: DependencyPolicy) -> (Timeline, crate::Trace) {
        let trace = gen::generate(&GenConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 19,
            window_start: gen::hour(12),
            window_len: 40,
        });
        let meta = trace.meta();
        let initial: Vec<Point> = (0..meta.num_agents)
            .map(|a| trace.initial_position(a))
            .collect();
        let mut sched = Scheduler::new(
            Arc::new(GridSpace::new(meta.map_width, meta.map_height)),
            RuleParams::new(meta.radius_p, meta.max_vel),
            policy,
            Arc::new(Db::new()),
            &initial,
            Workload::target_step(&trace),
        )
        .unwrap();
        let mut server = SimServer::new(ServerConfig::from_preset(presets::tiny_test(), 2, true));
        let sim = SimConfig {
            record_timeline: true,
            ..SimConfig::default()
        };
        let report = run_sim(&mut sched, &trace, &mut server, &sim).unwrap();
        (report.timeline.expect("recorded"), trace)
    }

    #[test]
    fn export_covers_every_call_with_tokens() {
        let (tl, trace) = timeline_run(DependencyPolicy::Spatiotemporal);
        let reqs = requests_from_timeline(&tl, &trace);
        assert_eq!(reqs.len(), trace.calls().len());
        let exported_in: u64 = reqs.iter().map(|r| r.input_tokens as u64).sum();
        let trace_in: u64 = trace.calls().iter().map(|c| c.input_tokens as u64).sum();
        assert_eq!(exported_in, trace_in, "token mass must be preserved");
        // Arrivals sorted.
        assert!(reqs.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
    }

    #[test]
    fn policies_shape_the_arrival_process() {
        let (tl_sync, trace) = timeline_run(DependencyPolicy::GlobalSync);
        let (tl_ooo, _) = timeline_run(DependencyPolicy::Spatiotemporal);
        let sync = arrival_stats(&requests_from_timeline(&tl_sync, &trace));
        let ooo = arrival_stats(&requests_from_timeline(&tl_ooo, &trace));
        assert_eq!(sync.requests, ooo.requests, "same calls either way");
        assert!(
            ooo.span_us < sync.span_us,
            "OOO compresses the arrival span: {} vs {}",
            ooo.span_us,
            sync.span_us
        );
    }

    #[test]
    fn csv_shape() {
        let reqs = vec![
            ServingRequest {
                arrival_us: 0,
                agent: 1,
                step: 0,
                input_tokens: 10,
                output_tokens: 2,
            },
            ServingRequest {
                arrival_us: 5,
                agent: 2,
                step: 1,
                input_tokens: 20,
                output_tokens: 3,
            },
        ];
        let mut buf = Vec::new();
        write_csv(&reqs, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().nth(1).unwrap().starts_with("0,1,0,10,2"));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = arrival_stats(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_rate, 0.0);
    }
}
