//! Line-oriented trace file format.
//!
//! The format is deliberately simple enough to inspect with a pager and to
//! parse without external dependencies:
//!
//! ```text
//! AIMTRACE v1
//! M name=<str> agents=<n> start=<s> steps=<k> w=<w> h=<h> rp=<r> mv=<v> seed=<seed>
//! I <agent> <x> <y>                      # initial position, one per agent
//! C <agent> <step> <seq> <kind> <in> <out>
//! P <agent> <step> <x> <y>               # position after <step>, only when it changed
//! ```
//!
//! `P` records are sparse (stationary agents are omitted); the reader
//! reconstructs the dense matrix. Call and position lines may interleave
//! but must be grouped non-decreasing by step for streaming writers (the
//! reader tolerates any order).

use std::io::{BufRead, Write};

use aim_core::space::Point;
use aim_llm::CallKind;

use crate::format::{Trace, TraceBuilder, TraceMeta};
use crate::TraceError;

const MAGIC: &str = "AIMTRACE v1";

/// Serializes `trace` to `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace(trace: &Trace, w: &mut impl Write) -> Result<(), TraceError> {
    let m = trace.meta();
    writeln!(w, "{MAGIC}")?;
    writeln!(
        w,
        "M name={} agents={} start={} steps={} w={} h={} rp={} mv={} seed={}",
        m.name.replace(' ', "_"),
        m.num_agents,
        m.start_step,
        m.num_steps,
        m.map_width,
        m.map_height,
        m.radius_p,
        m.max_vel,
        m.seed
    )?;
    for agent in 0..m.num_agents {
        let p = trace.initial_position(agent);
        writeln!(w, "I {agent} {} {}", p.x, p.y)?;
    }
    for c in trace.calls() {
        writeln!(
            w,
            "C {} {} {} {} {} {}",
            c.agent,
            c.step,
            c.seq,
            c.kind.as_str(),
            c.input_tokens,
            c.output_tokens
        )?;
    }
    for step in 0..m.num_steps {
        for agent in 0..m.num_agents {
            let prev = if step == 0 {
                trace.initial_position(agent)
            } else {
                trace.position_after(agent, step - 1)
            };
            let cur = trace.position_after(agent, step);
            if cur != prev {
                writeln!(w, "P {agent} {step} {} {}", cur.x, cur.y)?;
            }
        }
    }
    Ok(())
}

fn parse_err(line_no: usize, msg: impl std::fmt::Display) -> TraceError {
    TraceError::Parse(format!("line {line_no}: {msg}"))
}

/// Deserializes a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceError::Parse`] on any malformed line and
/// [`TraceError::Io`] on read failures.
pub fn read_trace(r: &mut impl BufRead) -> Result<Trace, TraceError> {
    let mut lines = r.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    if first?.trim() != MAGIC {
        return Err(parse_err(1, "bad magic (expected AIMTRACE v1)"));
    }
    let (no, meta_line) = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing meta line"))?;
    let meta_line = meta_line?;
    let meta = parse_meta(no + 1, &meta_line)?;

    let n = meta.num_agents;
    let steps = meta.num_steps;
    let mut initial = vec![Point::new(0, 0); n as usize];
    let mut seen_initial = vec![false; n as usize];
    let mut calls = Vec::new();
    let mut moves: Vec<(u32, u32, Point)> = Vec::new();

    for (no, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_ascii_whitespace();
        let tag = f.next().expect("nonempty line has a tag");
        let mut next_u32 = |what: &str| -> Result<u32, TraceError> {
            f.next()
                .ok_or_else(|| parse_err(no + 1, format!("missing {what}")))?
                .parse::<u32>()
                .map_err(|e| parse_err(no + 1, format!("bad {what}: {e}")))
        };
        match tag {
            "I" => {
                let agent = next_u32("agent")?;
                let x = next_i32(&mut f, no + 1, "x")?;
                let y = next_i32(&mut f, no + 1, "y")?;
                if agent >= n {
                    return Err(parse_err(no + 1, format!("agent {agent} out of range")));
                }
                initial[agent as usize] = Point::new(x, y);
                seen_initial[agent as usize] = true;
            }
            "C" => {
                let agent = next_u32("agent")?;
                let step = next_u32("step")?;
                let _seq = next_u32("seq")?;
                let kind_s = f.next().ok_or_else(|| parse_err(no + 1, "missing kind"))?;
                let kind = CallKind::from_str_opt(kind_s)
                    .ok_or_else(|| parse_err(no + 1, format!("unknown kind {kind_s}")))?;
                let input = next_u32_from(&mut f, no + 1, "input tokens")?;
                let output = next_u32_from(&mut f, no + 1, "output tokens")?;
                if agent >= n || step >= steps {
                    return Err(parse_err(no + 1, "call out of range"));
                }
                calls.push((agent, step, kind, input, output));
            }
            "P" => {
                let agent = next_u32("agent")?;
                let step = next_u32("step")?;
                let x = next_i32(&mut f, no + 1, "x")?;
                let y = next_i32(&mut f, no + 1, "y")?;
                if agent >= n || step >= steps {
                    return Err(parse_err(no + 1, "position out of range"));
                }
                moves.push((step, agent, Point::new(x, y)));
            }
            other => return Err(parse_err(no + 1, format!("unknown record tag {other}"))),
        }
    }
    if let Some(missing) = seen_initial.iter().position(|s| !s) {
        return Err(TraceError::Parse(format!(
            "missing initial position for agent {missing}"
        )));
    }

    // Rebuild dense positions from sparse moves.
    let mut builder = TraceBuilder::new(meta, &initial);
    for (agent, step, kind, input, output) in calls {
        builder.push_call(agent, step, kind, input, output);
    }
    moves.sort_by_key(|&(step, agent, _)| (step, agent));
    let mut cur = initial;
    let mut mi = 0usize;
    for step in 0..steps {
        while mi < moves.len() && moves[mi].0 == step {
            cur[moves[mi].1 as usize] = moves[mi].2;
            mi += 1;
        }
        builder.push_positions(&cur);
    }
    Ok(builder.finish())
}

fn next_i32<'a>(
    f: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    what: &str,
) -> Result<i32, TraceError> {
    f.next()
        .ok_or_else(|| parse_err(line_no, format!("missing {what}")))?
        .parse::<i32>()
        .map_err(|e| parse_err(line_no, format!("bad {what}: {e}")))
}

fn next_u32_from<'a>(
    f: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    what: &str,
) -> Result<u32, TraceError> {
    f.next()
        .ok_or_else(|| parse_err(line_no, format!("missing {what}")))?
        .parse::<u32>()
        .map_err(|e| parse_err(line_no, format!("bad {what}: {e}")))
}

fn parse_meta(line_no: usize, line: &str) -> Result<TraceMeta, TraceError> {
    if !line.starts_with("M ") {
        return Err(parse_err(line_no, "expected meta line starting with 'M '"));
    }
    let mut name = String::new();
    let mut fields: std::collections::HashMap<&str, &str> = Default::default();
    for kv in line[2..].split_ascii_whitespace() {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| parse_err(line_no, format!("bad meta field {kv}")))?;
        if k == "name" {
            name = v.replace('_', " ");
        } else {
            fields.insert(k, v);
        }
    }
    let get = |k: &str| -> Result<u64, TraceError> {
        fields
            .get(k)
            .ok_or_else(|| parse_err(line_no, format!("missing meta field {k}")))?
            .parse::<u64>()
            .map_err(|e| parse_err(line_no, format!("bad meta field {k}: {e}")))
    };
    Ok(TraceMeta {
        name,
        num_agents: get("agents")? as u32,
        start_step: get("start")? as u32,
        num_steps: get("steps")? as u32,
        map_width: get("w")? as u32,
        map_height: get("h")? as u32,
        radius_p: get("rp")? as u32,
        max_vel: get("mv")? as u32,
        seed: get("seed")?,
    })
}

/// Writes `trace` to a file path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save(trace: &Trace, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_trace(trace, &mut w)
}

/// Reads a trace from a file path.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<Trace, TraceError> {
    let file = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(file);
    read_trace(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::testutil::tiny;

    #[test]
    fn roundtrip_exact() {
        let t = tiny();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn text_is_human_readable() {
        let t = tiny();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("AIMTRACE v1\n"));
        assert!(text.contains("C 0 0 0 plan 100 10"));
        assert!(text.contains("I 1 9 9"));
        // Stationary agent rows are omitted (agent 1 moves every step,
        // agent 0 too, so all P records exist here); at least the count is
        // bounded by steps × agents.
        assert!(text.lines().filter(|l| l.starts_with("P ")).count() <= 6);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut cur = std::io::Cursor::new(b"NOTATRACE\n".to_vec());
        assert!(matches!(read_trace(&mut cur), Err(TraceError::Parse(_))));
    }

    #[test]
    fn corrupt_lines_are_located() {
        let t = tiny();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("C 0 0 0 plan oops 10\n");
        let err = read_trace(&mut std::io::Cursor::new(text.as_bytes())).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line"), "error should cite the line: {msg}");
    }

    #[test]
    fn out_of_range_rejected() {
        let t = tiny();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("C 9 0 0 plan 10 10\n");
        assert!(matches!(
            read_trace(&mut std::io::Cursor::new(text.as_bytes())),
            Err(TraceError::Parse(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let t = tiny();
        let dir = std::env::temp_dir().join("aim-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.trc");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let t = tiny();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n# a trailing comment\n");
        let back = read_trace(&mut std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(t, back);
    }
}
