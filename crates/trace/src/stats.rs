//! Aggregate trace statistics — the numbers §4.1 reports about the
//! GenAgent workload, recomputed for any trace.

use aim_llm::CallKind;

use crate::format::Trace;
use crate::oracle;

/// Summary statistics of a trace (see [`compute`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TraceStats {
    /// Total LLM calls.
    pub total_calls: u64,
    /// Mean prompt length in tokens (paper: 642.6).
    pub mean_input_tokens: f64,
    /// Mean generation length in tokens (paper: 21.9).
    pub mean_output_tokens: f64,
    /// Calls per [`CallKind`], indexed by [`CallKind::index`].
    pub calls_per_kind: [u64; 7],
    /// Calls per simulated hour of day (24 buckets, using the trace's
    /// absolute `start_step`) — Fig. 4c.
    pub calls_per_hour: [u64; 24],
    /// Coefficient of variation of per-agent call counts (workload
    /// imbalance, §2.2).
    pub agent_cv: f64,
    /// Average prior-step dependencies per agent incl. self (paper: 1.85).
    pub avg_dependencies: f64,
    /// Mean calls per agent-step that has at least one call.
    pub mean_chain_len: f64,
}

/// Computes [`TraceStats`] for `trace`.
pub fn compute(trace: &Trace) -> TraceStats {
    let calls = trace.calls();
    let total = calls.len() as u64;
    let mut in_sum = 0u64;
    let mut out_sum = 0u64;
    let mut per_kind = [0u64; 7];
    let mut per_hour = [0u64; 24];
    let mut per_agent = vec![0u64; trace.meta().num_agents as usize];
    let mut chains = std::collections::HashMap::new();
    for c in calls {
        in_sum += c.input_tokens as u64;
        out_sum += c.output_tokens as u64;
        per_kind[c.kind.index()] += 1;
        let abs = trace.meta().start_step + c.step;
        per_hour[((abs / aim_world::STEPS_PER_HOUR) % 24) as usize] += 1;
        per_agent[c.agent as usize] += 1;
        *chains.entry((c.agent, c.step)).or_insert(0u64) += 1;
    }
    let n = total.max(1) as f64;
    let mean = per_agent.iter().sum::<u64>() as f64 / per_agent.len().max(1) as f64;
    let var = per_agent
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / per_agent.len().max(1) as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    let mean_chain_len = if chains.is_empty() {
        0.0
    } else {
        chains.values().sum::<u64>() as f64 / chains.len() as f64
    };
    TraceStats {
        total_calls: total,
        mean_input_tokens: in_sum as f64 / n,
        mean_output_tokens: out_sum as f64 / n,
        calls_per_kind: per_kind,
        calls_per_hour: per_hour,
        agent_cv: cv,
        avg_dependencies: oracle::mine(trace).avg_dependencies(),
        mean_chain_len,
    }
}

/// Renders the Fig. 4c histogram (calls per simulated hour) as an ASCII
/// bar chart.
pub fn render_hourly(stats: &TraceStats, width: usize) -> String {
    let max = *stats.calls_per_hour.iter().max().unwrap_or(&1);
    let mut out = String::new();
    for (h, &count) in stats.calls_per_hour.iter().enumerate() {
        let bar = if max == 0 {
            0
        } else {
            (count as usize * width) / max as usize
        };
        out.push_str(&format!(
            "{h:>2}:00 |{:<width$}| {count}\n",
            "#".repeat(bar)
        ));
    }
    out
}

/// Per-kind call mix as `(kind, count, fraction)` rows.
pub fn kind_mix(stats: &TraceStats) -> Vec<(CallKind, u64, f64)> {
    let total = stats.total_calls.max(1) as f64;
    CallKind::ALL
        .into_iter()
        .map(|k| {
            let c = stats.calls_per_kind[k.index()];
            (k, c, c as f64 / total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use aim_world::clock_to_step;

    #[test]
    fn stats_on_generated_window() {
        let t = generate(&GenConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 13,
            window_start: clock_to_step(10, 0),
            window_len: 180,
        });
        let s = compute(&t);
        assert_eq!(s.total_calls, t.calls().len() as u64);
        assert!(
            s.mean_input_tokens > 300.0,
            "inputs too short: {}",
            s.mean_input_tokens
        );
        assert!(s.mean_output_tokens < 80.0);
        assert!(s.mean_chain_len >= 1.0);
        // All calls fall in hours 10–12.
        let outside: u64 = s
            .calls_per_hour
            .iter()
            .enumerate()
            .filter(|(h, _)| !(10..13).contains(h))
            .map(|(_, c)| *c)
            .sum();
        assert_eq!(outside, 0);
    }

    #[test]
    fn hourly_render_shape() {
        let t = generate(&GenConfig {
            villes: 1,
            agents_per_ville: 5,
            seed: 2,
            window_start: clock_to_step(9, 0),
            window_len: 60,
        });
        let s = compute(&t);
        let art = render_hourly(&s, 30);
        assert_eq!(art.lines().count(), 24);
        assert!(art.contains(" 9:00"));
    }

    #[test]
    fn kind_mix_fractions_sum_to_one() {
        let t = generate(&GenConfig {
            villes: 1,
            agents_per_ville: 10,
            seed: 8,
            window_start: clock_to_step(11, 30),
            window_len: 120,
        });
        let s = compute(&t);
        let mix = kind_mix(&s);
        let total: f64 = mix.iter().map(|(_, _, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Perception dominates the GenAgent-style loop.
        let perceive = mix
            .iter()
            .find(|(k, _, _)| *k == CallKind::Perceive)
            .unwrap();
        assert!(
            perceive.2 > 0.2,
            "perceive fraction {:.2} too low",
            perceive.2
        );
    }
}
