//! Shared test helper: a minimal blocking HTTP GET against the status
//! server (the tests talk real TCP, not an in-process shortcut).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Issues `GET path` and returns `(status_code, body)`.
pub fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to status server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let code = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}
