//! End-to-end tests for the HTTP health plane: a healthy observed run
//! serves all three routes, and a wedged run (completed waits, no
//! commits) trips the stall watchdog via the server's own ticker —
//! `/healthz` flips to 503 and `/status` names the blocking edge.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aim_core::health::{HealthBoard, Watchdog, WorkerHealth};
use aim_core::telemetry::{BlockReason, SpanKind, Telemetry};
use aim_serve::{RunStatus, StatusServer, StatusSource};
use aim_trace::telemetry::validate_json;

mod common;
use common::get;

#[test]
fn healthy_run_serves_all_three_routes() {
    let telemetry = Arc::new(Telemetry::new());
    telemetry.record(
        telemetry.now_us(),
        SpanKind::Commit {
            cluster: 0,
            step: 3,
            members: 2,
        },
    );
    let board = Arc::new(HealthBoard::new());
    board.record_heartbeat(WorkerHealth {
        worker: 0,
        name: "worker 0".into(),
        alive: true,
        last_seen_us: board.now_us(),
        last_applied_step: Some(3),
        queue_depth: 0,
        members: 2,
        span_overflow: 0,
    });
    let source = Arc::new(
        RunStatus::new("observed run", 2)
            .with_telemetry(Arc::clone(&telemetry))
            .with_board(Arc::clone(&board))
            .with_watchdog(Arc::new(Watchdog::new(60_000_000))),
    );
    let server = StatusServer::start(0, Arc::clone(&source) as Arc<dyn StatusSource>)
        .expect("bind an ephemeral loopback port");

    let (code, body) = get(server.addr(), "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    let (code, metrics) = get(server.addr(), "/metrics");
    assert_eq!(code, 200);
    assert!(metrics.contains("aim_spans_total"), "{metrics}");
    assert!(metrics.contains("aim_stalled 0\n"), "{metrics}");
    assert!(
        metrics.contains("aim_worker_alive{worker=\"worker 0\"} 1\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("aim_worker_members{worker=\"worker 0\"} 2\n"),
        "{metrics}"
    );
    // Well-formed exposition: every non-comment line ends in a numeric
    // sample value.
    for line in metrics.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in {line:?}"
        );
    }

    let (code, status) = get(server.addr(), "/status");
    assert_eq!(code, 200);
    validate_json(&status).expect("/status is valid JSON");
    assert!(status.contains("\"label\":\"observed run\""), "{status}");
    assert!(status.contains("\"healthy\":true"), "{status}");
    assert!(status.contains("\"last_commit\":{\"us\":"), "{status}");
    assert!(status.contains("\"stall\":null"), "{status}");
    assert!(status.contains("\"worker\":0"), "{status}");
    assert!(status.contains("\"last_applied_step\":3"), "{status}");

    let (code, _) = get(server.addr(), "/nope");
    assert_eq!(code, 404);

    // Satellite check: a healthy run's watchdog never fires, no matter
    // how many ticks and scrapes have run it.
    assert!(source.stall_report().is_none());
    drop(server);
}

#[test]
fn wedged_run_flips_healthz_and_names_the_blocking_edge() {
    let telemetry = Arc::new(Telemetry::new());
    // Completed waits but no commit, ever: agent 4 waited on agent 6.
    let start = telemetry.now_us();
    telemetry.record_at(
        start,
        start + 800,
        SpanKind::Blocked {
            agent: 4,
            blocker: 6,
            step: 2,
            reason: BlockReason::Dependency,
        },
    );
    let source = Arc::new(
        RunStatus::new("wedged run", 8)
            .with_telemetry(Arc::clone(&telemetry))
            .with_watchdog(Arc::new(Watchdog::new(1_000))),
    );
    std::thread::sleep(Duration::from_millis(5));
    let server = StatusServer::start(0, Arc::clone(&source) as Arc<dyn StatusSource>)
        .expect("bind an ephemeral loopback port");

    // The server's own ticker must run the watchdog — no /status scrape
    // before the flip, only the passive health probe.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (code, _) = get(server.addr(), "/healthz");
        if code == 503 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never fired within its budget"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (code, status) = get(server.addr(), "/status");
    assert_eq!(code, 200);
    validate_json(&status).expect("/status is valid JSON");
    assert!(status.contains("\"healthy\":false"), "{status}");
    assert!(status.contains("\"stall\":{\"stalled_us\":"), "{status}");
    assert!(status.contains("\"last_step\":null"), "{status}");
    assert!(
        status.contains("\"agent\":4,\"blocker\":6,\"reason\":\"dependency\""),
        "{status}"
    );

    let (_, metrics) = get(server.addr(), "/metrics");
    assert!(metrics.contains("aim_stalled 1\n"), "{metrics}");

    let report = source.stall_report().expect("report cached for /status");
    assert!(report.stalled_us >= 1_000);
    drop(server);
}
