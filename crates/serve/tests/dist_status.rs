//! Live per-worker health over a real process boundary: a
//! [`ShardWorker`] in a **separate OS process** answers
//! `CtrlMsg::Heartbeat` polls over the `AIMMSG v1` socket transport,
//! the replies feed a [`HealthBoard`], and the HTTP `/status` endpoint
//! exposes the worker's liveness, lag, and queue depth live — then
//! flips it to not-alive once the link is severed.
//!
//! Same re-exec topology as `crates/core/tests/dist_socket.rs`: the
//! controller test spawns its own test binary filtered to
//! [`status_worker_child`] with the listener address in an environment
//! variable.

use std::net::{TcpListener, TcpStream};
use std::process::Command;
use std::sync::Arc;

use aim_core::dist::socket::{serve_connection, SocketLink};
use aim_core::dist::{CtrlMsg, NodeRecord, ShardMsg, ShardWorker, WorkerLink};
use aim_core::health::{HealthBoard, WorkerHealth};
use aim_core::prelude::*;
use aim_core::space::GridSpace;
use aim_serve::{RunStatus, StatusServer, StatusSource};
use aim_store::Db;
use aim_trace::telemetry::validate_json;

mod common;
use common::get;

const ADDR_VAR: &str = "AIM_SERVE_WORKER_ADDR";

fn space() -> Arc<GridSpace> {
    Arc::new(GridSpace::new(64, 64))
}

/// The worker half; a no-op under a plain `cargo test` run.
#[test]
fn status_worker_child() {
    let Ok(addr) = std::env::var(ADDR_VAR) else {
        return;
    };
    let stream = TcpStream::connect(addr).expect("child connects to controller");
    let mut worker = ShardWorker::new(
        7,
        space(),
        RuleParams::new(2, 1),
        Arc::new(Db::new()),
        true,
        Arc::default(),
    );
    serve_connection(stream, &mut worker).expect("serve loop");
}

#[test]
fn status_endpoint_tracks_a_remote_worker_live() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["--exact", "status_worker_child", "--nocapture"])
        .env(ADDR_VAR, &addr)
        .spawn()
        .expect("spawn worker process");

    let (stream, _) = listener.accept().expect("worker connects");
    let mut link = SocketLink::connect(7, space(), stream).expect("AIMMSG handshake");

    // Populate two agents, then commit one step for agent 0 so the
    // worker has a nonzero last-applied step to report.
    let records: Vec<NodeRecord<Point>> = [(0u32, 10i32, 10i32), (1, 11, 10)]
        .into_iter()
        .map(|(agent, x, y)| NodeRecord {
            agent,
            step: 0,
            pos: Point::new(x, y),
            history: vec![(0, Point::new(x, y))],
        })
        .collect();
    link.send(CtrlMsg::Arrive { records }).unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Done);
    link.send(CtrlMsg::Commit {
        updates: vec![(0, Point::new(10, 11))],
    })
    .unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Done);
    let mut sent: u64 = 2;

    // Poll one heartbeat over the wire and feed the board, deriving
    // queue depth controller-side exactly as DistTracker::poll_heartbeats
    // does (sent − handled ≈ 0 on a healthy lock-step link).
    let board = Arc::new(HealthBoard::new());
    link.send(CtrlMsg::Heartbeat {
        now_us: board.now_us(),
    })
    .unwrap();
    sent += 1;
    let ShardMsg::Heartbeat {
        worker,
        handled,
        last_step,
        members,
        dropped,
        ..
    } = link.recv().unwrap()
    else {
        panic!("expected a Heartbeat reply");
    };
    assert_eq!(worker, 7);
    assert_eq!(last_step, 1, "the committed step is visible over the wire");
    assert_eq!(members, 2);
    board.record_heartbeat(WorkerHealth {
        worker,
        name: format!("worker {worker}"),
        alive: true,
        last_seen_us: board.now_us(),
        last_applied_step: (last_step != u32::MAX).then_some(last_step),
        queue_depth: sent.saturating_sub(handled),
        members,
        span_overflow: dropped,
    });

    let source = Arc::new(RunStatus::new("dist run", 2).with_board(Arc::clone(&board)));
    let server = StatusServer::start(0, Arc::clone(&source) as Arc<dyn StatusSource>)
        .expect("bind an ephemeral loopback port");

    let (code, status) = get(server.addr(), "/status");
    assert_eq!(code, 200);
    validate_json(&status).expect("/status is valid JSON");
    assert!(status.contains("\"worker\":7"), "{status}");
    assert!(status.contains("\"alive\":true"), "{status}");
    assert!(status.contains("\"last_applied_step\":1"), "{status}");
    assert!(status.contains("\"queue_depth\":0"), "{status}");
    assert!(status.contains("\"members\":2"), "{status}");
    assert!(status.contains("\"lag_us\":"), "{status}");

    let (_, metrics) = get(server.addr(), "/metrics");
    assert!(
        metrics.contains("aim_worker_alive{worker=\"worker 7\"} 1\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("aim_worker_lag_microseconds{worker=\"worker 7\"}"),
        "{metrics}"
    );

    // Sever: shut the worker down, mark the board, and watch /status
    // flip the same worker to not-alive without restarting the server.
    link.send(CtrlMsg::Shutdown).unwrap();
    assert_eq!(link.recv().unwrap(), ShardMsg::Done);
    let exit = child.wait().expect("child exit status");
    assert!(exit.success(), "worker process failed: {exit}");
    board.mark_severed(7);

    let (code, status) = get(server.addr(), "/status");
    assert_eq!(code, 200);
    assert!(status.contains("\"alive\":false"), "{status}");
    let (_, metrics) = get(server.addr(), "/metrics");
    assert!(
        metrics.contains("aim_worker_alive{worker=\"worker 7\"} 0\n"),
        "{metrics}"
    );
    drop(server);
}
