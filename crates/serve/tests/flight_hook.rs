//! The crash flight recorder end to end: a panicked run leaves
//! `crash.telemetry` + `crash.trace.json` dumps that the trace tooling
//! accepts.
//!
//! The panic hook is process-global, so this file holds exactly one
//! test (integration test files run as separate processes).

use std::sync::Arc;

use aim_core::telemetry::{SpanKind, Telemetry};
use aim_serve::flight::{install_panic_hook, CRASH_TELEMETRY, CRASH_TRACE};
use aim_trace::telemetry::{load, validate_chrome_trace};

#[test]
fn panicked_run_leaves_a_loadable_flight_dump() {
    // A tiny buffer so the run overflows into the flight ring: the dump
    // must cover both the retained tail and the live buffer.
    let telemetry = Arc::new(Telemetry::with_capacity(4));
    for i in 0..32u64 {
        let start = 100 + i * 10;
        telemetry.record_at(
            start,
            start + 5,
            SpanKind::Commit {
                cluster: 0,
                step: i as u32,
                members: 1,
            },
        );
    }
    assert!(telemetry.dropped() > 0, "the live buffer must overflow");

    let dir = std::env::temp_dir().join(format!("aim-flight-hook-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    install_panic_hook(Arc::clone(&telemetry), dir.clone(), 1);
    let crashed = std::panic::catch_unwind(|| panic!("synthetic crash"));
    assert!(crashed.is_err());
    // Restore the default hook for any later panic in this process.
    let _ = std::panic::take_hook();

    let rt = load(dir.join(CRASH_TELEMETRY)).expect("crash.telemetry loads");
    assert_eq!(rt.agents, 1);
    assert_eq!(
        rt.spans.len(),
        32,
        "flight ring preserved every overflowed span"
    );
    assert_eq!(rt.spans[0].start_us, 0, "the dump is rebased to zero");
    assert_eq!(rt.dropped, 28, "overflow accounting survives the dump");

    let trace = std::fs::read_to_string(dir.join(CRASH_TRACE)).expect("crash.trace.json exists");
    let events = validate_chrome_trace(&trace).expect("chrome trace validates");
    assert!(events >= 32, "every span became a trace event: {events}");

    let _ = std::fs::remove_dir_all(&dir);
}
