//! The crash flight recorder: dump the telemetry sink's retained span
//! tail when the process is going down.
//!
//! The [`Telemetry`] sink already keeps a bounded ring of the most
//! recent overflowed spans plus whatever the live buffers hold
//! ([`Telemetry::flight_tail`]); this module turns that tail into the
//! same on-disk artifacts a finished run exports — `crash.telemetry`
//! (AIMTEL, loadable by `trace_tool timeline`) and `crash.trace.json`
//! (Chrome trace) — from a panic hook or a severed-worker callback.
//!
//! Dump paths must never make a bad situation worse: every function
//! here reports failure through `Result` or stderr, never by
//! panicking (a panic inside a panic hook aborts the process).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use aim_core::telemetry::Telemetry;
use aim_trace::telemetry::{save, write_chrome_trace};

/// File name of the AIMTEL dump inside the crash directory.
pub const CRASH_TELEMETRY: &str = "crash.telemetry";
/// File name of the Chrome-trace dump inside the crash directory.
pub const CRASH_TRACE: &str = "crash.trace.json";

/// Writes the flight-recorder dump for `telemetry` into `dir`
/// (created if missing): [`CRASH_TELEMETRY`] then [`CRASH_TRACE`].
/// Returns both paths.
///
/// Drains the sink's live buffers (plus the overflow ring) into a
/// rebased [`RunTelemetry`](aim_core::telemetry::RunTelemetry), so
/// call it on the way down — a continuing run would lose the drained
/// spans from its final export.
pub fn write_crash_dump(
    telemetry: &Telemetry,
    dir: &Path,
    agents: u32,
) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let rt = telemetry.flight_report(agents);
    let telemetry_path = dir.join(CRASH_TELEMETRY);
    save(&rt, &telemetry_path).map_err(to_io)?;
    let trace_path = dir.join(CRASH_TRACE);
    let file = std::fs::File::create(&trace_path)?;
    let mut w = io::BufWriter::new(file);
    write_chrome_trace(&rt, &mut w).map_err(to_io)?;
    Ok((telemetry_path, trace_path))
}

fn to_io(e: aim_trace::TraceError) -> io::Error {
    io::Error::new(io::ErrorKind::Other, e.to_string())
}

/// Installs a panic hook that writes the flight-recorder dump into
/// `dir` before delegating to the previous hook (so the default
/// backtrace message still prints).
///
/// Process-global, like every panic hook: install it once, from the
/// binary that owns the run. The hook itself never panics — a failed
/// dump is reported on stderr and the unwind continues.
pub fn install_panic_hook(telemetry: Arc<Telemetry>, dir: PathBuf, agents: u32) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        match write_crash_dump(&telemetry, &dir, agents) {
            Ok((telemetry_path, trace_path)) => eprintln!(
                "[aim-serve] flight recorder dumped {} and {}",
                telemetry_path.display(),
                trace_path.display()
            ),
            Err(e) => eprintln!("[aim-serve] flight recorder dump failed: {e}"),
        }
        prev(info);
    }));
}
