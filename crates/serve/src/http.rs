//! The embedded, dependency-free HTTP status server.
//!
//! Serves exactly three routes from a [`StatusSource`]:
//!
//! - `GET /healthz` — `200 ok` while healthy, `503 stalled` once the
//!   watchdog fires.
//! - `GET /metrics` — Prometheus text exposition.
//! - `GET /status` — JSON digest.
//!
//! Built on `std::net::TcpListener` with one accept thread plus one
//! ticker thread — no async runtime, no HTTP library, because the whole
//! surface is three GET routes with `Connection: close` semantics. The
//! ticker calls [`StatusSource::tick`] a few times a second so the
//! stall watchdog can fire on schedule even when nobody scrapes.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::status::StatusSource;

/// How often the background ticker calls [`StatusSource::tick`].
const TICK_INTERVAL: Duration = Duration::from_millis(250);

/// A running status server. Binds on construction, serves from a
/// background thread, and shuts both threads down on [`Drop`].
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `127.0.0.1:port` (pass port 0 for an ephemeral port, e.g.
    /// in tests) and starts serving `source`. The bind is loopback-only
    /// on purpose: this is an operator's local scrape surface, not a
    /// public API.
    pub fn start(port: u16, source: Arc<dyn StatusSource>) -> io::Result<StatusServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let stop = Arc::clone(&stop);
            let source = Arc::clone(&source);
            std::thread::Builder::new()
                .name("aim-serve-http".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Serve inline: responses are small strings and
                        // clients are curl/Prometheus, so a connection
                        // never blocks the loop for long.
                        let _ = serve_one(stream, source.as_ref());
                    }
                })?
        };
        let ticker = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("aim-serve-tick".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        source.tick();
                        std::thread::sleep(TICK_INTERVAL);
                    }
                })?
        };

        Ok(StatusServer {
            addr,
            stop,
            accept: Some(accept),
            ticker: Some(ticker),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port (useful with port 0).
    pub fn port(&self) -> u16 {
        self.addr.port()
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection; the stop
        // flag makes it exit before serving.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
    }
}

/// Reads one request line, routes it, writes one response, closes.
fn serve_one(stream: TcpStream, source: &dyn StatusSource) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // "GET /path HTTP/1.1" — tolerate missing version, reject non-GET.
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/healthz" => {
                if source.healthy() {
                    ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
                } else {
                    (
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "stalled\n".to_string(),
                    )
                }
            }
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                source.metrics(),
            ),
            "/status" => ("200 OK", "application/json", source.status_json()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /healthz, /metrics, /status\n".to_string(),
            ),
        }
    };

    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
