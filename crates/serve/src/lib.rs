//! # aim-serve
//!
//! The live health plane for a running simulation: a dependency-free
//! embedded HTTP server exposing `/metrics`, `/status`, and `/healthz`;
//! the glue that drives the [`aim_core::health`] stall watchdog off the
//! hot path; and the crash flight recorder that turns a panic or a
//! severed worker link into loadable `crash.telemetry` +
//! `crash.trace.json` dumps.
//!
//! Finished-run telemetry (PR 9's harvest + exporters) explains a run
//! after it ends; this crate makes the *running* city scrapeable — the
//! serving-style operational surface the paper's OOO controller needs at
//! scale (you operate a 10k-agent simulation like a service, not a
//! batch job).
//!
//! The three pieces compose but don't require each other:
//!
//! - [`StatusSource`] + [`StatusServer`] — anything that can render a
//!   metrics page can be served; [`RunStatus`] is the standard source
//!   wrapping a [`Telemetry`](aim_core::telemetry::Telemetry) sink, an
//!   optional [`HealthBoard`](aim_core::health::HealthBoard), an
//!   optional [`Watchdog`](aim_core::health::Watchdog), and an optional
//!   LLM backend (for fleet gauges).
//! - The server's background ticker calls [`StatusSource::tick`] a few
//!   times a second, which is what lets the watchdog fire within its
//!   budget even when nobody is scraping.
//! - [`flight::write_crash_dump`] / [`flight::install_panic_hook`] dump
//!   the telemetry sink's retained span tail on the way down.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
mod http;
mod status;

pub use http::StatusServer;
pub use status::{RunStatus, StatusSource};
