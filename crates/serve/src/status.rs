//! The standard [`StatusSource`]: live gauges for one observed run.

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use aim_core::health::{HealthBoard, StallReport, Watchdog};
use aim_core::telemetry::{Counter, Telemetry};
use aim_llm::LlmBackend;
use aim_trace::telemetry::{json_escape, prometheus_sample, prometheus_text};

/// What the embedded HTTP server serves. Implementations must be cheap
/// enough to call from the accept loop (every render happens on a
/// scrape) and are also `tick`ed a few times per second by the server's
/// background ticker, watchdog budget or not.
pub trait StatusSource: Send + Sync {
    /// Whether the run is healthy (`/healthz` → 200) or stalled (503).
    fn healthy(&self) -> bool;

    /// The Prometheus text exposition for `/metrics`.
    fn metrics(&self) -> String;

    /// The JSON digest for `/status`.
    fn status_json(&self) -> String;

    /// Periodic off-hot-path work (watchdog checks). Default: nothing.
    fn tick(&self) {}
}

/// The standard status source for one observed run: wraps the run's
/// telemetry sink plus whichever optional health-plane pieces the run
/// wired up. Everything is optional except the label — a threaded run
/// has no [`HealthBoard`], a replay has no fleet, a bare smoke run may
/// have no watchdog.
pub struct RunStatus {
    label: String,
    agents: u32,
    telemetry: Option<Arc<Telemetry>>,
    board: Option<Arc<HealthBoard>>,
    watchdog: Option<Arc<Watchdog>>,
    backend: Option<Arc<dyn LlmBackend>>,
    /// The one-shot stall report, cached once the watchdog fires so
    /// `/status` keeps showing it and `/healthz` flips to 503.
    stall: Mutex<Option<StallReport>>,
}

impl std::fmt::Debug for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStatus")
            .field("label", &self.label)
            .field("agents", &self.agents)
            .field("healthy", &self.healthy())
            .finish()
    }
}

impl RunStatus {
    /// A status source for the run labelled `label` over `agents` agents.
    pub fn new(label: impl Into<String>, agents: u32) -> RunStatus {
        RunStatus {
            label: label.into(),
            agents,
            telemetry: None,
            board: None,
            watchdog: None,
            backend: None,
            stall: Mutex::new(None),
        }
    }

    /// Attaches the run's telemetry sink (span/counter gauges, commit
    /// watermark, stall decomposition so far).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> RunStatus {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches the per-worker health board (distributed runs).
    #[must_use]
    pub fn with_board(mut self, board: Arc<HealthBoard>) -> RunStatus {
        self.board = Some(board);
        self
    }

    /// Attaches the stall watchdog, checked on every [`tick`]
    /// (and scrape) against the telemetry commit watermark.
    ///
    /// [`tick`]: StatusSource::tick
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Arc<Watchdog>) -> RunStatus {
        self.watchdog = Some(watchdog);
        self
    }

    /// Attaches the LLM backend so `/status` can report fleet gauges
    /// (hit rates, per-replica health) when the backend is a fleet.
    #[must_use]
    pub fn with_backend(mut self, backend: Arc<dyn LlmBackend>) -> RunStatus {
        self.backend = Some(backend);
        self
    }

    /// Runs the watchdog check once; the first firing logs the report
    /// (to stderr, once) and caches it for `/status` and `/healthz`.
    /// Never panics (the watchdog guarantees this) and never fires
    /// twice.
    pub fn poll_watchdog(&self) {
        let (Some(t), Some(dog)) = (self.telemetry.as_deref(), self.watchdog.as_deref()) else {
            return;
        };
        if let Some(report) = dog.check(t) {
            eprintln!("[aim-serve] stall watchdog fired: {report}");
            *self.stall.lock() = Some(report);
        }
    }

    /// The cached stall report, if the watchdog has fired.
    pub fn stall_report(&self) -> Option<StallReport> {
        self.stall.lock().clone()
    }
}

impl StatusSource for RunStatus {
    fn healthy(&self) -> bool {
        self.stall.lock().is_none()
    }

    fn metrics(&self) -> String {
        let mut out = String::new();
        if let Some(t) = self.telemetry.as_deref() {
            out.push_str(&prometheus_text(&t.snapshot()));
            out.push_str("# TYPE aim_flight_missed_total counter\n");
            let _ = writeln!(out, "aim_flight_missed_total {}", t.flight_missed());
            out.push_str("# TYPE aim_last_commit_age_microseconds gauge\n");
            let age = match t.last_commit() {
                Some((us, _)) => t.now_us().saturating_sub(us),
                None => t.now_us(),
            };
            let _ = writeln!(out, "aim_last_commit_age_microseconds {age}");
        }
        out.push_str("# TYPE aim_stalled gauge\n");
        let _ = writeln!(out, "aim_stalled {}", u64::from(!self.healthy()));
        if let Some(board) = self.board.as_deref() {
            let workers = board.workers();
            if !workers.is_empty() {
                let now = board.now_us();
                out.push_str("# TYPE aim_worker_alive gauge\n");
                out.push_str("# TYPE aim_worker_lag_microseconds gauge\n");
                out.push_str("# TYPE aim_worker_queue_depth gauge\n");
                out.push_str("# TYPE aim_worker_members gauge\n");
                out.push_str("# TYPE aim_worker_spans_dropped_total counter\n");
                for w in &workers {
                    let labels = [("worker", w.name.as_str())];
                    out.push_str(&prometheus_sample(
                        "aim_worker_alive",
                        &labels,
                        u64::from(w.alive),
                    ));
                    out.push_str(&prometheus_sample(
                        "aim_worker_lag_microseconds",
                        &labels,
                        now.saturating_sub(w.last_seen_us),
                    ));
                    out.push_str(&prometheus_sample(
                        "aim_worker_queue_depth",
                        &labels,
                        w.queue_depth,
                    ));
                    out.push_str(&prometheus_sample(
                        "aim_worker_members",
                        &labels,
                        u64::from(w.members),
                    ));
                    out.push_str(&prometheus_sample(
                        "aim_worker_spans_dropped_total",
                        &labels,
                        w.span_overflow,
                    ));
                }
            }
        }
        out
    }

    fn status_json(&self) -> String {
        // Hand-rolled JSON (the workspace has no serde_json); every
        // string is escaped with the exporter's json_escape.
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"label\":\"{}\",\"agents\":{},\"healthy\":{}",
            json_escape(&self.label),
            self.agents,
            self.healthy()
        );
        if let Some(t) = self.telemetry.as_deref() {
            let snap = t.snapshot();
            let _ = write!(
                out,
                ",\"uptime_us\":{},\"spans\":{},\"dropped\":{},\"flight_missed\":{}",
                snap.at_us,
                snap.spans,
                snap.dropped,
                t.flight_missed()
            );
            match t.last_commit() {
                Some((us, step)) => {
                    let _ = write!(out, ",\"last_commit\":{{\"us\":{us},\"step\":{step}}}");
                }
                None => out.push_str(",\"last_commit\":null"),
            }
            out.push_str(",\"counters\":{");
            for (i, c) in Counter::ALL.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", c.as_str(), t.counter(*c));
            }
            out.push('}');
            // Stall decomposition so far: derived from the spans
            // recorded up to this scrape (a scrape-time drain, not the
            // final rebased report).
            let rt = t.flight_report(self.agents);
            let d = &rt.decomposition;
            let _ = write!(
                out,
                ",\"decomposition\":{{\"llm\":{:.6},\"blocked\":{:.6},\"overhead\":{:.6},\"checkpoint\":{:.6}}}",
                d.llm_frac(),
                d.blocked_frac(),
                d.overhead_frac(),
                d.checkpoint_frac()
            );
        }
        match self.stall.lock().as_ref() {
            Some(report) => {
                let _ = write!(out, ",\"stall\":{{\"stalled_us\":{}", report.stalled_us);
                match report.last_step {
                    Some(step) => {
                        let _ = write!(out, ",\"last_step\":{step}");
                    }
                    None => out.push_str(",\"last_step\":null"),
                }
                out.push_str(",\"edges\":[");
                for (i, e) in report.edges.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"agent\":{},\"blocker\":{},\"reason\":\"{}\",\"count\":{},\"total_us\":{}}}",
                        e.agent,
                        e.blocker,
                        e.reason.as_str(),
                        e.count,
                        e.total_us
                    );
                }
                out.push_str("]}");
            }
            None => out.push_str(",\"stall\":null"),
        }
        match self.backend.as_deref().and_then(|b| b.fleet_metrics()) {
            Some(fleet) => {
                let _ = write!(
                    out,
                    ",\"fleet\":{{\"name\":\"{}\",\"policy\":\"{}\",\"served\":{},\"failed\":{},\"hit_rate\":{:.6},\"max_p99_us\":{},\"replicas\":[",
                    json_escape(&fleet.name),
                    json_escape(&fleet.policy),
                    fleet.total_served(),
                    fleet.total_failed(),
                    fleet.hit_rate(),
                    fleet.max_p99_us()
                );
                for (i, r) in fleet.replicas.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"replica\":{},\"served\":{},\"failed\":{},\"down\":{},\"hit_rate\":{:.6},\"p99_us\":{}}}",
                        r.replica,
                        r.served,
                        r.failed,
                        r.down,
                        r.hit_rate(),
                        r.p99_us
                    );
                }
                out.push_str("]}");
            }
            None => out.push_str(",\"fleet\":null"),
        }
        out.push_str(",\"workers\":[");
        if let Some(board) = self.board.as_deref() {
            let now = board.now_us();
            for (i, w) in board.workers().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"worker\":{},\"name\":\"{}\",\"alive\":{},\"lag_us\":{}",
                    w.worker,
                    json_escape(&w.name),
                    w.alive,
                    now.saturating_sub(w.last_seen_us)
                );
                match w.last_applied_step {
                    Some(step) => {
                        let _ = write!(out, ",\"last_applied_step\":{step}");
                    }
                    None => out.push_str(",\"last_applied_step\":null"),
                }
                let _ = write!(
                    out,
                    ",\"queue_depth\":{},\"members\":{},\"span_overflow\":{}}}",
                    w.queue_depth, w.members, w.span_overflow
                );
            }
        }
        out.push_str("]}");
        out
    }

    fn tick(&self) {
        self.poll_watchdog();
    }
}
