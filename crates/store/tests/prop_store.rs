//! Model-based property tests: the store behaves like a HashMap, the
//! priority queue like a stable sort, and transactions serialize.

use aim_store::{Db, PriorityQueue, Snapshot, SnapshotBuilder};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Set(u8, Vec<u8>),
    Del(u8),
    Incr(u8, i16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..8))
            .prop_map(|(k, v)| Op::Set(k, v)),
        any::<u8>().prop_map(Op::Del),
        (any::<u8>(), any::<i16>()).prop_map(|(k, d)| Op::Incr(k, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Db point operations match a HashMap model (incr keys are kept in a
    /// disjoint namespace so type confusion cannot arise).
    #[test]
    fn db_matches_hashmap_model(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let db = Db::new();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let mut counters: HashMap<String, i64> = HashMap::new();
        for op in ops {
            match op {
                Op::Set(k, v) => {
                    let key = format!("kv:{k}");
                    db.set(&key, v.clone());
                    model.insert(key, v);
                }
                Op::Del(k) => {
                    let key = format!("kv:{k}");
                    let was = db.del(&key);
                    prop_assert_eq!(was, model.remove(&key).is_some());
                }
                Op::Incr(k, d) => {
                    let key = format!("ctr:{k}");
                    let got = db.incr(&key, d as i64).unwrap();
                    let c = counters.entry(key).or_insert(0);
                    *c += d as i64;
                    prop_assert_eq!(got, *c);
                }
            }
        }
        for (k, v) in &model {
            let got = db.get(k);
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        prop_assert_eq!(db.len(), model.len() + counters.len());
    }

    /// Pops come out sorted by (priority, insertion order).
    #[test]
    fn priority_queue_is_stable_sort(items in proptest::collection::vec(0u64..10, 0..100)) {
        let q = PriorityQueue::new();
        for (i, p) in items.iter().enumerate() {
            q.push(*p, i).unwrap();
        }
        let mut expect: Vec<(u64, usize)> =
            items.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        expect.sort();
        let mut got = Vec::new();
        while let Some(i) = q.try_pop() {
            got.push((items[i], i));
        }
        prop_assert_eq!(got, expect);
    }

    /// AIMSNAP v1 roundtrips any database byte-for-byte: restoring a
    /// snapshot and snapshotting again yields the identical stream, and
    /// the restored contents equal the original exactly. Sections ride
    /// along unchanged.
    #[test]
    fn snapshot_restore_roundtrips_byte_for_byte(
        pairs in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..12),
                proptest::collection::vec(any::<u8>(), 0..16),
            ),
            0..64
        ),
        section in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let entries: std::collections::BTreeMap<Vec<u8>, Vec<u8>> =
            pairs.into_iter().collect();
        let db = Db::new();
        for (k, v) in &entries {
            db.set(k, v.clone());
        }
        let bytes = SnapshotBuilder::new()
            .section("meta", section.clone())
            .db(&db)
            .to_bytes()
            .unwrap();
        let snap = Snapshot::from_bytes(bytes.clone()).unwrap();
        prop_assert_eq!(snap.info().db_records as usize, entries.len());
        prop_assert_eq!(snap.section("meta").unwrap().as_ref(), section.as_slice());
        let restored = snap.restore_db();
        prop_assert_eq!(restored.scan_prefix(""), db.scan_prefix(""));
        // Canonical encoding: the second snapshot is the same stream.
        let again = SnapshotBuilder::new()
            .section("meta", section)
            .db(&restored)
            .to_bytes()
            .unwrap();
        prop_assert_eq!(bytes.as_ref(), again.as_ref());
    }

    /// The streaming scan agrees with the materializing scan on every
    /// prefix, including empty and non-matching ones.
    #[test]
    fn for_each_prefix_matches_scan_prefix(
        keys in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..5), 0..50),
        prefix in proptest::collection::vec(0u8..4, 0..3),
    ) {
        let db = Db::new();
        for (i, k) in keys.iter().enumerate() {
            db.set(k, vec![i as u8]);
        }
        let mut streamed = Vec::new();
        db.for_each_prefix(&prefix, |k, v| {
            streamed.push((k.clone(), v.clone()));
            std::ops::ControlFlow::Continue(())
        });
        prop_assert_eq!(streamed, db.scan_prefix(&prefix));
    }

    /// Concurrent transactional increments over random key sets lose no
    /// updates (serializability on a torture workload).
    #[test]
    fn txn_increments_serialize(
        keysets in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 1..4), 2..5
        )
    ) {
        let db = std::sync::Arc::new(Db::new());
        let mut expected: HashMap<u8, i64> = HashMap::new();
        for ks in &keysets {
            for k in ks {
                *expected.entry(*k).or_insert(0) += 50;
            }
        }
        std::thread::scope(|s| {
            for ks in &keysets {
                let db = std::sync::Arc::clone(&db);
                s.spawn(move || {
                    for _ in 0..50 {
                        db.transaction(|txn| {
                            for k in ks {
                                let cur = txn.get_i64(format!("c{k}"))?;
                                txn.set_i64(format!("c{k}"), cur + 1);
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        for (k, v) in expected {
            let got = db.incr(format!("c{k}"), 0).unwrap();
            prop_assert_eq!(got, v, "lost updates on key {}", k);
        }
    }
}
