use std::collections::{BTreeSet, HashMap};

use bytes::Bytes;
use parking_lot::RwLockWriteGuard;

use crate::db::{Db, Entry, ShardInner};
use crate::error::StoreError;
use crate::key::Key;

/// Default bound on optimistic retry attempts used by [`Db::transaction`].
///
/// The engine's dependency-graph transactions touch a handful of keys and
/// conflict only when two workers commit overlapping clusters, so in
/// practice one or two attempts suffice; the bound exists to convert a
/// pathological livelock into a reportable error.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 100;

/// Handle passed to the closure of [`Db::transaction`].
///
/// Reads performed through the handle are recorded in a *read set* together
/// with the version they observed; writes are buffered in a *write set* and
/// published atomically at commit. Reads observe the transaction's own
/// buffered writes (read-your-writes).
#[derive(Debug)]
pub struct Txn<'db> {
    db: &'db Db,
    /// key -> version observed (0 encodes "absent").
    reads: HashMap<Bytes, u64>,
    /// key -> Some(value) for set, None for delete.
    writes: HashMap<Bytes, Option<Bytes>>,
}

impl<'db> Txn<'db> {
    fn new(db: &'db Db) -> Self {
        Txn {
            db,
            reads: HashMap::new(),
            writes: HashMap::new(),
        }
    }

    /// Reads `key`, recording it in the transaction's read set.
    pub fn get(&mut self, key: impl AsRef<[u8]>) -> Option<Bytes> {
        self.get_bytes(Bytes::copy_from_slice(key.as_ref()))
    }

    /// Like [`Txn::get`] for an interned [`Key`]: the key bytes are shared
    /// into the read set instead of copied.
    pub fn get_key(&mut self, key: &Key) -> Option<Bytes> {
        self.get_bytes(key.bytes().clone())
    }

    fn get_bytes(&mut self, key: Bytes) -> Option<Bytes> {
        if let Some(buffered) = self.writes.get(&key) {
            return buffered.clone();
        }
        match self.db.versioned_get(&key) {
            Some((version, value)) => {
                self.reads.entry(key).or_insert(version);
                Some(value)
            }
            None => {
                self.reads.entry(key).or_insert(0);
                None
            }
        }
    }

    /// Buffers a write of `value` to `key`.
    pub fn set(&mut self, key: impl AsRef<[u8]>, value: impl Into<Bytes>) {
        self.writes
            .insert(Bytes::copy_from_slice(key.as_ref()), Some(value.into()));
    }

    /// Like [`Txn::set`] for an interned [`Key`]: neither the key nor a
    /// [`Bytes`] value is copied — both are refcount bumps, which is what
    /// keeps the per-record cost of the dependency-graph commit loop flat
    /// across transaction retries.
    pub fn set_key(&mut self, key: &Key, value: impl Into<Bytes>) {
        self.writes.insert(key.bytes().clone(), Some(value.into()));
    }

    /// Buffers a deletion of `key`.
    pub fn del(&mut self, key: impl AsRef<[u8]>) {
        self.writes
            .insert(Bytes::copy_from_slice(key.as_ref()), None);
    }

    /// Reads `key` as a big-endian `i64` (absent counts as 0).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if the stored value is not 8 bytes.
    pub fn get_i64(&mut self, key: impl AsRef<[u8]>) -> Result<i64, StoreError> {
        match self.get(key) {
            None => Ok(0),
            Some(v) => crate::codec::i64_value(&v),
        }
    }

    /// Buffers a write of `value` as a big-endian `i64` (the same encoding
    /// as [`crate::Db::set_i64`], via [`crate::codec::i64_bytes`]).
    pub fn set_i64(&mut self, key: impl AsRef<[u8]>, value: i64) {
        self.set(key, crate::codec::i64_bytes(value).to_vec());
    }

    /// Aborts the transaction with a message; the caller should propagate
    /// the returned error.
    ///
    /// Aborting is not retried: [`Db::transaction`] returns the error to its
    /// caller and discards all buffered writes.
    ///
    /// # Example
    ///
    /// ```
    /// use aim_store::{Db, StoreError};
    /// let db = Db::new();
    /// let r: Result<(), _> = db.transaction(|txn| Err(txn.abort("nothing to do")));
    /// assert!(matches!(r, Err(StoreError::TxnAborted(_))));
    /// ```
    pub fn abort(&mut self, reason: impl Into<String>) -> StoreError {
        StoreError::TxnAborted(reason.into())
    }

    /// Number of keys in the read set (diagnostics).
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of keys in the write set (diagnostics).
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Attempts to commit. Returns `Ok(true)` on success, `Ok(false)` on
    /// validation conflict (caller retries).
    fn commit(self) -> bool {
        let db = self.db;
        // Lock every involved shard in index order to stay deadlock-free.
        let mut shard_ids: BTreeSet<usize> = BTreeSet::new();
        for k in self.reads.keys().chain(self.writes.keys()) {
            shard_ids.insert(Db::shard_index(k));
        }
        let mut guards: HashMap<usize, RwLockWriteGuard<'_, ShardInner>> = HashMap::new();
        for id in &shard_ids {
            guards.insert(*id, db.shards[*id].write());
        }
        // Validate the read set under the locks.
        for (key, observed) in &self.reads {
            let shard = &guards[&Db::shard_index(key)];
            let current = shard.map.get(key.as_ref()).map(|e| e.version).unwrap_or(0);
            if current != *observed {
                return false;
            }
        }
        // Apply the write set.
        let n_writes = self.writes.len() as u64;
        for (key, value) in self.writes {
            let shard = guards
                .get_mut(&Db::shard_index(&key))
                .expect("shard locked");
            match value {
                Some(value) => {
                    let version = shard.bump();
                    shard.map.insert(key, Entry { version, value });
                }
                None => {
                    shard.bump();
                    shard.map.remove(&key);
                }
            }
        }
        db.note_write(n_writes);
        true
    }
}

pub(crate) fn run<T>(
    db: &Db,
    max_attempts: u32,
    mut body: impl FnMut(&mut Txn<'_>) -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    use std::sync::atomic::Ordering;
    for _attempt in 0..max_attempts.max(1) {
        let mut txn = Txn::new(db);
        let out = body(&mut txn)?;
        if txn.commit() {
            db.txn_commits.fetch_add(1, Ordering::Relaxed);
            return Ok(out);
        }
        db.txn_conflicts.fetch_add(1, Ordering::Relaxed);
    }
    Err(StoreError::TxnConflict {
        attempts: max_attempts.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_your_writes() {
        let db = Db::new();
        db.transaction(|txn| {
            assert!(txn.get("k").is_none());
            txn.set("k", vec![7]);
            assert_eq!(txn.get("k").as_deref(), Some(&[7u8][..]));
            txn.del("k");
            assert!(txn.get("k").is_none());
            Ok(())
        })
        .unwrap();
        assert!(!db.contains("k"));
    }

    #[test]
    fn commit_publishes_atomically() {
        let db = Db::new();
        db.transaction(|txn| {
            txn.set("a", vec![1]);
            txn.set("b", vec![2]);
            Ok(())
        })
        .unwrap();
        assert_eq!(db.get("a").as_deref(), Some(&[1u8][..]));
        assert_eq!(db.get("b").as_deref(), Some(&[2u8][..]));
    }

    #[test]
    fn conflict_retries_and_succeeds() {
        let db = Arc::new(Db::new());
        db.set_i64_for_tests("c", 0);
        // Two threads transactionally increment the same key many times; the
        // final value must equal the total number of increments.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        db.transaction(|txn| {
                            let v = txn.get_i64("c")?;
                            txn.set_i64("c", v + 1);
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = db.transaction(|txn| txn.get_i64("c")).unwrap();
        assert_eq!(v, 2000);
    }

    #[test]
    fn absent_read_is_validated() {
        // A transaction that read "absent" must conflict if the key appears.
        let db = Db::new();
        let mut first = true;
        let result = db.transaction_with_retries(2, |txn| {
            let _ = txn.get("k");
            if first {
                first = false;
                // Simulate a concurrent writer between read and commit.
                db.set("k", vec![9]);
            }
            txn.set("other", vec![1]);
            Ok(())
        });
        // Second attempt sees the key and commits cleanly.
        assert!(result.is_ok());
        assert_eq!(db.stats().txn_conflicts, 1);
    }

    #[test]
    fn user_error_is_not_retried() {
        let db = Db::new();
        let mut calls = 0;
        let r: Result<(), StoreError> = db.transaction(|txn| {
            calls += 1;
            Err(txn.abort("stop"))
        });
        assert!(matches!(r, Err(StoreError::TxnAborted(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn conflict_error_after_max_attempts() {
        let db = Db::new();
        db.set("k", vec![0]);
        let r: Result<(), StoreError> = db.transaction_with_retries(3, |txn| {
            let _ = txn.get("k");
            // Always invalidate our own read before commit.
            db.set("k", vec![1]);
            Ok(())
        });
        assert_eq!(r, Err(StoreError::TxnConflict { attempts: 3 }));
    }

    #[test]
    fn read_and_write_set_sizes() {
        let db = Db::new();
        db.set("a", vec![1]);
        db.transaction(|txn| {
            txn.get("a");
            txn.get("missing");
            txn.set("b", vec![2]);
            assert_eq!(txn.read_set_len(), 2);
            assert_eq!(txn.write_set_len(), 1);
            Ok(())
        })
        .unwrap();
    }

    impl Db {
        fn set_i64_for_tests(&self, key: &str, v: i64) {
            self.set(key, v.to_be_bytes().to_vec());
        }
    }
}
