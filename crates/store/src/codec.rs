//! Minimal big-endian encode/decode helpers for structured store values.
//!
//! Values in [`crate::Db`] are raw bytes. The engine stores small fixed
//! records (agent step + coordinates, edge lists); these helpers keep that
//! encoding in one place and give decode failures a typed error instead of
//! a panic.
//!
//! All integers are big-endian so that encoded keys also sort numerically,
//! which makes `scan_prefix` output meaningfully ordered.
//!
//! # Example
//!
//! ```
//! use aim_store::codec;
//! use bytes::{Bytes, BytesMut};
//!
//! let mut buf = BytesMut::new();
//! codec::put_u32(&mut buf, 17);
//! codec::put_i32(&mut buf, -4);
//! codec::put_str(&mut buf, "cafe");
//!
//! let mut rd = Bytes::from(buf.freeze());
//! assert_eq!(codec::get_u32(&mut rd).unwrap(), 17);
//! assert_eq!(codec::get_i32(&mut rd).unwrap(), -4);
//! assert_eq!(codec::get_str(&mut rd).unwrap(), "cafe");
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::StoreError;

fn need(buf: &Bytes, n: usize, what: &str) -> Result<(), StoreError> {
    if buf.remaining() < n {
        return Err(StoreError::Codec(format!(
            "truncated value: need {n} bytes for {what}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

/// Appends a `u32` (big-endian).
pub fn put_u32(buf: &mut BytesMut, v: u32) {
    buf.put_u32(v);
}

/// Reads a `u32`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] if fewer than 4 bytes remain.
pub fn get_u32(buf: &mut Bytes) -> Result<u32, StoreError> {
    need(buf, 4, "u32")?;
    Ok(buf.get_u32())
}

/// Appends a `u64` (big-endian).
pub fn put_u64(buf: &mut BytesMut, v: u64) {
    buf.put_u64(v);
}

/// Reads a `u64`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] if fewer than 8 bytes remain.
pub fn get_u64(buf: &mut Bytes) -> Result<u64, StoreError> {
    need(buf, 8, "u64")?;
    Ok(buf.get_u64())
}

/// Appends an `i32` (big-endian, two's complement).
pub fn put_i32(buf: &mut BytesMut, v: i32) {
    buf.put_i32(v);
}

/// Reads an `i32`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] if fewer than 4 bytes remain.
pub fn get_i32(buf: &mut Bytes) -> Result<i32, StoreError> {
    need(buf, 4, "i32")?;
    Ok(buf.get_i32())
}

/// Appends an `i64` (big-endian, two's complement).
pub fn put_i64(buf: &mut BytesMut, v: i64) {
    buf.put_i64(v);
}

/// Reads an `i64`.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] if fewer than 8 bytes remain.
pub fn get_i64(buf: &mut Bytes) -> Result<i64, StoreError> {
    need(buf, 8, "i64")?;
    Ok(buf.get_i64())
}

/// Decodes a whole value as one big-endian `i64` (the on-disk shape of
/// counters written by [`crate::Txn::set_i64`], [`crate::Db::set_i64`],
/// and [`crate::Db::incr`]).
///
/// This is the single authority for the "integer value" encoding; the
/// transaction and database layers both delegate here so the two can
/// never drift.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] if the value is not exactly 8 bytes.
pub fn i64_value(value: &[u8]) -> Result<i64, StoreError> {
    let raw: [u8; 8] = value.try_into().map_err(|_| {
        StoreError::Codec(format!(
            "expected 8-byte integer value, got {}",
            value.len()
        ))
    })?;
    Ok(i64::from_be_bytes(raw))
}

/// Encodes an `i64` as the 8-byte big-endian value [`i64_value`] reads.
pub fn i64_bytes(value: i64) -> [u8; 8] {
    value.to_be_bytes()
}

/// Appends a UTF-8 string with a `u32` length prefix.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] on truncation or invalid UTF-8.
pub fn get_str(buf: &mut Bytes) -> Result<String, StoreError> {
    let len = get_u32(buf)? as usize;
    need(buf, len, "string body")?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|e| StoreError::Codec(format!("invalid utf-8 string: {e}")))
}

/// Appends a list of `u32` values with a `u32` count prefix.
pub fn put_u32_list(buf: &mut BytesMut, vs: &[u32]) {
    buf.put_u32(vs.len() as u32);
    for v in vs {
        buf.put_u32(*v);
    }
}

/// Reads a count-prefixed list of `u32` values.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] on truncation.
pub fn get_u32_list(buf: &mut Bytes) -> Result<Vec<u32>, StoreError> {
    let n = get_u32(buf)? as usize;
    need(buf, n.saturating_mul(4), "u32 list body")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_u32());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut buf = BytesMut::new();
        put_u32(&mut buf, u32::MAX);
        put_u64(&mut buf, u64::MAX - 1);
        put_i32(&mut buf, i32::MIN);
        put_i64(&mut buf, -42);
        put_str(&mut buf, "héllo");
        put_u32_list(&mut buf, &[1, 2, 3]);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(get_u32(&mut rd).unwrap(), u32::MAX);
        assert_eq!(get_u64(&mut rd).unwrap(), u64::MAX - 1);
        assert_eq!(get_i32(&mut rd).unwrap(), i32::MIN);
        assert_eq!(get_i64(&mut rd).unwrap(), -42);
        assert_eq!(get_str(&mut rd).unwrap(), "héllo");
        assert_eq!(get_u32_list(&mut rd).unwrap(), vec![1, 2, 3]);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let mut rd = Bytes::from_static(&[0, 0]);
        assert!(matches!(get_u32(&mut rd), Err(StoreError::Codec(_))));
        let mut rd = Bytes::from_static(&[0, 0, 0, 5, b'a']);
        assert!(matches!(get_str(&mut rd), Err(StoreError::Codec(_))));
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32(2);
        buf.put_slice(&[0xff, 0xfe]);
        let mut rd = Bytes::from(buf.freeze());
        assert!(matches!(get_str(&mut rd), Err(StoreError::Codec(_))));
    }

    #[test]
    fn empty_list_and_string() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "");
        put_u32_list(&mut buf, &[]);
        let mut rd = Bytes::from(buf.freeze());
        assert_eq!(get_str(&mut rd).unwrap(), "");
        assert!(get_u32_list(&mut rd).unwrap().is_empty());
    }

    #[test]
    fn huge_list_count_is_rejected_not_oom() {
        // A corrupt count prefix must error out instead of allocating.
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        let mut rd = Bytes::from(buf.freeze());
        assert!(matches!(get_u32_list(&mut rd), Err(StoreError::Codec(_))));
    }
}
