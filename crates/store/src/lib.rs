//! # aim-store
//!
//! An embedded, in-memory, transactional key-value store plus blocking
//! priority queues — the substrate AI Metropolis uses in place of Redis.
//!
//! The AI Metropolis paper (§3.6 *Scalable I/O*) keeps all inter-process
//! state — the spatiotemporal dependency graph, simulation state, and
//! instrumentation data — in an in-memory database (Redis) and performs
//! *transactional* updates so that workers can concurrently re-examine and
//! rewrite dependency edges without races. This crate reproduces those
//! semantics as an embedded library:
//!
//! * [`Db`] — a sharded, versioned key-value store with atomic primitives
//!   (`get`/`set`/`incr`/prefix scans).
//! * [`Db::transaction`] — optimistic, serializable multi-key transactions
//!   in the spirit of Redis `WATCH`/`MULTI`/`EXEC`: reads are validated at
//!   commit time and the closure is retried on conflict.
//! * [`PriorityQueue`] — a blocking multi-producer/multi-consumer priority
//!   queue used for the engine's `ready_queue` and `ack_queue` (§3.1), with
//!   FIFO tie-breaking so that disabling priorities (§4.4) degrades to a
//!   plain FIFO queue.
//! * [`codec`] — minimal big-endian encode/decode helpers on top of
//!   [`bytes`] for storing structured records as values.
//! * [`snapshot`] — durable `AIMSNAP v1` snapshots of a [`Db`] (plus
//!   named side sections) and the rotating [`Checkpointer`] executors
//!   drive every K committed steps, enabling resumable long-horizon
//!   runs.
//!
//! # Example
//!
//! ```
//! use aim_store::Db;
//!
//! # fn main() -> Result<(), aim_store::StoreError> {
//! let db = Db::new();
//! db.set("agent:7:step", 4u64.to_be_bytes().to_vec());
//!
//! // Transactionally advance the step if it is still what we read.
//! let new_step = db.transaction(|txn| {
//!     let cur = txn
//!         .get("agent:7:step")
//!         .map(|v| u64::from_be_bytes(v.as_ref().try_into().unwrap()))
//!         .unwrap_or(0);
//!     txn.set("agent:7:step", (cur + 1).to_be_bytes().to_vec());
//!     Ok(cur + 1)
//! })?;
//! assert_eq!(new_step, 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod db;
mod error;
mod key;
mod queue;
pub mod snapshot;
mod txn;

pub use db::{Db, DbStats};
pub use error::StoreError;
pub use key::Key;
pub use queue::{PopResult, PriorityQueue, QueueClosed};
pub use snapshot::{Checkpointer, Snapshot, SnapshotBuilder, SnapshotInfo};
pub use txn::{Txn, DEFAULT_MAX_ATTEMPTS};

/// Convenient result alias for store operations.
pub type Result<T, E = StoreError> = std::result::Result<T, E>;
