use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::StoreError;
use crate::txn::{self, Txn};

/// Number of independent shards; a power of two so the shard index is a
/// cheap mask of the key hash. Sixteen keeps lock contention negligible for
/// the worker counts used by the engine (≤ CPU count) without bloating the
/// structure.
pub(crate) const SHARD_COUNT: usize = 16;

/// A single versioned value.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    /// Strictly increasing per shard; used by optimistic transactions to
    /// detect concurrent writes (including delete-then-recreate, which
    /// receives a fresh, larger version rather than restarting at zero).
    pub(crate) version: u64,
    pub(crate) value: Bytes,
}

#[derive(Debug, Default)]
pub(crate) struct ShardInner {
    pub(crate) map: HashMap<Bytes, Entry>,
    /// Next version to hand out in this shard. Starts at 1 so that version 0
    /// never appears and can be reserved for "absent" in validation logic.
    pub(crate) next_version: u64,
}

impl ShardInner {
    pub(crate) fn bump(&mut self) -> u64 {
        self.next_version += 1;
        self.next_version
    }
}

/// Counters exposed by [`Db::stats`].
///
/// All counters are cumulative since the database was created and are
/// maintained with relaxed atomics (they are instrumentation, not
/// synchronization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DbStats {
    /// Number of keys currently stored.
    pub keys: usize,
    /// Cumulative successful point reads (`get`).
    pub gets: u64,
    /// Cumulative writes (`set`, `del`, `incr`, transactional writes).
    pub writes: u64,
    /// Cumulative committed transactions.
    pub txn_commits: u64,
    /// Cumulative transaction validation conflicts (each triggers a retry).
    pub txn_conflicts: u64,
}

/// A sharded, versioned, in-memory key-value store.
///
/// `Db` is the embedded stand-in for the Redis instance the AI Metropolis
/// paper uses to hold the dependency graph and simulation state (§3.3,
/// §3.6). It is cheap to share: clone an `Arc<Db>` or borrow it; all methods
/// take `&self`.
///
/// Keys and values are raw bytes ([`bytes::Bytes`]); use [`crate::codec`]
/// for structured values. Point operations are atomic per key;
/// multi-key atomicity is provided by [`Db::transaction`].
///
/// # Example
///
/// ```
/// use aim_store::Db;
///
/// let db = Db::new();
/// db.set("k", b"v".to_vec());
/// assert_eq!(db.get("k").as_deref(), Some(&b"v"[..]));
/// assert_eq!(db.incr("counter", 2).unwrap(), 2);
/// assert_eq!(db.incr("counter", -1).unwrap(), 1);
/// ```
pub struct Db {
    pub(crate) shards: Vec<RwLock<ShardInner>>,
    gets: AtomicU64,
    writes: AtomicU64,
    pub(crate) txn_commits: AtomicU64,
    pub(crate) txn_conflicts: AtomicU64,
}

impl fmt::Debug for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Db").field("stats", &self.stats()).finish()
    }
}

impl Default for Db {
    fn default() -> Self {
        Self::new()
    }
}

impl Db {
    /// Creates an empty database.
    pub fn new() -> Self {
        Db {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(ShardInner::default()))
                .collect(),
            gets: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            txn_commits: AtomicU64::new(0),
            txn_conflicts: AtomicU64::new(0),
        }
    }

    pub(crate) fn shard_index(key: &[u8]) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARD_COUNT - 1)
    }

    /// Returns the value stored at `key`, if any.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Option<Bytes> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let key = key.as_ref();
        let shard = self.shards[Self::shard_index(key)].read();
        shard.map.get(key).map(|e| e.value.clone())
    }

    /// Returns the value and its internal version, used by transactions.
    pub(crate) fn versioned_get(&self, key: &[u8]) -> Option<(u64, Bytes)> {
        let shard = self.shards[Self::shard_index(key)].read();
        shard.map.get(key).map(|e| (e.version, e.value.clone()))
    }

    /// Stores `value` at `key`, replacing any previous value.
    pub fn set(&self, key: impl AsRef<[u8]>, value: impl Into<Bytes>) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let key = Bytes::copy_from_slice(key.as_ref());
        let value = value.into();
        let mut shard = self.shards[Self::shard_index(&key)].write();
        let version = shard.bump();
        shard.map.insert(key, Entry { version, value });
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn del(&self, key: impl AsRef<[u8]>) -> bool {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let key = key.as_ref();
        let mut shard = self.shards[Self::shard_index(key)].write();
        // Bump the shard version so a recreation cannot reuse an old version.
        shard.bump();
        shard.map.remove(key).is_some()
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: impl AsRef<[u8]>) -> bool {
        let key = key.as_ref();
        self.shards[Self::shard_index(key)]
            .read()
            .map
            .contains_key(key)
    }

    /// Atomically adds `delta` to the signed 64-bit integer at `key`
    /// (missing keys count as 0) and returns the new value.
    ///
    /// The integer is stored as 8 big-endian bytes, compatible with
    /// [`crate::codec::get_i64`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if an existing value is not exactly
    /// 8 bytes.
    pub fn incr(&self, key: impl AsRef<[u8]>, delta: i64) -> Result<i64, StoreError> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let key_ref = key.as_ref();
        let mut shard = self.shards[Self::shard_index(key_ref)].write();
        let cur = match shard.map.get(key_ref) {
            None => 0,
            Some(e) => crate::codec::i64_value(&e.value)?,
        };
        let next = cur.wrapping_add(delta);
        let version = shard.bump();
        shard.map.insert(
            Bytes::copy_from_slice(key_ref),
            Entry {
                version,
                value: Bytes::copy_from_slice(&next.to_be_bytes()),
            },
        );
        Ok(next)
    }

    /// Returns all `(key, value)` pairs whose key starts with `prefix`,
    /// sorted by key.
    ///
    /// Scans are *not* transactional: concurrent writers may be observed
    /// partially. Use key-level reads inside [`Db::transaction`] when
    /// consistency matters. Large scans that only need to *visit* records
    /// should prefer [`Db::for_each_prefix`], which does not materialize
    /// the value handles up front.
    pub fn scan_prefix(&self, prefix: impl AsRef<[u8]>) -> Vec<(Bytes, Bytes)> {
        let prefix = prefix.as_ref();
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (k, e) in &shard.map {
                if k.starts_with(prefix) {
                    out.push((k.clone(), e.value.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Visits every `(key, value)` pair whose key starts with `prefix`, in
    /// ascending key order, without materializing the result set.
    ///
    /// Only the (refcounted) key handles are gathered up front — an
    /// unavoidable O(total keys) sweep of the hash-sharded store plus a
    /// sort of the matches; each *value* is then fetched one at a time
    /// while `f` runs, and no shard lock is held during the callback, so
    /// `f` may freely read or write the database. Returning
    /// [`std::ops::ControlFlow::Break`] stops the walk early, skipping
    /// the remaining value fetches and callback work (the key gather has
    /// already happened). What this buys over [`Db::scan_prefix`] is
    /// peak memory — O(matching keys) handles instead of O(matching)
    /// key+value pairs held alive at once — not asymptotic scan cost.
    ///
    /// Like [`Db::scan_prefix`] the walk is not transactional: pairs
    /// deleted between the key gather and their visit are skipped, and
    /// concurrent writes may or may not be observed. The snapshot writer
    /// calls this from a quiesced controller thread, where the scan is
    /// exact.
    pub fn for_each_prefix(
        &self,
        prefix: impl AsRef<[u8]>,
        mut f: impl FnMut(&Bytes, &Bytes) -> std::ops::ControlFlow<()>,
    ) {
        let prefix = prefix.as_ref();
        let mut keys: Vec<Bytes> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for k in shard.map.keys() {
                if k.starts_with(prefix) {
                    keys.push(k.clone());
                }
            }
        }
        keys.sort_unstable();
        for k in keys {
            // Uncounted read: the scan is instrumentation-neutral so a
            // checkpoint pass does not distort the `gets` counter.
            let value = {
                let shard = self.shards[Self::shard_index(&k)].read();
                match shard.map.get(&k) {
                    Some(e) => e.value.clone(),
                    None => continue, // deleted since the key gather
                }
            };
            if f(&k, &value).is_break() {
                return;
            }
        }
    }

    /// Reads `key` as a big-endian `i64` (absent counts as 0), without
    /// opening a transaction — the counterpart of [`crate::Txn::get_i64`]
    /// for single-key metadata such as eviction watermarks and checkpoint
    /// cursors.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] if the stored value is not 8 bytes.
    pub fn get_i64(&self, key: impl AsRef<[u8]>) -> Result<i64, StoreError> {
        match self.get(key) {
            None => Ok(0),
            Some(v) => crate::codec::i64_value(&v),
        }
    }

    /// Stores `value` as a big-endian `i64` readable by [`Db::get_i64`],
    /// [`Db::incr`], and [`crate::Txn::get_i64`].
    pub fn set_i64(&self, key: impl AsRef<[u8]>, value: i64) {
        self.set(key, crate::codec::i64_bytes(value).to_vec());
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Returns `true` if the database holds no keys.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().map.is_empty())
    }

    /// Removes every key.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.bump();
            shard.map.clear();
        }
    }

    /// Snapshot of instrumentation counters.
    pub fn stats(&self) -> DbStats {
        DbStats {
            keys: self.len(),
            gets: self.gets.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            txn_commits: self.txn_commits.load(Ordering::Relaxed),
            txn_conflicts: self.txn_conflicts.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_write(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Runs `body` as an optimistic, serializable transaction and returns
    /// its result.
    ///
    /// The closure may be executed multiple times: reads performed through
    /// the [`Txn`] handle are validated at commit time while all involved
    /// shards are locked, and the whole closure is retried if another writer
    /// changed any key read by this transaction. Buffered writes become
    /// visible atomically on success.
    ///
    /// # Errors
    ///
    /// * [`StoreError::TxnConflict`] after
    ///   [`crate::DEFAULT_MAX_ATTEMPTS`] failed validations.
    /// * Any error returned by `body` (e.g. via [`Txn::abort`]) is
    ///   propagated without retrying.
    ///
    /// # Example
    ///
    /// ```
    /// use aim_store::Db;
    /// # fn main() -> Result<(), aim_store::StoreError> {
    /// let db = Db::new();
    /// db.set("a", vec![1]);
    /// db.transaction(|txn| {
    ///     let a = txn.get("a").unwrap_or_default();
    ///     txn.set("b", a.to_vec());
    ///     Ok(())
    /// })?;
    /// assert_eq!(db.get("b").as_deref(), Some(&[1u8][..]));
    /// # Ok(())
    /// # }
    /// ```
    pub fn transaction<T>(
        &self,
        body: impl FnMut(&mut Txn<'_>) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        txn::run(self, txn::DEFAULT_MAX_ATTEMPTS, body)
    }

    /// Like [`Db::transaction`] with an explicit bound on retry attempts.
    ///
    /// # Errors
    ///
    /// See [`Db::transaction`]; conflicts are reported after `max_attempts`
    /// tries.
    pub fn transaction_with_retries<T>(
        &self,
        max_attempts: u32,
        body: impl FnMut(&mut Txn<'_>) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        txn::run(self, max_attempts, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let db = Db::new();
        assert!(db.get("missing").is_none());
        db.set("k", b"hello".to_vec());
        assert_eq!(db.get("k").as_deref(), Some(&b"hello"[..]));
        db.set("k", b"world".to_vec());
        assert_eq!(db.get("k").as_deref(), Some(&b"world"[..]));
    }

    #[test]
    fn del_and_contains() {
        let db = Db::new();
        db.set("k", vec![1]);
        assert!(db.contains("k"));
        assert!(db.del("k"));
        assert!(!db.contains("k"));
        assert!(!db.del("k"));
    }

    #[test]
    fn incr_from_missing_and_existing() {
        let db = Db::new();
        assert_eq!(db.incr("c", 5).unwrap(), 5);
        assert_eq!(db.incr("c", -2).unwrap(), 3);
        db.set("bad", vec![1, 2, 3]);
        assert!(matches!(db.incr("bad", 1), Err(StoreError::Codec(_))));
    }

    #[test]
    fn scan_prefix_is_sorted_and_filtered() {
        let db = Db::new();
        db.set("agent:2", vec![2]);
        db.set("agent:1", vec![1]);
        db.set("agent:10", vec![10]);
        db.set("other:1", vec![0]);
        let got = db.scan_prefix("agent:");
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(
            keys,
            vec![&b"agent:1"[..], &b"agent:10"[..], &b"agent:2"[..]]
        );
    }

    #[test]
    fn for_each_prefix_streams_in_order_and_breaks() {
        let db = Db::new();
        for i in 0..50u32 {
            db.set(format!("h:{i:04}"), i.to_be_bytes().to_vec());
        }
        db.set("other", vec![1]);
        let mut seen = Vec::new();
        db.for_each_prefix("h:", |k, v| {
            seen.push((k.clone(), v.clone()));
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 50);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "ascending keys");
        assert_eq!(seen, db.scan_prefix("h:"), "same pairs as scan_prefix");
        // Early termination visits only the requested range.
        let mut visited = 0;
        db.for_each_prefix("h:", |_, _| {
            visited += 1;
            if visited == 7 {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        });
        assert_eq!(visited, 7);
    }

    #[test]
    fn for_each_prefix_skips_keys_deleted_mid_walk() {
        let db = Db::new();
        db.set("p:a", vec![1]);
        db.set("p:b", vec![2]);
        db.set("p:c", vec![3]);
        let mut seen = Vec::new();
        db.for_each_prefix("p:", |k, _| {
            if k.as_ref() == b"p:a" {
                db.del("p:b"); // the callback may write; b vanishes
            }
            seen.push(k.clone());
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].as_ref(), b"p:a");
        assert_eq!(seen[1].as_ref(), b"p:c");
    }

    #[test]
    fn db_level_i64_helpers_roundtrip_and_interop() {
        let db = Db::new();
        assert_eq!(db.get_i64("w").unwrap(), 0, "absent counts as zero");
        db.set_i64("w", -7);
        assert_eq!(db.get_i64("w").unwrap(), -7);
        // Same encoding as incr and the transactional helpers.
        assert_eq!(db.incr("w", 10).unwrap(), 3);
        let v = db.transaction(|txn| txn.get_i64("w")).unwrap();
        assert_eq!(v, 3);
        db.set("bad", vec![1, 2]);
        assert!(matches!(db.get_i64("bad"), Err(StoreError::Codec(_))));
    }

    #[test]
    fn len_and_clear() {
        let db = Db::new();
        for i in 0..100u32 {
            db.set(format!("k{i}"), i.to_be_bytes().to_vec());
        }
        assert_eq!(db.len(), 100);
        assert!(!db.is_empty());
        db.clear();
        assert!(db.is_empty());
    }

    #[test]
    fn versions_strictly_increase_across_recreation() {
        let db = Db::new();
        db.set("k", vec![1]);
        let (v1, _) = db.versioned_get(b"k").unwrap();
        db.del("k");
        db.set("k", vec![2]);
        let (v2, _) = db.versioned_get(b"k").unwrap();
        assert!(
            v2 > v1,
            "recreated key must have a fresh version ({v1} vs {v2})"
        );
    }

    #[test]
    fn stats_track_operations() {
        let db = Db::new();
        db.set("a", vec![0]);
        db.get("a");
        db.get("b");
        db.incr("c", 1).unwrap();
        let s = db.stats();
        assert_eq!(s.keys, 2);
        assert_eq!(s.gets, 2);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn db_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<Db>();
    }

    #[test]
    fn concurrent_incr_is_atomic() {
        use std::sync::Arc;
        let db = Arc::new(Db::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        db.incr("c", 1).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(db.incr("c", 0).unwrap(), 8000);
    }
}
