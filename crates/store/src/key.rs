//! Interned store keys.
//!
//! The dependency-graph hot path writes one record per agent per commit.
//! Formatting a `String` key (`format!("dep:agent:{:08}", id)`) for every
//! write allocates and re-hashes 18 bytes per record per transaction
//! attempt; a [`Key`] is built **once**, holds a fixed-width binary
//! encoding in a refcounted [`Bytes`], and is cloned into transactions for
//! the cost of a refcount bump.

use std::fmt;

use bytes::Bytes;

/// An interned, cheaply-cloneable store key.
///
/// Construct once (typically at startup, one per record slot), then reuse:
/// [`Key::clone`] and passing a key into [`crate::Txn::set_key`] /
/// [`crate::Txn::get_key`] never copy the underlying bytes.
///
/// # Example
///
/// ```
/// use aim_store::{Db, Key};
///
/// # fn main() -> Result<(), aim_store::StoreError> {
/// let db = Db::new();
/// let key = Key::tagged_u32(*b"agnt", 7);
/// assert_eq!(key.as_ref(), b"agnt\x00\x00\x00\x07");
/// db.transaction(|txn| {
///     txn.set_key(&key, vec![1, 2, 3]);
///     Ok(())
/// })?;
/// assert_eq!(db.get(&key).as_deref(), Some(&[1u8, 2, 3][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Bytes);

impl Key {
    /// Interns an arbitrary byte string as a key.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Key(bytes.into())
    }

    /// Builds the fixed-width (8-byte) binary key `tag ‖ id_be`: a 4-byte
    /// namespace tag followed by the big-endian id. Keys of the same tag
    /// sort by id.
    pub fn tagged_u32(tag: [u8; 4], id: u32) -> Self {
        let mut raw = [0u8; 8];
        raw[..4].copy_from_slice(&tag);
        raw[4..].copy_from_slice(&id.to_be_bytes());
        Key(Bytes::copy_from_slice(&raw))
    }

    /// Builds the fixed-width (12-byte) binary key `tag ‖ a_be ‖ b_be`: a
    /// 4-byte namespace tag followed by two big-endian ids. Keys of one
    /// tag sort by `a` first, then `b` — the layout of the dependency
    /// graph's per-step history records (`a` = step, `b` = agent), which
    /// makes an ordered prefix walk visit steps oldest-first.
    pub fn tagged_u32_pair(tag: [u8; 4], a: u32, b: u32) -> Self {
        let mut raw = [0u8; 12];
        raw[..4].copy_from_slice(&tag);
        raw[4..8].copy_from_slice(&a.to_be_bytes());
        raw[8..].copy_from_slice(&b.to_be_bytes());
        Key(Bytes::copy_from_slice(&raw))
    }

    /// The interned bytes (shared, not copied).
    pub fn bytes(&self) -> &Bytes {
        &self.0
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        self.0.as_ref()
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key(")?;
        for &b in self.0.as_ref() {
            if (b' '..=b'~').contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_layout_and_order() {
        let a = Key::tagged_u32(*b"dagt", 1);
        let b = Key::tagged_u32(*b"dagt", 256);
        assert_eq!(a.as_ref().len(), 8);
        assert_eq!(&a.as_ref()[..4], b"dagt");
        assert!(a < b, "keys of one tag must sort by id");
    }

    #[test]
    fn tagged_pair_layout_and_order() {
        let k = Key::tagged_u32_pair(*b"dhst", 2, 3);
        assert_eq!(k.as_ref().len(), 12);
        assert_eq!(&k.as_ref()[..4], b"dhst");
        // Sorts by the first id, then the second.
        let later_step = Key::tagged_u32_pair(*b"dhst", 3, 0);
        let later_agent = Key::tagged_u32_pair(*b"dhst", 2, 4);
        assert!(k < later_agent && later_agent < later_step);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Key::new(vec![1u8; 64]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn debug_renders_mixed_bytes() {
        let k = Key::tagged_u32(*b"dagt", 0x41);
        assert_eq!(format!("{k:?}"), "Key(dagt\\x00\\x00\\x00A)");
    }
}
