use std::collections::BinaryHeap;
use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Error returned by [`PriorityQueue::push`] when the queue has been closed;
/// carries the rejected item back to the caller (mirroring
/// `std::sync::mpsc::SendError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueClosed<T>(pub T);

impl<T> fmt::Display for QueueClosed<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue is closed")
    }
}

impl<T: fmt::Debug> std::error::Error for QueueClosed<T> {}

/// Outcome of [`PriorityQueue::pop_timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue was closed and fully drained.
    Closed,
    /// The timeout elapsed with the queue still open and empty.
    TimedOut,
}

impl<T> PopResult<T> {
    /// Returns the item if this is [`PopResult::Item`].
    pub fn into_item(self) -> Option<T> {
        match self {
            PopResult::Item(t) => Some(t),
            _ => None,
        }
    }
}

struct HeapEntry<T> {
    priority: u64,
    seq: u64,
    item: T,
}

// Order inverted so that the std max-heap pops the *smallest*
// (priority, seq) first: lower priority value = more urgent, and FIFO among
// equal priorities.
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.priority, other.seq).cmp(&(self.priority, self.seq))
    }
}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}

struct Inner<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A blocking multi-producer/multi-consumer priority queue.
///
/// This is the data structure behind the engine's `ready_queue` and
/// `ack_queue` (paper §3.1): entries carry a numeric priority — the
/// simulation step of the cluster — and **lower values dequeue first**
/// (§3.5: "requests with smaller counts have higher execution priority").
/// Ties break FIFO by insertion order, so pushing everything with the same
/// priority turns the queue into a plain FIFO channel; that is exactly how
/// the `w/o priority` configuration of Table 1 is implemented.
///
/// # Example
///
/// ```
/// use aim_store::PriorityQueue;
///
/// let q = PriorityQueue::new();
/// q.push(3, "late").unwrap();
/// q.push(1, "early").unwrap();
/// q.push(1, "early2").unwrap();
/// assert_eq!(q.try_pop(), Some("early"));
/// assert_eq!(q.try_pop(), Some("early2"));
/// assert_eq!(q.try_pop(), Some("late"));
/// ```
pub struct PriorityQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> fmt::Debug for PriorityQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PriorityQueue")
            .field("len", &inner.heap.len())
            .field("closed", &inner.closed)
            .finish()
    }
}

impl<T> Default for PriorityQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PriorityQueue<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        PriorityQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item` with `priority` (lower dequeues first).
    ///
    /// # Errors
    ///
    /// Returns [`QueueClosed`] containing `item` if [`PriorityQueue::close`]
    /// was called.
    pub fn push(&self, priority: u64, item: T) -> Result<(), QueueClosed<T>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(QueueClosed(item));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(HeapEntry {
            priority,
            seq,
            item,
        });
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the most urgent item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(e) = inner.heap.pop() {
                return Some(e.item);
            }
            if inner.closed {
                return None;
            }
            self.available.wait(&mut inner);
        }
    }

    /// Non-blocking dequeue.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().heap.pop().map(|e| e.item)
    }

    /// Dequeues with a bound on the wait time.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(e) = inner.heap.pop() {
                return PopResult::Item(e.item);
            }
            if inner.closed {
                return PopResult::Closed;
            }
            if self.available.wait_until(&mut inner, deadline).timed_out() {
                return match inner.heap.pop() {
                    Some(e) => PopResult::Item(e.item),
                    None if inner.closed => PopResult::Closed,
                    None => PopResult::TimedOut,
                };
            }
        }
    }

    /// Closes the queue: further pushes fail, and consumers drain the
    /// remaining items before observing `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    /// Returns `true` if [`PriorityQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// Returns `true` if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().heap.is_empty()
    }

    /// Smallest (most urgent) priority currently queued, if any.
    pub fn min_priority(&self) -> Option<u64> {
        self.inner.lock().heap.peek().map(|e| e.priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn orders_by_priority_then_fifo() {
        let q = PriorityQueue::new();
        q.push(2, "c").unwrap();
        q.push(1, "a").unwrap();
        q.push(1, "b").unwrap();
        q.push(0, "zero").unwrap();
        assert_eq!(q.try_pop(), Some("zero"));
        assert_eq!(q.try_pop(), Some("a"));
        assert_eq!(q.try_pop(), Some("b"));
        assert_eq!(q.try_pop(), Some("c"));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn uniform_priority_is_fifo() {
        let q = PriorityQueue::new();
        for i in 0..100 {
            q.push(0, i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(q.try_pop(), Some(i));
        }
    }

    #[test]
    fn close_rejects_push_and_drains() {
        let q = PriorityQueue::new();
        q.push(1, 10).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(1, 11), Err(QueueClosed(11)));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(PriorityQueue::new());
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.push(5, 42u32).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q: Arc<PriorityQueue<u32>> = Arc::new(PriorityQueue::new());
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn pop_timeout_times_out() {
        let q: PriorityQueue<u32> = PriorityQueue::new();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            PopResult::TimedOut
        );
        q.push(0, 1).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), PopResult::Item(1));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), PopResult::Closed);
    }

    #[test]
    fn mpmc_total_delivery() {
        let q = Arc::new(PriorityQueue::new());
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        q.push(i % 7, (p, i)).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn min_priority_peeks() {
        let q = PriorityQueue::new();
        assert_eq!(q.min_priority(), None);
        q.push(9, ()).unwrap();
        q.push(3, ()).unwrap();
        assert_eq!(q.min_priority(), Some(3));
    }
}
