use std::error::Error;
use std::fmt;

/// Errors returned by store operations.
///
/// All public fallible operations in this crate return [`StoreError`].
/// The type is `Send + Sync + 'static` so it can cross thread boundaries
/// and be boxed into `std::io::Error` if needed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An optimistic transaction failed validation more than the configured
    /// number of times (another writer kept invalidating its read set).
    TxnConflict {
        /// Number of attempts made before giving up.
        attempts: u32,
    },
    /// A transaction closure aborted with a user-supplied message.
    ///
    /// Returned by [`crate::Txn::abort`]; the transaction's buffered writes
    /// are discarded.
    TxnAborted(String),
    /// A value could not be decoded as the requested type (e.g. an `incr`
    /// on a non-integer value).
    Codec(String),
    /// A filesystem operation on a snapshot file failed.
    ///
    /// Carries the rendered [`std::io::Error`]; the store keeps its error
    /// type `Clone + PartialEq`, which the raw `io::Error` is not.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TxnConflict { attempts } => {
                write!(f, "transaction conflicted after {attempts} attempts")
            }
            StoreError::TxnAborted(msg) => write!(f, "transaction aborted: {msg}"),
            StoreError::Codec(msg) => write!(f, "value codec error: {msg}"),
            StoreError::Io(msg) => write!(f, "snapshot i/o error: {msg}"),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = StoreError::TxnConflict { attempts: 3 };
        let s = e.to_string();
        assert!(s.starts_with("transaction conflicted"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<StoreError>();
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", StoreError::Codec("x".into())).is_empty());
    }
}
