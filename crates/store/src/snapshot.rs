//! Durable snapshots of a [`Db`] — the `AIMSNAP v1` codec and the
//! [`Checkpointer`] that executors drive every K committed steps.
//!
//! AI Metropolis keeps the authoritative simulation state (dependency
//! graph nodes, counters, per-step history) in the store; ScaleSim-style
//! long-horizon runs additionally need that state to be *durable*, so an
//! interrupted run can resume instead of replaying from step zero. This
//! module serializes a consistent image of the store — plus any number of
//! named side sections (world state, run metadata) — to a byte stream and
//! restores it.
//!
//! # `AIMSNAP v1` format
//!
//! All integers are big-endian. The layout, in order:
//!
//! ```text
//! magic      8 bytes   b"AIMSNAP1"
//! sections   u32       count of named sections
//!   per section:
//!     name   u32 len + UTF-8 bytes
//!     body   u32 len + raw bytes
//! records    repeated, ascending by key:
//!     key    u32 len + raw bytes        (len 0xFFFF_FFFF terminates)
//!     value  u32 len + raw bytes
//! checksum   u64       FNV-1a 64 over every preceding byte
//! ```
//!
//! Records are written in ascending key order, so the encoding of a given
//! database image is **canonical**: snapshot → restore → snapshot yields
//! the identical byte stream (shard layout and hash-map iteration order
//! never leak into the file), which the property tests pin down. The
//! record stream is produced by [`Db::for_each_prefix`], one record at a
//! time — a snapshot never materializes a second copy of the database in
//! memory.
//!
//! # Consistency
//!
//! Capturing is not itself transactional. Callers capture from a quiesced
//! writer — the threaded executor drains in-flight clusters before its
//! checkpoint hook runs, and the discrete-event executor checkpoints
//! between runs — so the image is a consistent commit-boundary cut.
//!
//! # Example
//!
//! ```
//! use aim_store::{Db, Snapshot, SnapshotBuilder};
//!
//! # fn main() -> Result<(), aim_store::StoreError> {
//! let db = Db::new();
//! db.set("agent:0", vec![1, 2, 3]);
//! let bytes = SnapshotBuilder::new()
//!     .section("meta", vec![9u8])
//!     .db(&db)
//!     .to_bytes()?;
//! let snap = Snapshot::from_bytes(bytes)?;
//! assert_eq!(snap.section("meta").unwrap().as_ref(), &[9u8][..]);
//! let restored = snap.restore_db();
//! assert_eq!(restored.get("agent:0"), db.get("agent:0"));
//! # Ok(())
//! # }
//! ```

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::db::Db;
use crate::error::StoreError;

/// File magic of the `AIMSNAP v1` format.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AIMSNAP1";

/// Key-length sentinel that terminates the record stream.
const END_OF_RECORDS: u32 = u32::MAX;

/// Incremental FNV-1a 64 — tiny, dependency-free, and plenty for
/// detecting truncation and bit rot in snapshot files (not a
/// cryptographic integrity guarantee).
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A writer adapter that hashes and counts everything passing through.
struct HashWriter<'a> {
    inner: &'a mut dyn Write,
    hash: Fnv64,
    written: u64,
}

impl<'a> HashWriter<'a> {
    fn new(inner: &'a mut dyn Write) -> Self {
        HashWriter {
            inner,
            hash: Fnv64::new(),
            written: 0,
        }
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_all(bytes)?;
        self.hash.update(bytes);
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_be_bytes())
    }

    fn put_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        assert!(
            (bytes.len() as u64) < END_OF_RECORDS as u64,
            "snapshot chunk too large"
        );
        self.put_u32(bytes.len() as u32)?;
        self.put(bytes)
    }
}

/// Builds an `AIMSNAP v1` byte stream from named sections plus an
/// optional [`Db`] image (see the [module docs](self) for the format).
///
/// The builder only *borrows* its inputs; nothing is copied until
/// [`SnapshotBuilder::write_to`] streams the encoding out.
#[derive(Debug, Default)]
pub struct SnapshotBuilder<'a> {
    db: Option<&'a Db>,
    sections: Vec<(String, Bytes)>,
}

impl<'a> SnapshotBuilder<'a> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Includes every record of `db` in the snapshot.
    pub fn db(mut self, db: &'a Db) -> Self {
        self.db = Some(db);
        self
    }

    /// Appends a named side section (run metadata, world state, …).
    /// Section order is preserved; names should be unique.
    pub fn section(mut self, name: impl Into<String>, body: impl Into<Bytes>) -> Self {
        self.sections.push((name.into(), body.into()));
        self
    }

    /// Streams the snapshot into `w`, returning the total bytes written.
    ///
    /// Database records are visited one at a time in ascending key order
    /// ([`Db::for_each_prefix`]); resident overhead is one record, not a
    /// second copy of the store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut dyn Write) -> io::Result<u64> {
        let mut hw = HashWriter::new(w);
        hw.put(&SNAPSHOT_MAGIC)?;
        hw.put_u32(self.sections.len() as u32)?;
        for (name, body) in &self.sections {
            hw.put_chunk(name.as_bytes())?;
            hw.put_chunk(body)?;
        }
        if let Some(db) = self.db {
            let mut io_err = None;
            db.for_each_prefix([], |k, v| {
                let r = hw.put_chunk(k).and_then(|()| hw.put_chunk(v));
                match r {
                    Ok(()) => std::ops::ControlFlow::Continue(()),
                    Err(e) => {
                        io_err = Some(e);
                        std::ops::ControlFlow::Break(())
                    }
                }
            });
            if let Some(e) = io_err {
                return Err(e);
            }
        }
        hw.put_u32(END_OF_RECORDS)?;
        let checksum = hw.hash.finish();
        let written = hw.written;
        hw.put(&checksum.to_be_bytes())?;
        Ok(written + 8)
    }

    /// Encodes into an in-memory buffer (tests and small snapshots).
    ///
    /// # Errors
    ///
    /// Never fails in practice (the sink is a `Vec`); the `Result` mirrors
    /// [`SnapshotBuilder::write_to`].
    pub fn to_bytes(&self) -> Result<Bytes, StoreError> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Writes the snapshot to `path` atomically: the stream goes to a
    /// `.tmp` sibling first, is flushed and fsynced, and only then
    /// renamed into place — so an interrupted (or power-lost) checkpoint
    /// never leaves a truncated snapshot under the final name. A `.tmp`
    /// orphan from a killed writer may remain; [`Checkpointer`] sweeps
    /// those on rotation.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<u64> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
        let n = self.write_to(&mut file)?;
        file.flush()?;
        let file = file.into_inner().map_err(|e| e.into_error())?;
        // Data must be durable *before* the rename publishes the name:
        // rename-then-crash must not yield a complete-looking file with
        // unflushed tail pages.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(n)
    }
}

/// Summary of a parsed snapshot (`trace_tool snapshot` output).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SnapshotInfo {
    /// `(name, body length)` per named section, in file order.
    pub sections: Vec<(String, u64)>,
    /// Number of database records.
    pub db_records: u64,
    /// Total bytes of the encoded stream.
    pub total_bytes: u64,
    /// The verified FNV-1a 64 checksum.
    pub checksum: u64,
}

/// A parsed, checksum-verified `AIMSNAP v1` snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    sections: Vec<(String, Bytes)>,
    records: Vec<(Bytes, Bytes)>,
    info: SnapshotInfo,
}

fn take(buf: &mut Bytes, n: usize, what: &str) -> Result<Bytes, StoreError> {
    if buf.len() < n {
        return Err(StoreError::Codec(format!(
            "truncated snapshot: need {n} bytes for {what}, have {}",
            buf.len()
        )));
    }
    Ok(buf.split_to(n))
}

fn take_u32(buf: &mut Bytes, what: &str) -> Result<u32, StoreError> {
    let raw = take(buf, 4, what)?;
    Ok(u32::from_be_bytes(
        raw.as_ref().try_into().expect("4 bytes"),
    ))
}

impl Snapshot {
    /// Parses and verifies an encoded snapshot.
    ///
    /// Section bodies and record keys/values share the input buffer
    /// (zero-copy slices of `bytes`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] on a bad magic, truncation, or a
    /// checksum mismatch.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Result<Self, StoreError> {
        let full: Bytes = bytes.into();
        let total_bytes = full.len() as u64;
        if full.len() < SNAPSHOT_MAGIC.len() + 8 {
            return Err(StoreError::Codec(format!(
                "snapshot too short ({} bytes)",
                full.len()
            )));
        }
        let (body, trailer) = (full.slice(..full.len() - 8), full.slice(full.len() - 8..));
        let declared = u64::from_be_bytes(trailer.as_ref().try_into().expect("8 bytes"));
        let mut hash = Fnv64::new();
        hash.update(body.as_ref());
        let checksum = hash.finish();
        if checksum != declared {
            return Err(StoreError::Codec(format!(
                "snapshot checksum mismatch: file says {declared:#018x}, content hashes to {checksum:#018x}"
            )));
        }
        let mut buf = body;
        let magic = take(&mut buf, SNAPSHOT_MAGIC.len(), "magic")?;
        if magic.as_ref() != SNAPSHOT_MAGIC {
            return Err(StoreError::Codec(format!(
                "not an AIMSNAP v1 file (magic {:?})",
                magic.as_ref()
            )));
        }
        let n_sections = take_u32(&mut buf, "section count")?;
        // Capacity clamped by what the buffer could possibly hold (each
        // section costs ≥ 8 bytes of length prefixes): a corrupt count
        // with a matching checksum must fail with a Codec error below,
        // not abort on a absurd allocation here.
        let mut sections = Vec::with_capacity((n_sections as usize).min(buf.len() / 8));
        for _ in 0..n_sections {
            let name_len = take_u32(&mut buf, "section name length")? as usize;
            let name_raw = take(&mut buf, name_len, "section name")?;
            let name = std::str::from_utf8(name_raw.as_ref())
                .map_err(|e| StoreError::Codec(format!("section name not UTF-8: {e}")))?
                .to_string();
            let body_len = take_u32(&mut buf, "section body length")? as usize;
            let body = take(&mut buf, body_len, "section body")?;
            sections.push((name, body));
        }
        let mut records = Vec::new();
        loop {
            let klen = take_u32(&mut buf, "record key length")?;
            if klen == END_OF_RECORDS {
                break;
            }
            let key = take(&mut buf, klen as usize, "record key")?;
            let vlen = take_u32(&mut buf, "record value length")? as usize;
            let value = take(&mut buf, vlen, "record value")?;
            if let Some((last, _)) = records.last() {
                if *last >= key {
                    return Err(StoreError::Codec(
                        "snapshot records out of order (not canonical)".to_string(),
                    ));
                }
            }
            records.push((key, value));
        }
        if !buf.is_empty() {
            return Err(StoreError::Codec(format!(
                "{} trailing bytes after record terminator",
                buf.len()
            )));
        }
        let info = SnapshotInfo {
            sections: sections
                .iter()
                .map(|(n, b)| (n.clone(), b.len() as u64))
                .collect(),
            db_records: records.len() as u64,
            total_bytes,
            checksum,
        };
        Ok(Snapshot {
            sections,
            records,
            info,
        })
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem errors and
    /// [`StoreError::Codec`] on a malformed stream.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let data = std::fs::read(path.as_ref())?;
        Self::from_bytes(data)
    }

    /// The body of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&Bytes> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
    }

    /// Every `(name, body)` section whose name starts with `prefix`, in
    /// file order — how shard-aware consumers walk a checkpoint's
    /// `shard/<i>` membership family without knowing the shard count up
    /// front.
    pub fn sections_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Bytes)> + 'a {
        self.sections
            .iter()
            .filter(move |(n, _)| n.starts_with(prefix))
            .map(|(n, b)| (n.as_str(), b))
    }

    /// Parsed summary: sections, record count, checksum.
    pub fn info(&self) -> &SnapshotInfo {
        &self.info
    }

    /// The database records, ascending by key.
    pub fn records(&self) -> &[(Bytes, Bytes)] {
        &self.records
    }

    /// Materializes a fresh [`Db`] holding exactly the snapshot's
    /// records.
    pub fn restore_db(&self) -> Db {
        let db = Db::new();
        for (k, v) in &self.records {
            db.set(k, v.clone());
        }
        db
    }
}

/// Writes rotating snapshot files on a fixed committed-step cadence.
///
/// The executor (or any run loop) owns the *cut* — it decides when the
/// state is quiescent and what goes into the [`SnapshotBuilder`]; the
/// checkpointer owns cadence bookkeeping, file naming
/// (`ckpt-<step:08>.aimsnap`), atomic writes, and rotation.
///
/// # Example
///
/// ```no_run
/// use aim_store::{Checkpointer, Db, SnapshotBuilder};
///
/// let db = Db::new();
/// let mut ckpt = Checkpointer::new("target/ckpts", 50, 2);
/// for step in 0..200u32 {
///     // … advance the simulation one committed step …
///     if ckpt.due(step) {
///         ckpt.write(step, &SnapshotBuilder::new().db(&db)).unwrap();
///     }
/// }
/// assert_eq!(ckpt.written(), 3); // steps 50, 100, 150
/// ```
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    every_steps: u32,
    keep: usize,
    next_due: u32,
    written: u64,
    last: Option<PathBuf>,
}

impl Checkpointer {
    /// Creates a checkpointer writing into `dir` every `every_steps`
    /// committed steps, retaining the `keep` most recent files.
    ///
    /// # Panics
    ///
    /// Panics if `every_steps` or `keep` is zero.
    pub fn new(dir: impl Into<PathBuf>, every_steps: u32, keep: usize) -> Self {
        assert!(every_steps > 0, "checkpoint cadence must be positive");
        assert!(keep > 0, "must retain at least one checkpoint");
        Checkpointer {
            dir: dir.into(),
            every_steps,
            keep,
            next_due: every_steps,
            written: 0,
            last: None,
        }
    }

    /// The configured cadence in committed steps.
    pub fn every_steps(&self) -> u32 {
        self.every_steps
    }

    /// Whether the cadence calls for a checkpoint at `committed_step`
    /// (the run's fully-committed step floor, e.g. `min_step`).
    pub fn due(&self, committed_step: u32) -> bool {
        committed_step >= self.next_due
    }

    /// Writes `builder` as `ckpt-<step:08>.aimsnap`, rotates old files,
    /// and advances the cadence to the next multiple of `every_steps`
    /// above `committed_step`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the cadence only advances on
    /// success, so a failed write is retried at the next opportunity.
    pub fn write(
        &mut self,
        committed_step: u32,
        builder: &SnapshotBuilder<'_>,
    ) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("ckpt-{committed_step:08}.aimsnap"));
        builder.save(&path)?;
        self.next_due = committed_step - committed_step % self.every_steps + self.every_steps;
        self.written += 1;
        self.last = Some(path.clone());
        self.rotate()?;
        Ok(path)
    }

    /// Deletes all but the `keep` newest checkpoint files, plus any
    /// stale `ckpt-*.tmp` orphans an interrupted writer left behind (the
    /// just-written snapshot was already renamed, so every remaining
    /// `.tmp` is dead).
    fn rotate(&self) -> io::Result<()> {
        let mut files: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.starts_with("ckpt-") {
                continue;
            }
            if name.ends_with(".aimsnap") {
                files.push(path);
            } else if name.ends_with(".tmp") {
                std::fs::remove_file(&path)?;
            }
        }
        files.sort();
        if files.len() > self.keep {
            for old in &files[..files.len() - self.keep] {
                std::fs::remove_file(old)?;
            }
        }
        Ok(())
    }

    /// Path of the most recently written checkpoint, if any.
    pub fn last_path(&self) -> Option<&Path> {
        self.last.as_deref()
    }

    /// Number of checkpoints written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_db() -> Db {
        let db = Db::new();
        for i in 0..64u32 {
            db.set(format!("k:{i:04}"), i.to_be_bytes().to_vec());
        }
        db.set_i64("counter", 41);
        db
    }

    #[test]
    fn sections_with_prefix_walks_the_family() {
        let db = Db::new();
        let bytes = SnapshotBuilder::new()
            .section("meta", vec![1u8])
            .section("shard/0", vec![2u8])
            .section("shard/1", vec![3u8])
            .section("world", vec![4u8])
            .db(&db)
            .to_bytes()
            .unwrap();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        let family: Vec<(&str, u8)> = snap
            .sections_with_prefix("shard/")
            .map(|(n, b)| (n, b[0]))
            .collect();
        assert_eq!(family, vec![("shard/0", 2), ("shard/1", 3)]);
        assert_eq!(snap.sections_with_prefix("nope").count(), 0);
    }

    #[test]
    fn roundtrip_preserves_records_and_sections() {
        let db = demo_db();
        let bytes = SnapshotBuilder::new()
            .section("meta", vec![1, 2, 3])
            .section("world", vec![4])
            .db(&db)
            .to_bytes()
            .unwrap();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        assert_eq!(snap.info().db_records, 65);
        assert_eq!(
            snap.info().sections,
            vec![("meta".to_string(), 3), ("world".to_string(), 1)]
        );
        assert_eq!(snap.section("meta").unwrap().as_ref(), &[1, 2, 3][..]);
        assert!(snap.section("absent").is_none());
        let restored = snap.restore_db();
        assert_eq!(restored.len(), db.len());
        assert_eq!(restored.get_i64("counter").unwrap(), 41);
        assert_eq!(restored.scan_prefix(""), db.scan_prefix(""));
    }

    #[test]
    fn encoding_is_canonical_across_restore() {
        let db = demo_db();
        let first = SnapshotBuilder::new().db(&db).to_bytes().unwrap();
        let restored = Snapshot::from_bytes(first.clone()).unwrap().restore_db();
        let second = SnapshotBuilder::new().db(&restored).to_bytes().unwrap();
        assert_eq!(
            first.as_ref(),
            second.as_ref(),
            "snapshot -> restore -> snapshot must be byte-for-byte stable"
        );
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = SnapshotBuilder::new()
            .db(&demo_db())
            .to_bytes()
            .unwrap()
            .to_vec();
        // Flip one record byte: checksum must catch it.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::from_bytes(flipped),
            Err(StoreError::Codec(msg)) if msg.contains("checksum")
        ));
        // Truncation is caught too.
        let truncated = bytes[..bytes.len() - 3].to_vec();
        assert!(Snapshot::from_bytes(truncated).is_err());
        // And a wrong magic with a valid checksum shape.
        assert!(matches!(
            Snapshot::from_bytes(vec![0u8; 32]),
            Err(StoreError::Codec(_))
        ));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let bytes = SnapshotBuilder::new().to_bytes().unwrap();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        assert_eq!(snap.info().db_records, 0);
        assert!(snap.info().sections.is_empty());
        assert!(snap.restore_db().is_empty());
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join(format!("aimsnap-test-{}", std::process::id()));
        let path = dir.join("one.aimsnap");
        let db = demo_db();
        let n = SnapshotBuilder::new().db(&db).save(&path).unwrap();
        assert_eq!(n, std::fs::metadata(&path).unwrap().len());
        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.info().db_records, 65);
        assert!(matches!(
            Snapshot::load(dir.join("missing.aimsnap")),
            Err(StoreError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointer_cadence_and_rotation() {
        let dir = std::env::temp_dir().join(format!("aimsnap-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = demo_db();
        let mut ckpt = Checkpointer::new(&dir, 10, 2);
        assert!(!ckpt.due(0));
        assert!(!ckpt.due(9));
        assert!(ckpt.due(10) && ckpt.due(23));
        // A stale orphan from a previously killed writer must be swept.
        std::fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join("ckpt-00000003.tmp");
        std::fs::write(&orphan, b"dead").unwrap();
        let mut paths = Vec::new();
        for step in [10u32, 23, 31] {
            assert!(ckpt.due(step));
            paths.push(ckpt.write(step, &SnapshotBuilder::new().db(&db)).unwrap());
            // Cadence advances to the next multiple of 10.
            assert!(!ckpt.due(step));
        }
        assert!(!orphan.exists(), "stale .tmp must be rotated away");
        assert!(ckpt.due(40));
        assert_eq!(ckpt.written(), 3);
        assert_eq!(ckpt.last_path(), Some(paths[2].as_path()));
        // keep = 2: the oldest file is rotated away.
        assert!(!paths[0].exists());
        assert!(paths[1].exists() && paths[2].exists());
        Snapshot::load(ckpt.last_path().unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
